"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.config import BufferAllocation, OptimizerConfig, SystemConfig
from repro.costmodel import EnvironmentState
from repro.plans import JoinPredicate, Query
from repro.sim import Environment

MODERATE = 1e-4  # join selectivity making |A join B| = |A| for 10k-tuple inputs


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(42)


@pytest.fixture
def two_way_query() -> Query:
    return Query(("A", "B"), (JoinPredicate("A", "B", MODERATE),))


@pytest.fixture
def two_way_catalog() -> Catalog:
    return Catalog(
        [Relation("A", 10_000), Relation("B", 10_000)],
        Placement({"A": 1, "B": 1}),
    )


@pytest.fixture
def one_server_config() -> SystemConfig:
    return SystemConfig(num_servers=1)


def make_chain(num_relations: int, selectivity: float = MODERATE) -> Query:
    names = tuple(f"R{i}" for i in range(num_relations))
    predicates = tuple(
        JoinPredicate(names[i], names[i + 1], selectivity)
        for i in range(num_relations - 1)
    )
    return Query(names, predicates)


def make_catalog(
    num_relations: int,
    num_servers: int,
    cache: dict[str, float] | None = None,
    seed: int = 0,
) -> Catalog:
    from repro.catalog import random_placement

    names = [f"R{i}" for i in range(num_relations)]
    placement = random_placement(names, num_servers, random.Random(seed))
    return Catalog([Relation(n, 10_000) for n in names], placement, cache or {})


@pytest.fixture
def fast_optimizer() -> OptimizerConfig:
    return OptimizerConfig.fast()


@pytest.fixture
def min_alloc_config() -> SystemConfig:
    return SystemConfig(num_servers=1, buffer_allocation=BufferAllocation.MINIMUM)


@pytest.fixture
def environment(two_way_catalog, one_server_config) -> EnvironmentState:
    return EnvironmentState(two_way_catalog, one_server_config)
