"""Consistency-protocol unit tests: version table, config, both protocols."""

import pytest

from repro.caching import BufferCache
from repro.config import SystemConfig
from repro.consistency import (
    ConsistencyConfig,
    DetectionProtocol,
    InvalidationProtocol,
    VersionTable,
    make_protocol,
)
from repro.errors import ConfigurationError
from repro.hardware.topology import Topology
from repro.storage import ExtentAllocator


class TestVersionTable:
    def test_unwritten_pages_are_version_zero(self):
        table = VersionTable()
        assert table.version("A", 0) == 0
        assert len(table) == 0

    def test_bump_increments_per_page(self):
        table = VersionTable()
        table.bump("A", 0)
        table.bump("A", 0)
        table.bump("A", 1)
        assert table.version("A", 0) == 2
        assert table.version("A", 1) == 1
        assert table.version("B", 0) == 0
        assert table.total_writes == 3
        assert len(table) == 2


class TestConfig:
    def test_default_is_invalidation(self):
        assert ConsistencyConfig().protocol == "invalidation"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            ConsistencyConfig(protocol="optimistic")

    def test_make_protocol_resolves_names(self, env):
        topology = Topology(env, SystemConfig(num_servers=1), seed=1)
        assert isinstance(make_protocol("invalidation", topology), InvalidationProtocol)
        assert isinstance(make_protocol("detection", topology), DetectionProtocol)
        manager = make_protocol(ConsistencyConfig(protocol="detection"), topology)
        assert isinstance(manager, DetectionProtocol)
        assert manager.stale_served == 0


def _client_with_cache(topology, relation="A", pages=(0, 1)):
    client = topology.clients[0]
    client.buffer_cache = BufferCache(ExtentAllocator(200), 16)
    for index in pages:
        client.buffer_cache.admit(relation, index, version=0)
    return client


def _drive(env, generator):
    """Run one protocol hook inside the simulation; returns its value."""
    box = {}

    def runner():
        box["value"] = yield from generator

    env.run(until=env.process(runner(), name="protocol-driver"))
    return box["value"]


class TestInvalidationProtocol:
    def test_commit_drops_cached_copies_and_counts(self, env):
        topology = Topology(env, SystemConfig(num_servers=1, num_clients=2), seed=1)
        manager = make_protocol("invalidation", topology)
        caching = _client_with_cache(topology, pages=(0, 1))
        bystander = topology.clients[1]  # no buffer cache at all
        server = topology.servers[0]
        _drive(env, manager.commit_write(server, "A", (0,)))
        assert manager.versions.version("A", 0) == 1
        assert not caching.buffer_cache.contains("A", 0)
        assert caching.buffer_cache.contains("A", 1)
        assert caching.consistency.invalidations == 1
        assert bystander.consistency.invalidations == 0
        # One callback control message crossed the wire.
        assert topology.network.control_messages_sent == 1

    def test_commit_skips_clients_not_caching_the_page(self, env):
        topology = Topology(env, SystemConfig(num_servers=1), seed=1)
        manager = make_protocol("invalidation", topology)
        _client_with_cache(topology, pages=(1,))
        _drive(env, manager.commit_write(topology.servers[0], "A", (0,)))
        assert topology.network.control_messages_sent == 0
        assert topology.clients[0].consistency.invalidations == 0

    def test_hit_in_callback_flight_window_is_detected_locally(self, env):
        # A version bump the callback has not delivered yet: the local
        # compare still refuses to serve the stale copy.
        topology = Topology(env, SystemConfig(num_servers=1), seed=1)
        manager = make_protocol("invalidation", topology)
        client = _client_with_cache(topology, pages=(0,))
        manager.versions.bump("A", 0)  # write committed elsewhere
        fresh = _drive(
            env, manager.validate_hit(client, topology.servers[0], "A", 0)
        )
        assert fresh is False
        assert client.consistency.stale_hits == 1
        assert not client.buffer_cache.contains("A", 0)
        assert manager.stale_served == 0


class TestDetectionProtocol:
    def test_fresh_hit_costs_a_validation_round_trip(self, env):
        topology = Topology(env, SystemConfig(num_servers=1), seed=1)
        manager = make_protocol("detection", topology)
        client = _client_with_cache(topology, pages=(0,))
        fresh = _drive(
            env, manager.validate_hit(client, topology.servers[0], "A", 0)
        )
        assert fresh is True
        assert client.consistency.validations == 1
        assert topology.network.control_messages_sent == 2  # request + reply
        assert client.buffer_cache.contains("A", 0)

    def test_stale_hit_is_dropped_never_served(self, env):
        topology = Topology(env, SystemConfig(num_servers=1), seed=1)
        manager = make_protocol("detection", topology)
        client = _client_with_cache(topology, pages=(0,))
        _drive(env, manager.commit_write(topology.servers[0], "A", (0,)))
        # Detection commits are silent: version bump only, no callbacks.
        assert topology.network.control_messages_sent == 0
        fresh = _drive(
            env, manager.validate_hit(client, topology.servers[0], "A", 0)
        )
        assert fresh is False
        assert client.consistency.stale_hits == 1
        assert not client.buffer_cache.contains("A", 0)
        assert manager.stale_served == 0

    def test_page_readmitted_at_current_version_is_fresh(self, env):
        topology = Topology(env, SystemConfig(num_servers=1), seed=1)
        manager = make_protocol("detection", topology)
        client = _client_with_cache(topology, pages=())
        manager.versions.bump("A", 0)
        client.buffer_cache.admit("A", 0, version=manager.current_version("A", 0))
        fresh = _drive(
            env, manager.validate_hit(client, topology.servers[0], "A", 0)
        )
        assert fresh is True
        assert client.consistency.stale_hits == 0
