"""Read/write workloads end to end: staleness, parity, writer RNG hygiene."""

import random

import pytest

from repro.hardware.site import client_site_id
from repro.plans.policies import Policy
from repro.workload import StreamConfig, WorkloadRunner
from repro.workloads.scenarios import chain_scenario


def run_mix(protocol, write_fraction, seed=1, num_clients=2, queries=3, **kwargs):
    scenario = chain_scenario(
        num_relations=2,
        num_servers=2,
        cached_fraction=0.5,
        placement_seed=seed,
        replication_factor=kwargs.pop("replication_factor", 2),
    )
    runner = WorkloadRunner(
        scenario,
        Policy.DATA_SHIPPING,
        num_clients=num_clients,
        stream=StreamConfig(
            arrival="closed",
            think_time=0.0,
            queries_per_client=queries,
            write_fraction=write_fraction,
        ),
        seed=seed,
        cache="dynamic",
        consistency=protocol,
        **kwargs,
    )
    return runner, runner.run()


class TestZeroStaleServed:
    """The acceptance invariant: stale pages are detected, never served."""

    @pytest.mark.parametrize("protocol", ["invalidation", "detection"])
    def test_no_stale_page_is_ever_served(self, protocol):
        for seed in (1, 2, 3):
            runner, result = run_mix(protocol, write_fraction=0.4, seed=seed)
            manager = runner.last_topology.consistency
            assert manager is not None
            assert manager.stale_served == 0
            assert result.completed == result.submitted

    def test_detection_actually_detects_staleness(self):
        runner, result = run_mix("detection", write_fraction=0.4, seed=1)
        profile = result.profile
        stale = sum(
            v for k, v in profile.items() if k.endswith("consistency.stale_hits")
        )
        validations = sum(
            v for k, v in profile.items() if k.endswith("consistency.validations")
        )
        assert stale > 0, "sweep never exercised a stale cached page"
        assert validations > stale
        assert runner.last_topology.consistency.stale_served == 0

    def test_writes_reach_every_replica(self):
        _, result = run_mix("invalidation", write_fraction=1.0, seed=1)
        profile = result.profile
        # 2-way replication: primary and replica each apply every page.
        assert profile["site.server1.consistency.write_pages"] > 0
        assert profile["site.server2.consistency.write_pages"] > 0
        assert (
            profile["site.server1.consistency.write_pages"]
            == profile["site.server2.consistency.write_pages"]
        )


class TestReadOnlyParity:
    def test_pure_read_stream_never_builds_a_manager(self):
        runner, result = run_mix("invalidation", write_fraction=0.0, seed=1)
        assert runner.last_topology.consistency is None
        assert result.completed == result.submitted
        assert all(
            v == 0.0
            for k, v in result.profile.items()
            if ".consistency." in k
        )

    def test_read_only_profiles_identical_across_protocol_settings(self):
        # With no writes the configured protocol must be unobservable:
        # byte-identical event streams, hence identical profiles.
        _, inv = run_mix("invalidation", write_fraction=0.0, seed=1)
        _, det = run_mix("detection", write_fraction=0.0, seed=1)
        assert inv.profile == det.profile
        assert [
            (s.session_id, s.status, s.completed) for s in inv.sessions
        ] == [(s.session_id, s.status, s.completed) for s in det.sessions]

    def test_unreplicated_read_only_run_matches_default_scenario(self):
        # replication_factor=1 must leave the placement object semantics
        # (and therefore planning and execution) exactly as the default.
        _, base = run_mix("invalidation", write_fraction=0.0, seed=1)
        _, factor1 = run_mix(
            "invalidation", write_fraction=0.0, seed=1, replication_factor=1
        )
        # factor=2 was the base here, so compare factor=1 against a fresh
        # default scenario instead: both draw the same placement stream.
        scenario = chain_scenario(
            num_relations=2, num_servers=2, cached_fraction=0.5, placement_seed=1
        )
        default = WorkloadRunner(
            scenario,
            Policy.DATA_SHIPPING,
            num_clients=2,
            stream=StreamConfig(
                arrival="closed", think_time=0.0, queries_per_client=3
            ),
            seed=1,
            cache="dynamic",
        ).run()
        assert factor1.profile == default.profile
        assert base.completed == factor1.completed


class TestWriterRngStreams:
    """Satellite: per-writer RNG streams follow the seed-hygiene convention."""

    def test_stream_names_never_collide(self):
        names = {
            f"{seed}:writer:{client_site_id(ordinal)}"
            for seed in range(5)
            for ordinal in range(5)
        }
        assert len(names) == 25
        # And the streams they seed are pairwise distinct.
        draws = {random.Random(name).random() for name in names}
        assert len(draws) == 25

    def test_writer_stream_is_independent_of_arrival_stream(self):
        # The arrival stream ("{seed}:client{ordinal}:stream") and the
        # writer stream of the same client must not be the same sequence.
        arrival = random.Random("7:client0:stream")
        writer = random.Random(f"7:writer:{client_site_id(0)}")
        assert [arrival.random() for _ in range(4)] != [
            writer.random() for _ in range(4)
        ]

    def test_writer_choices_follow_the_seed(self):
        # Different workload seeds reseed the writer streams, so which
        # relations get written -- visible, unreplicated, as the per-server
        # split of applied pages -- shifts with the seed.  Placement is
        # pinned so only the writer streams vary.
        splits = set()
        for seed in (1, 2, 3, 4):
            scenario = chain_scenario(
                num_relations=2, num_servers=2, cached_fraction=0.5, placement_seed=0
            )
            result = WorkloadRunner(
                scenario,
                Policy.DATA_SHIPPING,
                num_clients=2,
                stream=StreamConfig(
                    arrival="closed",
                    think_time=0.0,
                    queries_per_client=4,
                    write_fraction=1.0,
                ),
                seed=seed,
                cache="dynamic",
                consistency="invalidation",
            ).run()
            assert result.completed == result.submitted
            splits.add(
                (
                    result.profile["site.server1.consistency.write_pages"],
                    result.profile["site.server2.consistency.write_pages"],
                )
            )
        assert len(splits) > 1, "writer streams ignored the workload seed"
