"""A write committing while a page fault is in flight must not mask staleness.

Regression test for the ``ScanIterator._read_dynamic`` version-stamp bug:
the faulted page used to be stamped with ``manager.current_version`` read
*after* the fault completed, so a write landing mid-fault put its newer
version number on the older page contents -- the next hit compared equal,
validated fresh, and served stale bytes.  The fix captures the version
before issuing the fault, so a raced page is stamped conservatively and
the next hit re-faults.
"""

from dataclasses import replace

from repro.caching.config import CacheConfig
from repro.config import OptimizerConfig
from repro.consistency import make_protocol
from repro.costmodel.model import Objective
from repro.engine.executor import QueryExecutor
from repro.hardware.topology import Topology
from repro.optimizer.two_phase import RandomizedOptimizer
from repro.plans.policies import Policy
from repro.sim import Environment
from repro.workloads.scenarios import chain_scenario


def test_mid_fault_write_is_stamped_conservatively_and_never_served_stale():
    scenario = chain_scenario(num_relations=2, num_servers=1, cached_fraction=0.0)
    config = replace(
        scenario.config.with_clients(1), cache=CacheConfig(mode="dynamic")
    )
    env = Environment()
    topology = Topology(env, config, seed=1)
    scenario.catalog.install(topology)
    manager = make_protocol("invalidation", topology)
    topology.consistency = manager

    plan = RandomizedOptimizer(
        scenario.query,
        scenario.environment(),
        policy=Policy.DATA_SHIPPING,
        objective=Objective.RESPONSE_TIME,
        config=OptimizerConfig.fast(),
        seed=1,
    ).optimize().plan

    executor = QueryExecutor(
        config, scenario.catalog, scenario.query, seed=1, topology=topology
    )
    client = topology.clients[0]
    buffer = client.buffer_cache
    assert buffer is not None
    server = topology.servers[0]
    relations = ("R0", "R1")
    network = topology.network

    def writer():
        # Wait for the first fault to be in flight: its request message has
        # crossed the wire (bytes_sent > 0) but no page-0 reply has been
        # admitted yet.  Committing at that instant races the write against
        # the open fault.
        while network.bytes_sent == 0 or any(
            buffer.contains(r, 0) for r in relations
        ):
            yield 1e-6
        for relation in relations:
            yield from manager.commit_write(server, relation, (0,))

    env.process(writer(), name="mid-fault-writer")
    result = executor.execute(plan)
    assert result.response_time > 0.0

    # Both writes committed; the version table moved to 1 everywhere.
    assert all(manager.versions.version(r, 0) == 1 for r in relations)
    stamps = sorted(buffer.version_of(r, 0) for r in relations)
    # One fault was already in flight when the write landed: that page must
    # carry the PRE-write stamp (0).  The other relation faulted after the
    # commit and picked up the new version.  (The old post-fault capture
    # stamped both with 1, masking the raced page as fresh.)
    assert stamps == [0, 1]

    # The raced page is detected -- not served -- on its next hit.
    raced = next(r for r in relations if buffer.version_of(r, 0) == 0)
    box = {}

    def revalidate():
        box["fresh"] = yield from manager.validate_hit(client, server, raced, 0)

    env.run(until=env.process(revalidate(), name="revalidate"))
    assert box["fresh"] is False
    assert client.consistency.stale_hits == 1
    assert not buffer.contains(raced, 0)  # invalidated, will re-fault
    assert manager.stale_served == 0
