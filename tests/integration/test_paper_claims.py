"""Integration tests: the paper's claims, end to end.

Each test runs the full pipeline (workload -> randomized optimizer ->
simulator) at a single representative experiment point and asserts the
qualitative claim the paper makes there.  The benchmark suite covers the
full sweeps; these tests guard the conclusions in the regular test run.
"""

import pytest

from repro.config import BufferAllocation, OptimizerConfig
from repro.costmodel import Objective
from repro.experiments.runner import RunSettings, measure_policy
from repro.plans import Policy
from repro.workloads import chain_scenario

SETTINGS = RunSettings(seeds=(3, 7), optimizer=OptimizerConfig.fast())


def two_way(cache, allocation, load=0.0):
    def factory(seed):
        return chain_scenario(
            num_relations=2,
            num_servers=1,
            allocation=allocation,
            cached_fraction=cache,
            placement_seed=seed,
            server_load=load,
        )

    return factory


def ten_way(servers, cached_relations=0):
    def factory(seed):
        return chain_scenario(
            num_relations=10,
            num_servers=servers,
            allocation=BufferAllocation.MINIMUM,
            cached_relations=cached_relations or None,
            placement_seed=seed,
        )

    return factory


def run(factory, policy, objective):
    return measure_policy(factory, policy, objective, SETTINGS)


class TestSection421CommunicationVolume:
    def test_ds_crossover_at_half_cached(self):
        """Figure 2: DS sends less than QS exactly past 50% cached."""
        for cache, winner in ((0.25, "QS"), (0.75, "DS")):
            ds = run(two_way(cache, BufferAllocation.MINIMUM),
                     Policy.DATA_SHIPPING, Objective.PAGES_SENT)
            qs = run(two_way(cache, BufferAllocation.MINIMUM),
                     Policy.QUERY_SHIPPING, Objective.PAGES_SENT)
            better = "DS" if ds.pages_sent.mean < qs.pages_sent.mean else "QS"
            assert better == winner


class TestSection422MinimumAllocation:
    def test_qs_suffers_disk_contention(self):
        """Figure 3: QS is roughly 2x worse than hybrid's split plan."""
        qs = run(two_way(0.0, BufferAllocation.MINIMUM),
                 Policy.QUERY_SHIPPING, Objective.RESPONSE_TIME)
        hy = run(two_way(0.0, BufferAllocation.MINIMUM),
                 Policy.HYBRID_SHIPPING, Objective.RESPONSE_TIME)
        assert qs.response_time.mean > 2.0 * hy.response_time.mean

    def test_caching_degrades_ds(self):
        uncached = run(two_way(0.0, BufferAllocation.MINIMUM),
                       Policy.DATA_SHIPPING, Objective.RESPONSE_TIME)
        cached = run(two_way(1.0, BufferAllocation.MINIMUM),
                     Policy.DATA_SHIPPING, Objective.RESPONSE_TIME)
        assert cached.response_time.mean > 1.8 * uncached.response_time.mean

    def test_hybrid_not_forced_to_use_cache(self):
        """'Unlike DS, the HY approach is not forced to use cached data.'"""
        uncached = run(two_way(0.0, BufferAllocation.MINIMUM),
                       Policy.HYBRID_SHIPPING, Objective.RESPONSE_TIME)
        cached = run(two_way(1.0, BufferAllocation.MINIMUM),
                     Policy.HYBRID_SHIPPING, Objective.RESPONSE_TIME)
        assert cached.response_time.mean == pytest.approx(
            uncached.response_time.mean, rel=0.05
        )

    def test_loaded_server_makes_caching_valuable(self):
        """Figure 4's flip at ~90% server-disk utilization."""
        load = 70.0
        uncached = run(two_way(0.0, BufferAllocation.MINIMUM, load),
                       Policy.DATA_SHIPPING, Objective.RESPONSE_TIME)
        cached = run(two_way(1.0, BufferAllocation.MINIMUM, load),
                     Policy.DATA_SHIPPING, Objective.RESPONSE_TIME)
        assert cached.response_time.mean < 0.75 * uncached.response_time.mean


class TestSection423MaximumAllocation:
    def test_crossover_beyond_half(self):
        """DS still loses at exactly 50% cached (no comm/work overlap)."""
        ds = run(two_way(0.5, BufferAllocation.MAXIMUM),
                 Policy.DATA_SHIPPING, Objective.RESPONSE_TIME)
        qs = run(two_way(0.5, BufferAllocation.MAXIMUM),
                 Policy.QUERY_SHIPPING, Objective.RESPONSE_TIME)
        assert qs.response_time.mean < ds.response_time.mean

    def test_ds_wins_fully_cached(self):
        ds = run(two_way(1.0, BufferAllocation.MAXIMUM),
                 Policy.DATA_SHIPPING, Objective.RESPONSE_TIME)
        qs = run(two_way(1.0, BufferAllocation.MAXIMUM),
                 Policy.QUERY_SHIPPING, Objective.RESPONSE_TIME)
        assert ds.response_time.mean < qs.response_time.mean


class TestSection43TenWayJoins:
    def test_qs_communication_grows_with_servers(self):
        """Figure 6: 250 pages at one server, 2500 at ten."""
        one = run(ten_way(1), Policy.QUERY_SHIPPING, Objective.PAGES_SENT)
        ten = run(ten_way(10), Policy.QUERY_SHIPPING, Objective.PAGES_SENT)
        assert one.pages_sent.mean == 250
        assert ten.pages_sent.mean == 2500

    def test_hybrid_beats_both_with_half_cache(self):
        """Figure 7: HY sends less than DS and QS at mid-range servers."""
        factory = ten_way(3, cached_relations=5)
        results = {
            policy: run(factory, policy, Objective.PAGES_SENT).pages_sent.mean
            for policy in Policy
        }
        assert results[Policy.DATA_SHIPPING] == 1250
        assert results[Policy.HYBRID_SHIPPING] < results[Policy.DATA_SHIPPING]
        assert results[Policy.HYBRID_SHIPPING] < results[Policy.QUERY_SHIPPING]

    def test_response_time_endpoints(self):
        """Figure 8: QS worst at one server, best at ten; DS flat."""
        ds1 = run(ten_way(1), Policy.DATA_SHIPPING, Objective.RESPONSE_TIME)
        ds10 = run(ten_way(10), Policy.DATA_SHIPPING, Objective.RESPONSE_TIME)
        qs1 = run(ten_way(1), Policy.QUERY_SHIPPING, Objective.RESPONSE_TIME)
        qs10 = run(ten_way(10), Policy.QUERY_SHIPPING, Objective.RESPONSE_TIME)
        assert ds10.response_time.mean == pytest.approx(ds1.response_time.mean, rel=0.05)
        assert qs1.response_time.mean > 1.5 * ds1.response_time.mean
        assert qs10.response_time.mean < 0.5 * ds10.response_time.mean
