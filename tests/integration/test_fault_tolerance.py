"""Acceptance scenario: crash the primary server of one relation mid-scan.

With ``cached_fraction=1.0`` every relation is fully cached at the client,
so the paper's flexibility argument (section 4.2) extends to availability:
policies that may read cached copies (data- and hybrid-shipping) survive a
server crash by falling back to the client cache, while query-shipping --
bound to primary copies -- must wait for the server to come back or fail.
"""

import math

import pytest

from repro import api
from repro.errors import SiteUnavailableError, TransientFaultError
from repro.faults import FaultSchedule, RecoveryPolicy

CRASH = FaultSchedule.server_crash(1, at=0.2)  # mid-scan, never restarts


class TestMidScanCrash:
    def test_hybrid_falls_back_to_client_cache(self):
        outcome = api.run_query(
            policy="hybrid", num_relations=2, num_servers=1,
            cached_fraction=1.0, faults=CRASH,
        )
        result = outcome.result
        assert result.result_tuples > 0
        assert result.replans >= 1
        assert math.isfinite(result.time_to_recover) and result.time_to_recover > 0.0

    def test_data_shipping_completes(self):
        outcome = api.run_query(
            policy="data", num_relations=2, num_servers=1,
            cached_fraction=1.0, faults=CRASH,
        )
        assert outcome.result.result_tuples > 0

    def test_query_shipping_fails_after_bounded_retries(self):
        with pytest.raises(SiteUnavailableError):
            api.run_query(
                policy="query", num_relations=2, num_servers=1,
                cached_fraction=1.0, faults=CRASH,
                recovery=RecoveryPolicy(max_attempts=3, base_backoff=0.2),
            )

    def test_query_shipping_recovers_within_restart_window(self):
        outcome = api.run_query(
            policy="query", num_relations=2, num_servers=1, cached_fraction=1.0,
            faults=FaultSchedule.server_crash(1, at=0.2, duration=1.0),
            recovery=RecoveryPolicy(max_attempts=8, base_backoff=0.5),
        )
        assert outcome.result.result_tuples > 0
        assert outcome.result.retries >= 1

    def test_recovered_result_matches_fault_free_answer(self):
        clean = api.run_query(
            policy="hybrid", num_relations=2, num_servers=1, cached_fraction=1.0
        )
        recovered = api.run_query(
            policy="hybrid", num_relations=2, num_servers=1,
            cached_fraction=1.0, faults=CRASH,
        )
        assert recovered.result.result_tuples == clean.result.result_tuples

    def test_availability_ordering(self):
        """The paper's flexibility ranking carries over to availability:
        under a permanent crash, HY and DS finish while QS cannot."""
        finished = {}
        for policy in ("data", "query", "hybrid"):
            try:
                outcome = api.run_query(
                    policy=policy, num_relations=2, num_servers=1,
                    cached_fraction=1.0, faults=CRASH,
                    recovery=RecoveryPolicy(max_attempts=3, base_backoff=0.2),
                )
                finished[policy] = outcome.result.result_tuples > 0
            except TransientFaultError:
                finished[policy] = False
        assert finished == {"data": True, "hybrid": True, "query": False}


class TestAvailabilitySweepFigure:
    def test_sweep_shape(self):
        from repro.experiments.figures import availability_sweep
        from repro.experiments.runner import RunSettings

        result = availability_sweep(
            settings=RunSettings(seeds=(3, 7)), mtbf_values=(5.0, 40.0)
        )
        # DS is immune: same completed fraction and no replans everywhere.
        assert all(p.y == 100.0 for p in result.series["DS completed [%]"])
        assert all(p.y == 0.0 for p in result.series["DS replans"])
        # HY completes everywhere by falling back to the client cache.
        assert all(p.y == 100.0 for p in result.series["HY completed [%]"])
        # More reliable servers never hurt QS.
        qs = result.series_means("QS")
        assert qs[40.0] <= qs[5.0]
