"""Telemetry sampler: zero overhead, determinism, ring buffers, deadlock dumps."""

from __future__ import annotations

import pytest

from repro import api
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Series, TelemetryConfig, TelemetrySampler
from repro.sim.engine import SimulationError


class TestSeries:
    def test_ring_buffer_caps_and_counts_drops(self):
        series = Series("x", capacity=4)
        for i in range(7):
            series.append(float(i), float(i) * 10.0)
        assert len(series) == 4
        assert series.dropped == 3
        assert series.times() == [3.0, 4.0, 5.0, 6.0]
        assert series.values() == [30.0, 40.0, 50.0, 60.0]

    def test_last_returns_most_recent_oldest_first(self):
        series = Series("x", capacity=8)
        for i in range(5):
            series.append(float(i), float(i))
        assert series.last(2) == [(3.0, 3.0), (4.0, 4.0)]
        assert series.last(99) == list(series.samples)
        assert series.last(0) == []


class TestConfig:
    def test_rejects_bad_interval_and_capacity(self):
        with pytest.raises(ValueError):
            TelemetryConfig(interval=0.0)
        with pytest.raises(ValueError):
            TelemetryConfig(interval=-1.0)
        with pytest.raises(ValueError):
            TelemetryConfig(capacity=0)

    def test_channel_filter(self):
        config = TelemetryConfig(channels=("disk0.utilization",))
        assert config.wants("site.client.disk0.utilization")
        assert not config.wants("site.client.cpu.utilization")
        assert TelemetryConfig().wants("anything")


class TestSampler:
    def test_rate_channel_differences_busy_time(self, env):
        registry = MetricsRegistry()
        registry.gauge("site.client.disk0.busy_time", lambda: env.now * 0.5)
        sampler = TelemetrySampler(env, registry, TelemetryConfig(interval=1.0))

        def ticker():
            yield env.timeout(3.0)

        env.process(ticker())
        env.run()
        telemetry = sampler.snapshot()
        # The sampler outlives the ticker by one heartbeat (it parks only
        # after finding the queue empty), hence the t=4 sample.
        assert telemetry.times("site.client.disk0.utilization") == [
            0.0,
            1.0,
            2.0,
            3.0,
            4.0,
        ]
        # First sample baselines the gauge; each later interval saw 0.5s of
        # busy time per 1.0s of simulated time.
        assert telemetry.values("site.client.disk0.utilization") == [
            0.0,
            0.5,
            0.5,
            0.5,
            0.5,
        ]

    def test_state_channel_sampled_as_is(self, env):
        registry = MetricsRegistry()
        depth = {"value": 2.0}
        registry.gauge("site.client.memory.granted", lambda: depth["value"])

        sampler = TelemetrySampler(env, registry, TelemetryConfig(interval=1.0))

        def mutate():
            yield env.timeout(1.5)
            depth["value"] = 7.0
            yield env.timeout(1.5)

        env.process(mutate())
        env.run()
        assert sampler.snapshot().values("site.client.memory.granted") == [
            2.0,
            2.0,
            7.0,
            7.0,
            7.0,
        ]

    def test_channels_filter_drops_unwanted_series(self, env):
        registry = MetricsRegistry()
        registry.gauge("site.client.disk0.busy_time", lambda: env.now)
        registry.gauge("site.client.memory.granted", lambda: 1.0)
        config = TelemetryConfig(interval=1.0, channels=("memory.granted",))
        sampler = TelemetrySampler(env, registry, config)

        def ticker():
            yield env.timeout(2.0)

        env.process(ticker())
        env.run()
        assert sampler.snapshot().names() == ["site.client.memory.granted"]

    def test_gauges_registered_mid_run_are_picked_up(self, env):
        registry = MetricsRegistry()
        sampler = TelemetrySampler(env, registry, TelemetryConfig(interval=1.0))

        def register_late():
            yield env.timeout(1.5)
            registry.gauge("site.server1.memory.waiting", lambda: 3.0)
            yield env.timeout(1.5)

        env.process(register_late())
        env.run()
        telemetry = sampler.snapshot()
        # Discovered at the t=2 sample; earlier grid points don't exist.
        assert telemetry.times("site.server1.memory.waiting") == [2.0, 3.0, 4.0]

    def test_sampler_parks_so_the_simulation_can_end(self, env):
        registry = MetricsRegistry()
        registry.gauge("site.client.memory.granted", lambda: 1.0)
        TelemetrySampler(env, registry, TelemetryConfig(interval=0.5))

        def work():
            yield env.timeout(2.0)

        process = env.process(work())
        env.run(until=process)  # would deadlock if the sampler never parked
        env.run()  # drain the final heartbeat; must terminate
        assert env.now <= 2.5

    def test_deadlock_dump_includes_telemetry_lead_up(self, env):
        registry = MetricsRegistry()
        depth = {"value": 0.0}
        registry.gauge("site.client.memory.granted", lambda: depth["value"])
        TelemetrySampler(env, registry, TelemetryConfig(interval=0.1))
        never = env.event()

        def stuck():
            depth["value"] = 4.0
            yield env.timeout(0.25)
            yield never

        process = env.process(stuck(), name="stuck-query")
        with pytest.raises(SimulationError) as excinfo:
            env.run(until=process)
        message = str(excinfo.value)
        assert "'stuck-query'" in message
        assert "telemetry (interval 0.1s" in message
        assert "site.client.memory.granted" in message
        assert "4@" in message  # the last sampled value, with its timestamp


class TestEndToEnd:
    def test_sampling_does_not_change_simulation_results(self):
        plain = api.run_query(policy="hybrid", cached_fraction=0.5, seed=3).result
        sampled = api.run_query(
            policy="hybrid", cached_fraction=0.5, seed=3, telemetry=True
        ).result
        assert sampled.response_time == plain.response_time
        assert sampled.pages_sent == plain.pages_sent
        assert plain.telemetry is None
        assert sampled.telemetry is not None
        assert sampled.telemetry.samples_taken > 0

    def test_same_seed_produces_identical_telemetry(self):
        config = TelemetryConfig(interval=0.25)
        first = api.run_query(
            policy="data", cached_fraction=0.5, seed=7, telemetry=config
        ).result.telemetry
        second = api.run_query(
            policy="data", cached_fraction=0.5, seed=7, telemetry=config
        ).result.telemetry
        assert first == second

    def test_telemetry_spans_the_run_and_has_site_channels(self):
        outcome = api.run_query(
            policy="query", cached_fraction=0.25, seed=0, telemetry=0.25
        )
        telemetry = outcome.result.telemetry
        assert telemetry is not None
        assert telemetry.start == 0.0
        assert telemetry.end == pytest.approx(outcome.result.response_time)
        names = telemetry.names()
        assert any(n.endswith("disk0.utilization") for n in names)
        assert any(n.endswith("cpu.utilization") for n in names)
        assert "network.data_pages_sent" in names
        # Grid is shared: every series carries the same timestamps.
        times = {tuple(telemetry.times(name)) for name in names}
        assert len(times) == 1

    def test_workload_telemetry_includes_admission_gauges(self):
        result = api.run_workload(
            policy="hybrid",
            num_clients=4,
            queries_per_client=2,
            cached_fraction=0.5,
            seed=3,
            telemetry=TelemetryConfig(interval=0.5),
        )
        telemetry = result.telemetry
        assert telemetry is not None
        assert "admission.server1.queued" in telemetry
        assert "admission.server1.running" in telemetry
        # Admission caps concurrency, so the running gauge must have been
        # nonzero at some sampled instant.
        assert max(telemetry.values("admission.server1.running")) > 0.0

    def test_capacity_cap_bounds_series_and_counts_drops(self):
        config = TelemetryConfig(interval=0.05, capacity=8)
        telemetry = api.run_query(
            policy="hybrid", cached_fraction=0.5, seed=3, telemetry=config
        ).result.telemetry
        assert telemetry is not None
        assert telemetry.dropped > 0
        assert all(len(samples) <= 8 for samples in telemetry.series.values())
