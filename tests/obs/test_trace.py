"""Unit tests for the span tracer."""

import pytest

from repro.errors import SimulationError
from repro.obs import Tracer
from repro.sim import Channel, Environment, Resource


@pytest.fixture
def traced_env():
    env = Environment()
    return env, Tracer().bind(env)


class TestSpans:
    def test_bind_attaches_to_environment(self, traced_env):
        env, tracer = traced_env
        assert env.tracer is tracer

    def test_span_records_simulated_interval(self, traced_env):
        env, tracer = traced_env

        def worker():
            span = tracer.begin("work", cat="op", op="scan[A]@client")
            yield env.timeout(2.5)
            tracer.end(span)

        env.run(until=env.process(worker(), name="w"))
        (span,) = tracer.spans
        assert (span.track, span.start, span.end) == ("w", 0.0, 2.5)
        assert span.duration == pytest.approx(2.5)

    def test_resource_span_inherits_innermost_op_label(self, traced_env):
        env, tracer = traced_env
        cpu = Resource(env, name="cpu")
        cpu.trace_cat = "cpu"

        def worker():
            outer = tracer.begin("outer.next", cat="op", op="join#0@client")
            inner = tracer.begin("inner.next", cat="op", op="scan[A]@client")
            yield from cpu.serve(1.0)
            tracer.end(inner)
            yield from cpu.serve(1.0)
            tracer.end(outer)

        env.run(until=env.process(worker(), name="w"))
        cpu_spans = [s for s in tracer.spans if s.cat == "cpu"]
        assert [s.op for s in cpu_spans] == ["scan[A]@client", "join#0@client"]

    def test_out_of_order_end_is_detected(self, traced_env):
        env, tracer = traced_env

        def worker():
            outer = tracer.begin("outer")
            tracer.begin("inner")
            yield env.timeout(1.0)
            tracer.end(outer)  # inner is still open

        with pytest.raises(AssertionError, match="out of order"):
            env.run(until=env.process(worker(), name="w"))

    def test_same_named_processes_get_distinct_tracks(self, traced_env):
        """Two processes may share a name (e.g. two exchanges between the
        same site pair); their spans must not interleave on one stack."""
        env, tracer = traced_env

        def worker(delay):
            span = tracer.begin("work")
            yield env.timeout(delay)
            tracer.end(span)

        first = env.process(worker(3.0), name="pump:server1->client")
        second = env.process(worker(1.0), name="pump:server1->client")

        def driver():
            yield first
            yield second

        env.run(until=env.process(driver(), name="driver"))
        tracks = {s.track for s in tracer.spans}
        assert tracks == {"pump:server1->client", "pump:server1->client#2"}

    def test_finish_closes_dangling_spans(self, traced_env):
        env, tracer = traced_env

        def worker():
            tracer.begin("never-ended", cat="op", op="x")
            yield env.timeout(4.0)

        env.run(until=env.process(worker(), name="w"))
        assert tracer.spans == []
        tracer.finish()
        (span,) = tracer.spans
        assert span.end == 4.0

    def test_self_time_excludes_nested_op_spans(self, traced_env):
        env, tracer = traced_env

        def worker():
            outer = tracer.begin("outer", cat="op", op="outer")
            yield env.timeout(1.0)
            inner = tracer.begin("inner", cat="op", op="inner")
            yield env.timeout(2.0)
            tracer.end(inner)
            yield env.timeout(1.0)
            tracer.end(outer)

        env.run(until=env.process(worker(), name="w"))
        assert tracer.operator_self_times() == pytest.approx({"outer": 2.0, "inner": 2.0})

    def test_coverage_unions_overlapping_spans(self, traced_env):
        env, tracer = traced_env

        def worker(start, duration):
            yield env.timeout(start)
            span = tracer.begin("work", cat="op", op="w")
            yield env.timeout(duration)
            tracer.end(span)

        a = env.process(worker(0.0, 3.0), name="a")
        b = env.process(worker(2.0, 3.0), name="b")
        c = env.process(worker(7.0, 1.0), name="c")

        def driver():
            yield a
            yield b
            yield c

        env.run(until=env.process(driver(), name="driver"))
        assert tracer.coverage() == pytest.approx(6.0)  # [0,5) + [7,8)


class TestDeadlockDiagnostics:
    def test_deadlock_dump_names_waits_and_span_stacks(self, traced_env):
        env, tracer = traced_env
        channel = Channel(env, name="results")

        def consumer():
            span = tracer.begin("join#0@client.next", cat="op", op="join#0@client")
            yield channel.get()
            tracer.end(span)

        env.process(consumer(), name="consumer")

        def driver():
            yield env.timeout(1.0)
            yield Channel(env, name="other").get()

        with pytest.raises(SimulationError) as excinfo:
            env.run(until=env.process(driver(), name="driver"))
        message = str(excinfo.value)
        assert "deadlock at t=1" in message
        assert "'consumer' waiting on get() on empty channel 'results'" in message
        assert "span stack: join#0@client.next" in message
        assert "'driver' waiting on get() on empty channel 'other'" in message

    def test_deadlock_dump_without_tracer_still_explains_waits(self):
        env = Environment()
        channel = Channel(env, name="pipe")

        def consumer():
            yield channel.get()

        with pytest.raises(SimulationError, match="get\\(\\) on empty channel 'pipe'"):
            env.run(until=env.process(consumer(), name="consumer"))
