"""Traces survive failed runs: finished, metadata-stamped, and written out."""

import json

import pytest

from repro import api
from repro.errors import TransientFaultError
from repro.faults import FaultSchedule, RecoveryPolicy
from repro.obs import Tracer


class TestErrorPathTraces:
    def test_failed_run_still_writes_chrome_trace(self, tmp_path):
        """A fault that exhausts recovery leaves a loadable trace behind."""
        path = tmp_path / "doomed.json"
        with pytest.raises(TransientFaultError):
            api.run_query(
                policy="qs",
                num_relations=2,
                seed=3,
                faults=FaultSchedule.server_crash(1, at=0.2),
                recovery=RecoveryPolicy(max_attempts=2, base_backoff=0.2),
                trace=str(path),
            )
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        assert payload["otherData"]["policy"] == "query-shipping"
        assert payload["otherData"]["seed"] == 3

    def test_failed_run_finishes_a_caller_tracer(self):
        tracer = Tracer()
        with pytest.raises(TransientFaultError):
            api.run_query(
                policy="qs",
                num_relations=2,
                seed=3,
                faults=FaultSchedule.server_crash(1, at=0.2),
                recovery=RecoveryPolicy(max_attempts=2, base_backoff=0.2),
                trace=tracer,
            )
        assert tracer.spans
        assert all(span.end is not None for span in tracer.spans)

    def test_finish_is_a_noop_on_an_unbound_tracer(self):
        tracer = Tracer()
        tracer.finish()
        assert tracer.spans == []
