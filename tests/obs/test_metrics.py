"""Metrics registry and profile snapshot tests."""

import pytest

from repro import api
from repro.obs import MetricsRegistry
from repro.sim import Counter, Tally


class TestMetricsRegistry:
    def test_counter_and_gauge_snapshot(self):
        registry = MetricsRegistry()
        pages = registry.counter("site.server1.disk0.pages_read")
        pages.add(7)
        registry.gauge("site.server1.cpu.utilization", lambda: 0.25)
        snapshot = registry.snapshot()
        assert snapshot["site.server1.disk0.pages_read"] == 7
        assert snapshot["site.server1.cpu.utilization"] == 0.25

    def test_tally_expands_to_statistic_leaves(self):
        registry = MetricsRegistry()
        delays = registry.tally("network.delay")
        for value in (1.0, 3.0):
            delays.record(value)
        snapshot = registry.snapshot()
        assert snapshot["network.delay.count"] == 2
        assert snapshot["network.delay.mean"] == pytest.approx(2.0)
        assert snapshot["network.delay.min"] == 1.0
        assert snapshot["network.delay.max"] == 3.0

    def test_register_existing_instruments(self):
        registry = MetricsRegistry()
        counter = Counter("faults.injected")
        counter.add(2)
        registry.register(counter)
        registry.register(Tally("unused.tally"))
        snapshot = registry.snapshot()
        assert snapshot["faults.injected"] == 2
        # An empty tally has no meaningful mean/min/max -- only its count.
        assert snapshot["unused.tally.count"] == 0
        assert "unused.tally.mean" not in snapshot

    def test_register_requires_a_name(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.register(Counter())

    def test_prefix_filtering(self):
        registry = MetricsRegistry()
        registry.counter("site.client.disk0.pages_read").add(1)
        registry.counter("site.server1.disk0.pages_read").add(2)
        registry.counter("network.data_pages_sent").add(3)
        assert set(registry.snapshot("site.server1")) == {"site.server1.disk0.pages_read"}
        assert registry.names("network") == ["network.data_pages_sent"]

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        assert registry.counter("x") is counter  # get-or-create
        with pytest.raises(TypeError):
            registry.tally("x")


class TestValueAccessor:
    def test_value_reads_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("pages").add(5)
        registry.gauge("depth", lambda: 2.5)
        assert registry.value("pages") == 5.0
        assert registry.value("depth") == 2.5

    def test_value_rejects_tallies(self):
        registry = MetricsRegistry()
        registry.tally("delays")
        with pytest.raises(TypeError):
            registry.value("delays")

    def test_value_raises_on_unknown_name(self):
        with pytest.raises(KeyError):
            MetricsRegistry().value("nope")


class TestSnapshotDelta:
    def test_counter_deltas_rebase_against_baseline(self):
        registry = MetricsRegistry()
        pages = registry.counter("site.server1.disk0.pages_read")
        pages.add(10)
        baseline = registry.snapshot()
        pages.add(7)
        delta = registry.snapshot_delta(baseline)
        assert delta["site.server1.disk0.pages_read"] == 7

    def test_absolute_suffixes_stay_absolute(self):
        registry = MetricsRegistry()
        registry.gauge("site.server1.cpu.utilization", lambda: 0.8)
        registry.gauge("site.client.memory.granted", lambda: 64.0)
        registry.gauge("admission.server1.queued", lambda: 3.0)
        registry.gauge("admission.server1.running", lambda: 4.0)
        baseline = registry.snapshot()
        delta = registry.snapshot_delta(baseline)
        # State gauges describe the current occupancy, not activity since
        # the baseline; a delta of 0.0 here would be meaningless.
        assert delta["site.server1.cpu.utilization"] == 0.8
        assert delta["site.client.memory.granted"] == 64.0
        assert delta["admission.server1.queued"] == 3.0
        assert delta["admission.server1.running"] == 4.0

    def test_gauge_reregistration_mid_run_uses_new_callable(self):
        registry = MetricsRegistry()
        registry.gauge("site.client.cache.hits", lambda: 100.0)
        baseline = registry.snapshot()
        # A re-register (e.g. a dynamic buffer cache replacing the static
        # one mid-run) swaps the callable; deltas still rebase against the
        # numeric baseline, whatever produced it.
        registry.gauge("site.client.cache.hits", lambda: 130.0)
        assert len(registry) == 1
        delta = registry.snapshot_delta(baseline)
        assert delta["site.client.cache.hits"] == 30.0

    def test_names_missing_from_baseline_start_at_zero(self):
        registry = MetricsRegistry()
        registry.counter("a").add(1)
        baseline = registry.snapshot()
        registry.counter("b").add(5)
        delta = registry.snapshot_delta(baseline)
        assert delta["a"] == 0
        assert delta["b"] == 5

    def test_repeated_execute_on_one_topology_isolates_activity(self):
        """Back-to-back snapshots see only their own window's counters."""
        registry = MetricsRegistry()
        pages = registry.counter("site.server1.disk0.pages_read")
        windows = []
        for work in (3, 11, 2):
            baseline = registry.snapshot()
            pages.add(work)
            windows.append(registry.snapshot_delta(baseline))
        assert [w["site.server1.disk0.pages_read"] for w in windows] == [3, 11, 2]


class TestExecutionProfile:
    def test_profile_reports_hardware_activity(self):
        outcome = api.run_query(policy="query", cached_fraction=0.0, seed=1)
        profile = outcome.result.profile
        assert profile["site.server1.disk0.pages_read"] > 0
        assert profile["network.data_pages_sent"] == outcome.result.pages_sent
        assert 0.0 <= profile["site.server1.cpu.utilization"] <= 1.0
        assert profile["recovery.retries"] == 0

    def test_workload_result_carries_profile(self):
        result = api.run_workload(num_clients=2, queries_per_client=1, seed=1)
        assert result.profile["network.data_pages_sent"] > 0
        # Two client sites exist, each with its own hardware metrics.
        assert "site.client.cpu.utilization" in result.profile
        assert "site.client1.cpu.utilization" in result.profile
