"""Per-query profile reports and the ``repro`` profile/dash subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.obs.profile import profile_query, render_profile


class TestProfileQuery:
    @pytest.fixture(scope="class")
    def hybrid_profile(self):
        return profile_query(policy="hybrid", cached_fraction=0.5, seed=0)

    def test_report_covers_every_plan_operator(self, hybrid_profile):
        report, bound = hybrid_profile
        labels = set(bound.operator_labels().values())
        reported = {op.label for op in report.operators}
        # Every plan-tree node that burned resources appears in the report;
        # xfer:* receivers are extra (not tree nodes).
        assert labels & reported
        assert all(label in labels or label.startswith("xfer:") for label in reported)

    def test_render_draws_the_tree_with_costs(self, hybrid_profile):
        report, bound = hybrid_profile
        text = render_profile(report, bound)
        lines = text.splitlines()
        assert lines[0] == f"policy: {report.policy}"
        assert lines[1].startswith("response time: predicted")
        assert any("display@client" in line for line in lines)
        assert any("join#0@" in line and "|-- " in line or "'-- " in line
                   for line in lines)
        assert any("scan[" in line for line in lines)
        # Cost columns: predicted/actual seconds plus a signed delta.
        assert any("s " in line and "%" in line for line in lines[4:])

    def test_render_lists_network_transfers_separately(self):
        report, bound = profile_query(policy="query", cached_fraction=0.0, seed=0)
        text = render_profile(report, bound)
        if any(op.label.startswith("xfer:") for op in report.operators):
            assert "network transfers (not plan-tree nodes):" in text


class TestCliSmoke:
    def test_profile_subcommand_prints_report(self, capsys):
        assert repro_main(["profile", "--policy", "hybrid", "--cached", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "response time: predicted" in out
        assert "display@client" in out

    def test_dash_subcommand_writes_series_file(self, tmp_path, capsys):
        out_path = tmp_path / "telemetry.json"
        code = repro_main(
            ["dash", "--policy", "data", "--cached", "0.5", "--out", str(out_path)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "response time" in printed
        assert "telemetry:" in printed
        document = json.loads(out_path.read_text())
        assert document["samples_taken"] > 0
        assert document["series"]

    def test_dash_subcommand_workload_mode(self, capsys):
        code = repro_main(
            ["dash", "--policy", "hybrid", "--clients", "2", "--queries", "1",
             "--cached", "0.5", "--channel", "utilization"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "queries in" in printed
        body = printed.splitlines()
        assert any("utilization" in line and "|" in line for line in body)
