"""Cost-model validation harness tests.

These check the *plumbing* tightly (labels line up, CPU and network
predictions match the simulator almost exactly) and the *model quality*
loosely (disk predictions within a generous band -- the analytic model
does not reproduce cache-state details, which is exactly what the harness
exists to expose).
"""

import pytest

from repro.costmodel.model import CostModel
from repro.obs.trace import RESOURCE_CATEGORIES
from repro.obs.validate import render_validation, validate_plan_costs
from repro.optimizer.two_phase import optimize
from repro.plans.policies import Policy
from repro.workloads.scenarios import chain_scenario


@pytest.fixture(scope="module")
def report():
    scenario = chain_scenario(num_relations=2, num_servers=1, cached_fraction=0.5,
                              placement_seed=3)
    optimization = optimize(
        scenario.query, scenario.environment(), policy=Policy.HYBRID_SHIPPING, seed=3
    )
    return validate_plan_costs(scenario, optimization.plan, policy="hybrid", seed=3)


class TestBreakdownLabels:
    def test_predicted_and_actual_labels_coincide(self, report):
        """Every operator the cost model prices shows up in the trace under
        the same label, and vice versa -- the join key of the harness."""
        predicted = {op.label for op in report.operators if op.predicted_total > 0}
        actual = {op.label for op in report.operators if op.actual_total > 0}
        assert predicted == actual
        assert any(label.startswith("scan[") for label in predicted)
        assert any(label.startswith("join#0@") for label in predicted)
        assert any(label.startswith("xfer:") for label in predicted)

    def test_breakdown_sums_to_plan_cost_resources(self, report):
        """The per-operator breakdown is a partition of the priced work, not
        a second model: CPU/net seconds agree with the traced totals."""
        for op in report.operators:
            for resource in ("cpu", "net"):
                assert op.actual[resource] == pytest.approx(
                    op.predicted[resource], rel=0.01, abs=1e-6
                ), f"{op.label}.{resource}"

    def test_disk_predictions_within_model_tolerance(self, report):
        for op in report.operators:
            if op.predicted["disk"] > 0:
                assert abs(op.delta("disk")) < 0.30, op.label

    def test_response_time_within_model_tolerance(self, report):
        assert abs(report.response_time_delta) < 0.30


class TestEvaluateWithBreakdown:
    def test_matches_plain_evaluate(self):
        scenario = chain_scenario(num_relations=2, num_servers=1, cached_fraction=0.5)
        optimization = optimize(
            scenario.query, scenario.environment(), policy=Policy.QUERY_SHIPPING, seed=1
        )
        model = CostModel(scenario.query, scenario.environment())
        plain = model.evaluate(optimization.plan)
        with_breakdown, operators = model.evaluate_with_breakdown(optimization.plan)
        assert with_breakdown == plain
        assert operators
        for label, resources in operators.items():
            assert set(resources) == set(RESOURCE_CATEGORIES), label

    def test_breakdown_state_is_reset_afterwards(self):
        scenario = chain_scenario(num_relations=2, num_servers=1)
        optimization = optimize(
            scenario.query, scenario.environment(), policy=Policy.QUERY_SHIPPING, seed=1
        )
        model = CostModel(scenario.query, scenario.environment())
        model.evaluate_with_breakdown(optimization.plan)
        assert model._breakdown is None  # the optimizer hot path stays lean
        assert model.evaluate(optimization.plan) is not None


class TestRendering:
    def test_render_lists_every_active_operator(self, report):
        text = render_validation(report)
        assert "response time: predicted" in text
        assert "policy: hybrid" in text
        for op in report.operators:
            if op.predicted_total > 0 or op.actual_total > 0:
                assert op.label in text
