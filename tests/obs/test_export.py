"""Exporter and end-to-end trace tests: determinism, coverage, checker."""

import json
import re

import pytest

from repro import api
from repro.obs import (
    Tracer,
    chrome_counter_events,
    chrome_trace_json,
    render_dashboard,
    render_timeline,
    telemetry_csv,
    telemetry_json,
)
from repro.obs.check import check_trace


@pytest.fixture(scope="module")
def traced_outcome():
    return api.run_query(policy="hybrid", cached_fraction=0.5, seed=3, trace=True)


class TestChromeTraceExport:
    def test_same_seed_produces_byte_identical_json(self, traced_outcome):
        repeat = api.run_query(policy="hybrid", cached_fraction=0.5, seed=3, trace=True)
        assert chrome_trace_json(traced_outcome.trace) == chrome_trace_json(repeat.trace)

    def test_different_seed_produces_different_json(self, traced_outcome):
        other = api.run_query(policy="hybrid", cached_fraction=0.5, seed=4, trace=True)
        assert chrome_trace_json(traced_outcome.trace) != chrome_trace_json(other.trace)

    def test_document_passes_the_checker(self, traced_outcome):
        document = json.loads(chrome_trace_json(traced_outcome.trace))
        assert check_trace(document) == []

    def test_spans_carry_operator_labels(self, traced_outcome):
        document = json.loads(chrome_trace_json(traced_outcome.trace))
        ops = {
            event["args"]["op"]
            for event in document["traceEvents"]
            if event["ph"] == "X" and event.get("cat") == "op"
        }
        assert "join#0@client" in ops
        assert any(op.startswith("scan[") for op in ops)

    def test_checker_flags_broken_documents(self):
        assert check_trace({}) == ["missing or non-list 'traceEvents'"]
        problems = check_trace(
            {"traceEvents": [{"ph": "X", "name": "x"}], "otherData": {}}
        )
        assert any("missing keys" in p for p in problems)
        assert any("response_time/makespan missing" in p for p in problems)

    def test_checker_enforces_coverage(self):
        document = {
            "traceEvents": [
                {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1, "args": {"name": "t"}},
                {"ph": "X", "name": "q", "cat": "query", "ts": 0.0, "dur": 1e6,
                 "pid": 1, "tid": 1},
            ],
            "otherData": {"response_time": 2.0},  # only half covered
        }
        problems = check_trace(document)
        assert any("cover" in p for p in problems)


class TestOperatorCoverage:
    def test_operator_spans_cover_the_response_time(self, traced_outcome):
        """The acceptance property: no simulated time goes unattributed."""
        tracer = traced_outcome.trace
        covered = tracer.coverage()
        response_time = traced_outcome.result.response_time
        assert covered == pytest.approx(response_time, rel=0.01)

    def test_trace_metadata_carries_run_facts(self, traced_outcome):
        metadata = traced_outcome.trace.metadata
        assert metadata["response_time"] == traced_outcome.result.response_time
        assert metadata["policy"] == "hybrid-shipping"


class TestTimeline:
    def test_rows_per_operator_and_full_width(self, traced_outcome):
        text = render_timeline(traced_outcome.trace, width=40)
        lines = text.splitlines()
        assert any(line.startswith("join#0@client") for line in lines)
        assert any(line.startswith("query") for line in lines)
        # The root query row is busy for the whole run.
        (query_row,) = [line for line in lines if line.startswith("query")]
        assert "#" * 40 in query_row

    def test_empty_tracer_renders_placeholder(self):
        assert render_timeline(Tracer()) == "(empty trace)"


class TestUntracedRuns:
    def test_trace_false_attaches_no_tracer(self):
        outcome = api.run_query(policy="hybrid", cached_fraction=0.5, seed=3)
        assert outcome.trace is None

    def test_tracing_does_not_change_the_simulation(self, traced_outcome):
        untraced = api.run_query(policy="hybrid", cached_fraction=0.5, seed=3)
        assert untraced.result.response_time == traced_outcome.result.response_time
        assert untraced.result.pages_sent == traced_outcome.result.pages_sent
        assert untraced.result.profile == traced_outcome.result.profile

    def test_trace_path_writes_loadable_json(self, tmp_path):
        out = tmp_path / "trace.json"
        api.run_query(policy="hybrid", cached_fraction=0.5, seed=3, trace=str(out))
        document = json.loads(out.read_text())
        assert check_trace(document) == []


@pytest.fixture(scope="module")
def sampled_outcome():
    return api.run_query(
        policy="hybrid", cached_fraction=0.5, seed=3, trace=True, telemetry=0.25
    )


class TestTelemetryExport:
    def test_counter_events_merge_and_pass_checker(self, sampled_outcome):
        document = json.loads(
            chrome_trace_json(
                sampled_outcome.trace, telemetry=sampled_outcome.result.telemetry
            )
        )
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert all(e["cat"] == "telemetry" for e in counters)
        assert check_trace(document) == []

    def test_counter_events_sorted_and_numeric(self, sampled_outcome):
        events = chrome_counter_events(sampled_outcome.result.telemetry)
        keys = [(e["ts"], e["name"]) for e in events]
        assert keys == sorted(keys)
        for event in events:
            assert isinstance(event["args"]["value"], (int, float))
            assert not isinstance(event["args"]["value"], bool)

    def test_csv_has_header_and_one_row_per_sample(self, sampled_outcome):
        telemetry = sampled_outcome.result.telemetry
        lines = telemetry_csv(telemetry).splitlines()
        assert lines[0] == "time,channel,value"
        expected = sum(len(samples) for samples in telemetry.series.values())
        assert len(lines) == 1 + expected
        assert all(line.count(",") == 2 for line in lines[1:])

    def test_json_round_trips_the_snapshot(self, sampled_outcome):
        telemetry = sampled_outcome.result.telemetry
        document = json.loads(telemetry_json(telemetry))
        assert document["interval"] == telemetry.interval
        assert document["samples_taken"] == telemetry.samples_taken
        assert document["dropped"] == telemetry.dropped
        assert sorted(document["series"]) == telemetry.names()
        for name, samples in document["series"].items():
            assert [tuple(sample) for sample in samples] == list(telemetry[name])

    def test_dashboard_renders_one_row_per_channel(self, sampled_outcome):
        telemetry = sampled_outcome.result.telemetry
        text = render_dashboard(telemetry, width=32)
        lines = text.splitlines()
        assert lines[0].startswith("telemetry:")
        assert len(lines) == 1 + len(telemetry.names())
        for name in telemetry.names():
            (row,) = [line for line in lines if line.startswith(name + " ")]
            assert "|" in row and "last=" in row

    def test_dashboard_channel_filter(self, sampled_outcome):
        telemetry = sampled_outcome.result.telemetry
        text = render_dashboard(telemetry, channels=("disk0.utilization",))
        body = text.splitlines()[1:]
        assert body
        assert all("disk0.utilization" in line for line in body)
        assert render_dashboard(telemetry, channels=("no.such.channel",)) == (
            "(no telemetry samples)"
        )


def _document(events, **other):
    meta = [{"ph": "M", "name": "thread_name", "pid": 1, "tid": 1, "args": {"name": "t"}}]
    return {"traceEvents": meta + events, "otherData": dict(other)}


class TestCheckerExtensions:
    def test_counter_events_must_carry_a_numeric_value(self):
        for bad_value in ("high", None, True):
            document = _document(
                [{"ph": "C", "name": "x", "ts": 0.0, "pid": 1,
                  "args": {"value": bad_value}}],
                response_time=0.0,
            )
            problems = check_trace(document)
            assert any("non-numeric value" in p for p in problems)
        ok = _document(
            [{"ph": "C", "name": "x", "ts": 0.0, "pid": 1, "args": {"value": 0.5}}],
            response_time=0.0,
        )
        assert check_trace(ok) == []

    def test_counter_events_missing_keys_flagged(self):
        document = _document(
            [{"ph": "C", "name": "x", "pid": 1}], response_time=0.0
        )
        assert any("missing keys" in p for p in check_trace(document))

    def test_unknown_category_rejected(self):
        document = _document(
            [{"ph": "X", "name": "s", "cat": "mystery", "ts": 0.0, "dur": 1.0,
              "pid": 1, "tid": 1}],
            response_time=0.0,
        )
        assert any("unknown category" in p for p in check_trace(document))

    def test_consistency_span_name_and_args_validated(self):
        good = _document(
            [{"ph": "X", "name": "invalidate[R0]", "cat": "consistency", "ts": 0.0,
              "dur": 1.0, "pid": 1, "tid": 1, "args": {"relation": "R0", "pages": 2}}],
            response_time=0.0,
        )
        assert check_trace(good) == []
        bad_name = _document(
            [{"ph": "X", "name": "flush[R0]", "cat": "consistency", "ts": 0.0,
              "dur": 1.0, "pid": 1, "tid": 1, "args": {"relation": "R0"}}],
            response_time=0.0,
        )
        assert any("unexpected name" in p for p in check_trace(bad_name))
        no_relation = _document(
            [{"ph": "X", "name": "validate[R0#3]", "cat": "consistency", "ts": 0.0,
              "dur": 1.0, "pid": 1, "tid": 1}],
            response_time=0.0,
        )
        assert any("missing args.relation" in p for p in check_trace(no_relation))

    def test_makespan_traces_skip_coverage_but_bound_spans(self):
        span = {"ph": "X", "name": "q", "cat": "op", "ts": 0.0, "dur": 0.4e6,
                "pid": 1, "tid": 1}
        # Half-covered makespan is fine: sessions overlap and clients think.
        assert check_trace(_document([span], makespan=1.0)) == []
        overlong = dict(span, dur=2e6)
        problems = check_trace(_document([overlong], makespan=1.0))
        assert any("beyond the reported makespan" in p for p in problems)

    def test_missing_both_horizons_flagged(self):
        problems = check_trace(_document([]))
        assert any("response_time/makespan missing" in p for p in problems)


class TestWorkloadTraces:
    def test_write_workload_trace_has_write_ops_and_invalidations(self):
        tracer = Tracer()
        api.run_workload(
            policy="data",
            num_clients=2,
            queries_per_client=2,
            cached_fraction=0.5,
            write_fraction=1.0,
            consistency="invalidation",
            seed=3,
            trace=tracer,
        )
        document = json.loads(chrome_trace_json(tracer))
        assert check_trace(document) == []
        ops = [
            e["name"]
            for e in document["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "op"
        ]
        assert any(re.match(r"^(update|insert|delete)\[", name) for name in ops)
        consistency = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "consistency"
        ]
        assert consistency
        assert all(e["name"].startswith("invalidate[") for e in consistency)
        assert all("relation" in e["args"] for e in consistency)

    def test_detection_workload_records_validate_round_trips(self):
        tracer = Tracer()
        api.run_workload(
            policy="data",
            num_clients=2,
            queries_per_client=2,
            cached_fraction=0.5,
            write_fraction=0.5,
            consistency="detection",
            seed=3,
            trace=tracer,
        )
        document = json.loads(chrome_trace_json(tracer))
        assert check_trace(document) == []
        validates = [
            e["name"]
            for e in document["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "consistency"
            and e["name"].startswith("validate[")
        ]
        assert validates
        assert all(re.match(r"^validate\[\w+#\d+\]$", name) for name in validates)
