"""Exporter and end-to-end trace tests: determinism, coverage, checker."""

import json

import pytest

from repro import api
from repro.obs import Tracer, chrome_trace_json, render_timeline
from repro.obs.check import check_trace


@pytest.fixture(scope="module")
def traced_outcome():
    return api.run_query(policy="hybrid", cached_fraction=0.5, seed=3, trace=True)


class TestChromeTraceExport:
    def test_same_seed_produces_byte_identical_json(self, traced_outcome):
        repeat = api.run_query(policy="hybrid", cached_fraction=0.5, seed=3, trace=True)
        assert chrome_trace_json(traced_outcome.trace) == chrome_trace_json(repeat.trace)

    def test_different_seed_produces_different_json(self, traced_outcome):
        other = api.run_query(policy="hybrid", cached_fraction=0.5, seed=4, trace=True)
        assert chrome_trace_json(traced_outcome.trace) != chrome_trace_json(other.trace)

    def test_document_passes_the_checker(self, traced_outcome):
        document = json.loads(chrome_trace_json(traced_outcome.trace))
        assert check_trace(document) == []

    def test_spans_carry_operator_labels(self, traced_outcome):
        document = json.loads(chrome_trace_json(traced_outcome.trace))
        ops = {
            event["args"]["op"]
            for event in document["traceEvents"]
            if event["ph"] == "X" and event.get("cat") == "op"
        }
        assert "join#0@client" in ops
        assert any(op.startswith("scan[") for op in ops)

    def test_checker_flags_broken_documents(self):
        assert check_trace({}) == ["missing or non-list 'traceEvents'"]
        problems = check_trace(
            {"traceEvents": [{"ph": "X", "name": "x"}], "otherData": {}}
        )
        assert any("missing keys" in p for p in problems)
        assert any("response_time missing" in p for p in problems)

    def test_checker_enforces_coverage(self):
        document = {
            "traceEvents": [
                {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1, "args": {"name": "t"}},
                {"ph": "X", "name": "q", "cat": "query", "ts": 0.0, "dur": 1e6,
                 "pid": 1, "tid": 1},
            ],
            "otherData": {"response_time": 2.0},  # only half covered
        }
        problems = check_trace(document)
        assert any("cover" in p for p in problems)


class TestOperatorCoverage:
    def test_operator_spans_cover_the_response_time(self, traced_outcome):
        """The acceptance property: no simulated time goes unattributed."""
        tracer = traced_outcome.trace
        covered = tracer.coverage()
        response_time = traced_outcome.result.response_time
        assert covered == pytest.approx(response_time, rel=0.01)

    def test_trace_metadata_carries_run_facts(self, traced_outcome):
        metadata = traced_outcome.trace.metadata
        assert metadata["response_time"] == traced_outcome.result.response_time
        assert metadata["policy"] == "hybrid-shipping"


class TestTimeline:
    def test_rows_per_operator_and_full_width(self, traced_outcome):
        text = render_timeline(traced_outcome.trace, width=40)
        lines = text.splitlines()
        assert any(line.startswith("join#0@client") for line in lines)
        assert any(line.startswith("query") for line in lines)
        # The root query row is busy for the whole run.
        (query_row,) = [line for line in lines if line.startswith("query")]
        assert "#" * 40 in query_row

    def test_empty_tracer_renders_placeholder(self):
        assert render_timeline(Tracer()) == "(empty trace)"


class TestUntracedRuns:
    def test_trace_false_attaches_no_tracer(self):
        outcome = api.run_query(policy="hybrid", cached_fraction=0.5, seed=3)
        assert outcome.trace is None

    def test_tracing_does_not_change_the_simulation(self, traced_outcome):
        untraced = api.run_query(policy="hybrid", cached_fraction=0.5, seed=3)
        assert untraced.result.response_time == traced_outcome.result.response_time
        assert untraced.result.pages_sent == traced_outcome.result.pages_sent
        assert untraced.result.profile == traced_outcome.result.profile

    def test_trace_path_writes_loadable_json(self, tmp_path):
        out = tmp_path / "trace.json"
        api.run_query(policy="hybrid", cached_fraction=0.5, seed=3, trace=str(out))
        document = json.loads(out.read_text())
        assert check_trace(document) == []
