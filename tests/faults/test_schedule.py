"""Unit tests for the declarative fault schedules."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CrashWindow,
    DegradationWindow,
    DiskSlowdownWindow,
    FaultSchedule,
    OutageWindow,
)


class TestWindows:
    def test_crash_window_rejects_client(self):
        with pytest.raises(ConfigurationError, match="client"):
            CrashWindow(site_id=0, start=1.0)

    def test_crash_window_rejects_empty_window(self):
        with pytest.raises(ConfigurationError, match="empty"):
            CrashWindow(site_id=1, start=5.0, end=5.0)

    def test_crash_window_rejects_negative_start(self):
        with pytest.raises(ConfigurationError, match="past"):
            CrashWindow(site_id=1, start=-1.0)

    def test_crash_window_defaults_to_forever(self):
        assert CrashWindow(site_id=1, start=1.0).end == math.inf

    def test_outage_window_validation(self):
        with pytest.raises(ConfigurationError):
            OutageWindow(start=3.0, end=2.0)

    def test_degradation_needs_factor_at_least_one(self):
        with pytest.raises(ConfigurationError, match="factor"):
            DegradationWindow(factor=0.5, start=0.0, end=1.0)

    def test_slowdown_needs_factor_at_least_one(self):
        with pytest.raises(ConfigurationError, match="factor"):
            DiskSlowdownWindow(site_id=1, factor=0.0, start=0.0, end=1.0)


class TestSchedule:
    def test_empty_schedule(self):
        schedule = FaultSchedule()
        assert schedule.is_empty
        assert schedule.crashed_sites_at(10.0) == set()

    def test_drop_probability_alone_is_not_empty(self):
        assert not FaultSchedule(message_drop_probability=0.1).is_empty

    def test_drop_probability_validated(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(message_drop_probability=1.0)
        with pytest.raises(ConfigurationError):
            FaultSchedule(message_drop_probability=-0.1)

    def test_server_crash_constructor(self):
        schedule = FaultSchedule.server_crash(2, at=1.5, duration=3.0)
        assert schedule.crashed_sites_at(1.4) == set()
        assert schedule.crashed_sites_at(1.5) == {2}
        assert schedule.crashed_sites_at(4.4) == {2}
        assert schedule.crashed_sites_at(4.5) == set()

    def test_server_crash_forever(self):
        schedule = FaultSchedule.server_crash(1, at=0.2)
        assert schedule.crashed_sites_at(1e9) == {1}

    def test_network_outage_constructor(self):
        schedule = FaultSchedule.network_outage(at=1.0, duration=2.0)
        (window,) = schedule.network_outages
        assert (window.start, window.end) == (1.0, 3.0)

    def test_merge_unions_windows_and_combines_drops(self):
        a = FaultSchedule.server_crash(1, at=1.0).with_drop_probability(0.5)
        b = FaultSchedule.network_outage(at=2.0).with_drop_probability(0.5)
        merged = a.merge(b)
        assert len(merged.server_crashes) == 1
        assert len(merged.network_outages) == 1
        assert merged.message_drop_probability == pytest.approx(0.75)


class TestPeriodicCrashes:
    def test_windows_alternate_and_stay_in_horizon(self):
        schedule = FaultSchedule.periodic_crashes(1, mtbf=5.0, mttr=2.0, horizon=60.0)
        assert schedule.server_crashes
        previous_end = 0.0
        for window in schedule.server_crashes:
            assert window.start >= previous_end
            assert window.start < 60.0
            assert window.end == pytest.approx(window.start + 2.0)
            previous_end = window.end

    def test_deterministic_per_seed(self):
        a = FaultSchedule.periodic_crashes((1, 2), mtbf=5.0, mttr=1.0, horizon=50.0, seed=7)
        b = FaultSchedule.periodic_crashes((1, 2), mtbf=5.0, mttr=1.0, horizon=50.0, seed=7)
        c = FaultSchedule.periodic_crashes((1, 2), mtbf=5.0, mttr=1.0, horizon=50.0, seed=8)
        assert a == b
        assert a != c

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.periodic_crashes(1, mtbf=0.0, mttr=1.0, horizon=10.0)
        with pytest.raises(ConfigurationError):
            FaultSchedule.periodic_crashes(1, mtbf=1.0, mttr=-1.0, horizon=10.0)
