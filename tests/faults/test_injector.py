"""Unit tests for the fault injector driving a live topology."""

import pytest

from repro.config import SystemConfig
from repro.faults import FaultInjector, FaultSchedule
from repro.faults.schedule import DegradationWindow, DiskSlowdownWindow
from repro.hardware.topology import Topology


@pytest.fixture
def topology(env):
    return Topology(env, SystemConfig(num_servers=2))


def test_crash_window_flips_site_down_then_up(env, topology):
    schedule = FaultSchedule.server_crash(1, at=1.0, duration=2.0)
    FaultInjector(env, topology, schedule)
    server = topology.site(1)
    env.run(until=env.timeout(0.5))
    assert server.up
    env.run(until=env.timeout(1.0))  # t = 1.5
    assert not server.up
    assert server.disk.is_off
    env.run(until=env.timeout(2.0))  # t = 3.5
    assert server.up
    assert not server.disk.is_off
    assert server.crash_count == 1
    assert server.total_downtime == pytest.approx(2.0)


def test_permanent_crash_never_restarts(env, topology):
    FaultInjector(env, topology, FaultSchedule.server_crash(2, at=0.5))
    env.run()
    assert not topology.site(2).up
    assert topology.site(1).up


def test_outage_window_flips_network(env, topology):
    FaultInjector(env, topology, FaultSchedule.network_outage(at=1.0, duration=1.0))
    network = topology.network
    env.run(until=env.timeout(1.5))
    assert not network.up
    env.run(until=env.timeout(1.0))
    assert network.up
    assert network.outage_count == 1


def test_degradation_window_scales_bandwidth(env, topology):
    schedule = FaultSchedule(
        network_degradations=(DegradationWindow(factor=4.0, start=1.0, end=2.0),)
    )
    FaultInjector(env, topology, schedule)
    env.run(until=env.timeout(1.5))
    assert topology.network.degradation_factor == 4.0
    env.run(until=env.timeout(1.0))
    assert topology.network.degradation_factor == 1.0


def test_slowdown_window_scales_every_disk_of_the_site(env, topology):
    schedule = FaultSchedule(
        disk_slowdowns=(DiskSlowdownWindow(site_id=1, factor=3.0, start=0.5, end=1.5),)
    )
    FaultInjector(env, topology, schedule)
    env.run(until=env.timeout(1.0))
    assert all(d.slow_factor == 3.0 for d in topology.site(1).disks)
    assert all(d.slow_factor == 1.0 for d in topology.site(2).disks)
    env.run(until=env.timeout(1.0))
    assert all(d.slow_factor == 1.0 for d in topology.site(1).disks)


def test_drop_probability_configured_eagerly(env, topology):
    FaultInjector(env, topology, FaultSchedule(message_drop_probability=0.25), seed=3)
    assert topology.network.drop_probability == 0.25
    assert topology.network.drop_rng is not None


def test_faults_injected_counter(env, topology):
    schedule = FaultSchedule.server_crash(1, at=1.0, duration=1.0).merge(
        FaultSchedule.network_outage(at=2.0, duration=1.0)
    )
    injector = FaultInjector(env, topology, schedule)
    env.run()
    assert injector.faults_injected.value == 2
    assert injector.down_servers() == set()
