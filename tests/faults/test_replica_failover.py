"""Mid-query replica failover: a crash rehomes scans onto surviving copies.

The acceptance scenario of the replication work: crash the server holding
a relation's serving copy mid-scan and the recovery loop must repoint the
scan at a surviving replica -- NOT fall back to scanning the client cache
(the pre-replication escape hatch, which query-shipping plans cannot even
express).
"""

import pytest

from repro.config import OptimizerConfig
from repro.costmodel.model import Objective
from repro.errors import SiteUnavailableError
from repro.faults import FaultSchedule, RecoveryPolicy
from repro.optimizer.two_phase import RandomizedOptimizer
from repro.plans.operators import ScanOp
from repro.plans.policies import Policy
from repro.workloads.scenarios import chain_scenario

FAST = OptimizerConfig.fast()


def scenario_with_replicas(factor=2, cached_fraction=0.0, seed=0):
    return chain_scenario(
        num_relations=2,
        num_servers=2,
        cached_fraction=cached_fraction,
        placement_seed=seed,
        replication_factor=factor,
    )


def optimized(scenario, policy, seed=0):
    return RandomizedOptimizer(
        scenario.query,
        scenario.environment(),
        policy=policy,
        objective=Objective.RESPONSE_TIME,
        config=FAST,
        seed=seed,
    ).optimize().plan


def run_with_crash(scenario, policy, server=1, at=0.2, duration=None, attempts=5):
    plan = optimized(scenario, policy)
    faults = (
        FaultSchedule.server_crash(server, at=at)
        if duration is None
        else FaultSchedule.server_crash(server, at=at, duration=duration)
    )
    return scenario.execute(
        plan,
        seed=0,
        faults=faults,
        recovery=RecoveryPolicy(max_attempts=attempts, base_backoff=0.5),
        policy=policy,
        optimizer_config=FAST,
    )


class TestMidQueryFailover:
    def test_query_shipping_fails_over_onto_surviving_replica(self):
        # Query shipping has no client-cache fallback and the crash is
        # permanent, so completing at all proves the scan was rehomed onto
        # the surviving copy.
        result = run_with_crash(
            scenario_with_replicas(cached_fraction=0.0), Policy.QUERY_SHIPPING
        )
        assert result.result_tuples > 0
        assert result.replans >= 1
        assert result.retries >= 1

    def test_unreplicated_query_shipping_still_cannot_escape(self):
        # Sanity of the baseline: the same permanent crash without replicas
        # leaves query shipping stuck until its retries run out.
        with pytest.raises(SiteUnavailableError):
            run_with_crash(
                scenario_with_replicas(factor=1, cached_fraction=0.0),
                Policy.QUERY_SHIPPING,
                attempts=3,
            )

    def test_hybrid_prefers_replica_over_client_cache_scans(self):
        # Hybrid shipping with a *partial* client cache: the pre-replication
        # fallback would force uncached relations to client scans, which
        # then fault pages from the crashed primary.  With a surviving
        # replica the replan simply rehomes -- the recovered plan keeps its
        # scans on servers.
        scenario = scenario_with_replicas(cached_fraction=0.3)
        result = run_with_crash(scenario, Policy.HYBRID_SHIPPING)
        assert result.result_tuples > 0
        assert result.replans >= 1

    def test_replan_rehomes_every_scan_of_the_crashed_server(self):
        # Drive the executor's replanner directly and inspect the plan.
        from repro.engine.executor import QueryExecutor

        scenario = scenario_with_replicas(cached_fraction=0.0)
        plan = optimized(scenario, Policy.QUERY_SHIPPING)
        executor = QueryExecutor(
            scenario.config,
            scenario.catalog,
            scenario.query,
            seed=0,
            policy=Policy.QUERY_SHIPPING,
            optimizer_config=FAST,
        )
        executor.topology.site(1).up = False
        replanned = executor._replan(plan)
        assert replanned is not None
        for op in replanned.walk():
            if not isinstance(op, ScanOp):
                continue
            primary = scenario.catalog.server_of(op.relation)
            home = op.home if op.home is not None else primary
            assert home != 1, f"scan of {op.relation} still targets the crash"
            assert home in scenario.catalog.servers_of(op.relation)
