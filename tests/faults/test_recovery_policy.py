"""Unit tests for the recovery policy and its statistics."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.faults import RecoveryPolicy, RecoveryStats


class TestRecoveryPolicy:
    def test_defaults_are_valid(self):
        policy = RecoveryPolicy()
        assert policy.max_attempts >= 1
        assert policy.replan

    def test_none_fails_fast(self):
        policy = RecoveryPolicy.none()
        assert policy.max_attempts == 1
        assert not policy.replan

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_backoff": -1.0},
            {"backoff_multiplier": 0.5},
            {"jitter_fraction": 1.5},
            {"query_timeout": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(**kwargs)

    def test_backoff_grows_exponentially(self):
        policy = RecoveryPolicy(base_backoff=1.0, backoff_multiplier=2.0, jitter_fraction=0.0)
        rng = random.Random(0)
        delays = [policy.backoff(n, rng) for n in (1, 2, 3)]
        assert delays == [1.0, 2.0, 4.0]

    def test_jitter_bounded_and_deterministic(self):
        policy = RecoveryPolicy(base_backoff=1.0, backoff_multiplier=1.0, jitter_fraction=0.5)
        a = [policy.backoff(1, random.Random(42)) for _ in range(3)]
        b = [policy.backoff(1, random.Random(42)) for _ in range(3)]
        assert a == b
        assert all(1.0 <= delay <= 1.5 for delay in a)


class TestRecoveryStats:
    def test_clean_run_records_nothing(self):
        stats = RecoveryStats()
        assert stats.record_success(10.0) == 0.0
        assert stats.faults_seen.value == 0
        assert stats.time_to_recover == 0.0

    def test_fault_then_success_measures_recovery_time(self):
        stats = RecoveryStats()
        stats.record_fault(2.0)
        stats.record_fault(5.0)  # later faults do not move the clock
        assert stats.faults_seen.value == 2
        assert stats.record_success(9.0) == pytest.approx(7.0)
        assert stats.time_to_recover == pytest.approx(7.0)
