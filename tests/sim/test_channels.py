"""Unit tests for bounded channels (pipelined page shipping)."""

import pytest

from repro.sim import Channel, ChannelClosed


def test_put_then_get(env):
    channel = Channel(env, capacity=2)

    def producer():
        yield channel.put("x")
        yield channel.put("y")

    def consumer():
        first = yield channel.get()
        second = yield channel.get()
        return [first, second]

    env.process(producer())
    process = env.process(consumer())
    assert env.run(until=process) == ["x", "y"]


def test_capacity_blocks_producer(env):
    channel = Channel(env, capacity=1)
    timeline = []

    def producer():
        for i in range(3):
            yield channel.put(i)
            timeline.append(("put", i, env.now))

    def consumer():
        for _ in range(3):
            item = yield channel.get()
            timeline.append(("got", item, env.now))
            yield env.timeout(1.0)

    env.process(producer())
    process = env.process(consumer())
    env.run(until=process)
    puts = [entry for entry in timeline if entry[0] == "put"]
    # One page buffered ahead: the producer stays exactly one item ahead.
    assert puts[0][2] == 0.0
    assert puts[1][2] == 0.0  # fills the buffer slot
    assert puts[2][2] == 1.0  # blocked until the consumer frees a slot


def test_get_blocks_until_put(env):
    channel = Channel(env, capacity=1)

    def consumer():
        item = yield channel.get()
        return (item, env.now)

    def producer():
        yield env.timeout(5.0)
        yield channel.put("late")

    process = env.process(consumer())
    env.process(producer())
    assert env.run(until=process) == ("late", 5.0)


def test_close_drains_buffer_then_fails(env):
    channel = Channel(env, capacity=4)

    def producer():
        yield channel.put(1)
        yield channel.put(2)
        channel.close()

    def consumer():
        received = []
        while True:
            try:
                received.append((yield channel.get()))
            except ChannelClosed:
                return received

    env.process(producer())
    process = env.process(consumer())
    assert env.run(until=process) == [1, 2]


def test_close_wakes_blocked_getter(env):
    channel = Channel(env, capacity=1)

    def consumer():
        try:
            yield channel.get()
        except ChannelClosed:
            return "closed"
        return "got"

    process = env.process(consumer())

    def closer():
        yield env.timeout(1.0)
        channel.close()

    env.process(closer())
    assert env.run(until=process) == "closed"


def test_put_on_closed_channel_raises(env):
    channel = Channel(env, capacity=1)
    channel.close()
    with pytest.raises(ChannelClosed):
        channel.put("too late")


def test_items_passed_counter(env):
    channel = Channel(env, capacity=2)

    def producer():
        for i in range(5):
            yield channel.put(i)
        channel.close()

    def consumer():
        while True:
            try:
                yield channel.get()
            except ChannelClosed:
                return

    env.process(producer())
    env.run(until=env.process(consumer()))
    assert channel.items_passed == 5


def test_invalid_capacity(env):
    with pytest.raises(ValueError):
        Channel(env, capacity=0)


def test_fifo_order_under_pressure(env):
    channel = Channel(env, capacity=1)
    received = []

    def producer():
        for i in range(10):
            yield channel.put(i)
        channel.close()

    def consumer():
        while True:
            try:
                received.append((yield channel.get()))
            except ChannelClosed:
                return
            if len(received) % 3 == 0:
                yield env.timeout(0.1)

    env.process(producer())
    env.run(until=env.process(consumer()))
    assert received == list(range(10))
