"""Unit tests for the statistics collectors."""

import pytest

from repro.sim import Counter, Tally, UtilizationMonitor


class TestCounter:
    def test_add(self):
        counter = Counter("pages")
        counter.add()
        counter.add(4)
        assert counter.value == 5
        assert int(counter) == 5

    def test_cannot_decrease(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.add(-1)


class TestTally:
    def test_mean_and_extrema(self):
        tally = Tally()
        for sample in (2.0, 4.0, 6.0):
            tally.record(sample)
        assert tally.mean == pytest.approx(4.0)
        assert tally.minimum == 2.0
        assert tally.maximum == 6.0
        assert tally.count == 3

    def test_variance_matches_numpy_definition(self):
        tally = Tally()
        samples = [1.0, 2.0, 3.0, 4.0]
        for sample in samples:
            tally.record(sample)
        mean = sum(samples) / 4
        expected = sum((s - mean) ** 2 for s in samples) / 3
        assert tally.variance == pytest.approx(expected)
        assert tally.stddev == pytest.approx(expected**0.5)

    def test_empty_tally_is_safe(self):
        tally = Tally()
        assert tally.mean == 0.0
        assert tally.variance == 0.0


class TestUtilizationMonitor:
    def test_busy_fraction(self, env):
        monitor = UtilizationMonitor(env)

        def worker():
            monitor.busy()
            yield env.timeout(3.0)
            monitor.idle()
            yield env.timeout(1.0)

        env.run(until=env.process(worker()))
        assert monitor.utilization() == pytest.approx(0.75)

    def test_idempotent_transitions(self, env):
        monitor = UtilizationMonitor(env)
        monitor.busy()
        monitor.busy()
        env.run(until=env.timeout(2.0))
        monitor.idle()
        monitor.idle()
        assert monitor.busy_time == pytest.approx(2.0)

    def test_open_busy_interval_counted(self, env):
        monitor = UtilizationMonitor(env)
        monitor.busy()
        env.run(until=env.timeout(4.0))
        assert monitor.utilization() == pytest.approx(1.0)

    def test_zero_time_utilization(self, env):
        monitor = UtilizationMonitor(env)
        assert monitor.utilization() == 0.0


class TestTallyAgainstNumpy:
    """Welford accumulation must match numpy's batch formulas."""

    def test_statistics_match_numpy(self):
        numpy = pytest.importorskip("numpy")
        rng = __import__("random").Random(7)
        samples = [rng.expovariate(0.2) for _ in range(500)]
        tally = Tally()
        for sample in samples:
            tally.record(sample)
        assert tally.mean == pytest.approx(float(numpy.mean(samples)))
        assert tally.variance == pytest.approx(float(numpy.var(samples, ddof=1)))
        assert tally.stddev == pytest.approx(float(numpy.std(samples, ddof=1)))
        assert tally.minimum == pytest.approx(float(numpy.min(samples)))
        assert tally.maximum == pytest.approx(float(numpy.max(samples)))


class TestUtilizationMonitorInterleavings:
    def test_two_processes_share_one_monitor(self, env):
        """busy()/idle() from interleaved processes: the monitor tracks the
        union of busy intervals, not per-caller time."""
        monitor = UtilizationMonitor(env)

        def phase(start, duration):
            yield env.timeout(start)
            monitor.busy()
            yield env.timeout(duration)
            monitor.idle()

        # [1,3) and [2,5): overlapping busy claims -> idempotent busy();
        # the first idle() at t=3 closes the interval (transitions are
        # boolean, not reference-counted -- documented on the monitor).
        first = env.process(phase(1.0, 2.0))
        second = env.process(phase(2.0, 3.0))

        def driver():
            yield first
            yield second
            yield env.timeout(1.0)

        env.run(until=env.process(driver()))
        assert env.now == pytest.approx(6.0)
        assert monitor.busy_time == pytest.approx(2.0)  # [1,3)
        assert monitor.utilization() == pytest.approx(2.0 / 6.0)

    def test_open_interval_in_elapsed_busy_time(self, env):
        monitor = UtilizationMonitor(env)

        def worker():
            yield env.timeout(1.0)
            monitor.busy()
            yield env.timeout(3.0)

        env.run(until=env.process(worker()))
        assert monitor.is_busy
        # busy_time excludes the open interval; elapsed_busy_time includes it.
        assert monitor.busy_time == pytest.approx(0.0)
        assert monitor.elapsed_busy_time() == pytest.approx(3.0)
        assert monitor.utilization() == pytest.approx(0.75)

    def test_explicit_elapsed_horizon(self, env):
        monitor = UtilizationMonitor(env)
        monitor.busy()
        env.run(until=env.timeout(2.0))
        monitor.idle()
        assert monitor.utilization(8.0) == pytest.approx(0.25)

    def test_rapid_zero_length_toggles(self, env):
        monitor = UtilizationMonitor(env)

        def worker():
            for _ in range(3):
                monitor.busy()
                monitor.idle()
            monitor.busy()
            yield env.timeout(1.0)
            monitor.idle()
            yield env.timeout(1.0)

        env.run(until=env.process(worker()))
        assert monitor.busy_time == pytest.approx(1.0)
        assert monitor.utilization() == pytest.approx(0.5)


class TestUnifiedUtilizationSemantics:
    """Resource and RequestPool both delegate to UtilizationMonitor, so all
    three agree on the env.now == 0 edge case and on open intervals."""

    def test_all_report_zero_at_time_zero(self, env):
        from repro.sim import RequestPool, Resource

        resource = Resource(env)
        pool = RequestPool(env)
        monitor = UtilizationMonitor(env)
        assert resource.utilization() == 0.0
        assert pool.utilization() == 0.0
        assert monitor.utilization() == 0.0

    def test_resource_matches_its_monitor(self, env):
        from repro.sim import Resource

        resource = Resource(env)

        def worker():
            yield from resource.serve(3.0)
            yield env.timeout(1.0)

        env.run(until=env.process(worker()))
        assert resource.busy_time == pytest.approx(3.0)
        assert resource.utilization() == pytest.approx(0.75)
        assert resource.utilization() == resource.monitor.utilization()

    def test_pool_busy_while_items_pending(self, env):
        from repro.sim import RequestPool

        pool = RequestPool(env)

        def producer():
            yield env.timeout(1.0)
            pool.put("a")

        def consumer():
            yield pool.wait_for_item()
            yield env.timeout(2.0)  # item sits in the pool while "serving"
            pool.take(lambda items: items[0])
            yield env.timeout(1.0)

        env.process(producer())
        env.run(until=env.process(consumer()))
        assert pool.utilization() == pytest.approx(2.0 / 4.0)
