"""Unit tests for the statistics collectors."""

import pytest

from repro.sim import Counter, Environment, Tally, UtilizationMonitor


class TestCounter:
    def test_add(self):
        counter = Counter("pages")
        counter.add()
        counter.add(4)
        assert counter.value == 5
        assert int(counter) == 5

    def test_cannot_decrease(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.add(-1)


class TestTally:
    def test_mean_and_extrema(self):
        tally = Tally()
        for sample in (2.0, 4.0, 6.0):
            tally.record(sample)
        assert tally.mean == pytest.approx(4.0)
        assert tally.minimum == 2.0
        assert tally.maximum == 6.0
        assert tally.count == 3

    def test_variance_matches_numpy_definition(self):
        tally = Tally()
        samples = [1.0, 2.0, 3.0, 4.0]
        for sample in samples:
            tally.record(sample)
        mean = sum(samples) / 4
        expected = sum((s - mean) ** 2 for s in samples) / 3
        assert tally.variance == pytest.approx(expected)
        assert tally.stddev == pytest.approx(expected**0.5)

    def test_empty_tally_is_safe(self):
        tally = Tally()
        assert tally.mean == 0.0
        assert tally.variance == 0.0


class TestUtilizationMonitor:
    def test_busy_fraction(self, env):
        monitor = UtilizationMonitor(env)

        def worker():
            monitor.busy()
            yield env.timeout(3.0)
            monitor.idle()
            yield env.timeout(1.0)

        env.run(until=env.process(worker()))
        assert monitor.utilization() == pytest.approx(0.75)

    def test_idempotent_transitions(self, env):
        monitor = UtilizationMonitor(env)
        monitor.busy()
        monitor.busy()
        env.run(until=env.timeout(2.0))
        monitor.idle()
        monitor.idle()
        assert monitor.busy_time == pytest.approx(2.0)

    def test_open_busy_interval_counted(self, env):
        monitor = UtilizationMonitor(env)
        monitor.busy()
        env.run(until=env.timeout(4.0))
        assert monitor.utilization() == pytest.approx(1.0)

    def test_zero_time_utilization(self, env):
        monitor = UtilizationMonitor(env)
        assert monitor.utilization() == 0.0
