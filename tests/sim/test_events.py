"""Unit tests for the event primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Timeout
from repro.sim.events import EventError


class TestEvent:
    def test_starts_pending(self, env):
        event = Event(env)
        assert not event.triggered
        assert not event.processed

    def test_succeed_delivers_value(self, env):
        event = Event(env)
        event.succeed("payload")
        assert event.triggered
        env.run()
        assert event.processed
        assert event.value == "payload"

    def test_double_trigger_rejected(self, env):
        event = Event(env)
        event.succeed()
        with pytest.raises(EventError):
            event.succeed()

    def test_fail_then_succeed_rejected(self, env):
        event = Event(env)
        event.fail(RuntimeError("boom"))
        with pytest.raises(EventError):
            event.succeed()

    def test_value_before_trigger_raises(self, env):
        event = Event(env)
        with pytest.raises(EventError):
            _ = event.value

    def test_fail_requires_exception(self, env):
        event = Event(env)
        with pytest.raises(TypeError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_failed_event_reraises_from_value(self, env):
        event = Event(env)
        event.fail(ValueError("bad"))
        env.run()
        with pytest.raises(ValueError, match="bad"):
            _ = event.value

    def test_ok_reflects_outcome(self, env):
        good, bad = Event(env), Event(env)
        good.succeed()
        bad.fail(RuntimeError("x"))
        env.run()
        assert good.ok
        assert not bad.ok


class TestTimeout:
    def test_fires_at_delay(self, env):
        timeout = Timeout(env, 2.5)
        env.run()
        assert timeout.processed
        assert env.now == 2.5

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            Timeout(env, -1.0)

    def test_zero_delay_fires_immediately(self, env):
        timeout = Timeout(env, 0.0, value="now")
        env.run()
        assert timeout.value == "now"
        assert env.now == 0.0

    def test_carries_value(self, env):
        timeout = Timeout(env, 1.0, value=123)
        env.run()
        assert timeout.value == 123


class TestConditions:
    def test_all_of_collects_values(self, env):
        events = [Timeout(env, t, value=t) for t in (3.0, 1.0, 2.0)]
        combined = AllOf(env, events)
        env.run()
        assert combined.value == [3.0, 1.0, 2.0]
        assert env.now == 3.0

    def test_all_of_empty_fires_immediately(self, env):
        combined = AllOf(env, [])
        env.run()
        assert combined.value == []

    def test_any_of_fires_on_first(self, env):
        slow = Timeout(env, 5.0, value="slow")
        fast = Timeout(env, 1.0, value="fast")
        combined = AnyOf(env, [slow, fast])
        env.run(until=combined)
        assert combined.value == "fast"
        assert env.now == 1.0

    def test_all_of_propagates_failure(self, env):
        good = Timeout(env, 1.0)
        bad = Event(env)
        bad.fail(RuntimeError("child failed"))
        combined = AllOf(env, [good, bad])
        env.run()
        assert combined.triggered
        assert not combined.ok

    def test_all_of_with_already_processed_children(self, env):
        first = Timeout(env, 1.0, value=1)
        env.run()
        second = Timeout(env, 1.0, value=2)
        combined = AllOf(env, [first, second])
        env.run()
        assert combined.value == [1, 2]
