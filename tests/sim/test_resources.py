"""Unit tests for FIFO resources and the selectable request pool."""

import pytest

from repro.sim import RequestPool, Resource


class TestResource:
    def test_grant_when_free(self, env):
        resource = Resource(env, capacity=1)
        request = resource.request()
        env.run()
        assert request.processed
        assert resource.in_use == 1

    def test_fifo_queueing(self, env):
        resource = Resource(env, capacity=1)
        grant_times = {}

        def worker(name, hold):
            request = resource.request()
            yield request
            grant_times[name] = env.now
            yield env.timeout(hold)
            resource.release(request)

        env.process(worker("first", 2.0))
        env.process(worker("second", 1.0))
        env.process(worker("third", 1.0))
        env.run()
        assert grant_times == {"first": 0.0, "second": 2.0, "third": 3.0}

    def test_capacity_two_serves_in_parallel(self, env):
        resource = Resource(env, capacity=2)
        finished = []

        def worker(name):
            yield from resource.serve(1.0)
            finished.append((name, env.now))

        for name in ("a", "b", "c"):
            env.process(worker(name))
        env.run()
        assert finished == [("a", 1.0), ("b", 1.0), ("c", 2.0)]

    def test_release_unknown_request_raises(self, env):
        resource = Resource(env, capacity=1)
        other = Resource(env, capacity=1)
        request = other.request()
        with pytest.raises(ValueError):
            resource.release(request)

    def test_release_queued_request_cancels_it(self, env):
        resource = Resource(env, capacity=1)
        holder = resource.request()
        queued = resource.request()
        resource.release(queued)  # withdraw before grant
        resource.release(holder)
        assert resource.in_use == 0
        assert resource.queue_length == 0

    def test_utilization_tracks_busy_time(self, env):
        resource = Resource(env, capacity=1)

        def worker():
            yield from resource.serve(3.0)
            yield env.timeout(1.0)

        env.process(worker())
        env.run()
        assert resource.utilization() == pytest.approx(0.75)

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_completed_counter(self, env):
        resource = Resource(env, capacity=1)

        def worker():
            for _ in range(4):
                yield from resource.serve(0.5)

        env.run(until=env.process(worker()))
        assert resource.completed == 4


class TestRequestPool:
    def test_wait_fires_when_item_arrives(self, env):
        pool = RequestPool(env)
        served = []

        def consumer():
            yield pool.wait_for_item()
            served.append(pool.take(lambda items: items[0]))

        env.process(consumer())
        env.run(until=0.0)
        pool.put("job")
        env.run()
        assert served == ["job"]

    def test_wait_immediate_when_nonempty(self, env):
        pool = RequestPool(env)
        pool.put("ready")
        resumed = []

        def consumer():
            yield pool.wait_for_item()
            resumed.append(pool.take(lambda items: items[0]))

        env.process(consumer())
        env.run()
        assert resumed == ["ready"]

    def test_take_uses_chooser(self, env):
        pool = RequestPool(env)
        for item in (5, 1, 3):
            pool.put(item)
        assert pool.take(min) == 1
        assert pool.take(max) == 5
        assert len(pool) == 1

    def test_take_empty_raises(self, env):
        pool = RequestPool(env)
        with pytest.raises(LookupError):
            pool.take(lambda items: items[0])

    def test_single_consumer_enforced(self, env):
        pool = RequestPool(env)
        pool.wait_for_item()
        with pytest.raises(RuntimeError):
            pool.wait_for_item()
