"""Unit tests for the environment and process scheduler."""

import pytest

from repro.sim import Environment, Event, Timeout
from repro.sim.engine import SimulationError


class TestEnvironment:
    def test_clock_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_run_until_time(self, env):
        Timeout(env, 10.0)
        env.run(until=4.0)
        assert env.now == 4.0
        env.run(until=11.0)
        assert env.now == 11.0

    def test_run_until_past_rejected(self, env):
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_run_drains_queue(self, env):
        timeouts = [Timeout(env, t) for t in (1.0, 2.0, 3.0)]
        env.run()
        assert all(t.processed for t in timeouts)
        assert env.now == 3.0

    def test_peek(self, env):
        assert env.peek() == float("inf")
        Timeout(env, 7.0)
        assert env.peek() == 7.0

    def test_schedule_into_past_rejected(self, env):
        event = Event(env)
        with pytest.raises(SimulationError):
            env.schedule(event, delay=-0.5)

    def test_fifo_order_at_same_timestamp(self, env):
        order = []
        for tag in ("a", "b", "c"):
            event = Timeout(env, 1.0, value=tag)
            event.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == ["a", "b", "c"]


class TestProcess:
    def test_return_value(self, env):
        def worker():
            yield env.timeout(2.0)
            return "done"

        process = env.process(worker())
        assert env.run(until=process) == "done"
        assert env.now == 2.0

    def test_processes_interleave(self, env):
        trace = []

        def worker(name, delay):
            for _ in range(3):
                yield env.timeout(delay)
                trace.append((name, env.now))

        env.process(worker("fast", 1.0))
        env.process(worker("slow", 1.5))
        env.run()
        # At t=3.0 both fire; "slow" was scheduled earlier (at t=1.5) so its
        # event sits ahead in the queue.
        assert trace == [
            ("fast", 1.0), ("slow", 1.5), ("fast", 2.0),
            ("slow", 3.0), ("fast", 3.0), ("slow", 4.5),
        ]

    def test_process_waits_for_process(self, env):
        def child():
            yield env.timeout(3.0)
            return 41

        def parent():
            value = yield env.process(child())
            return value + 1

        assert env.run(until=env.process(parent())) == 42

    def test_yielding_non_event_raises(self, env):
        def bad():
            yield 5

        with pytest.raises(SimulationError):
            env.process(bad())
            env.run()

    def test_exception_propagates_in_strict_mode(self, env):
        def failing():
            yield env.timeout(1.0)
            raise ValueError("inside process")

        env.process(failing())
        with pytest.raises(ValueError, match="inside process"):
            env.run()

    def test_exception_stored_in_lenient_mode(self):
        env = Environment(strict=False)

        def failing():
            yield env.timeout(1.0)
            raise ValueError("inside process")

        process = env.process(failing())
        env.run()
        assert process.triggered and not process.ok

    def test_failed_event_rethrown_inside_process(self, env):
        event = Event(env)

        def waiter():
            try:
                yield event
            except RuntimeError:
                return "caught"
            return "missed"

        process = env.process(waiter())
        event.fail(RuntimeError("fail over"))
        assert env.run(until=process) == "caught"

    def test_wait_on_already_processed_event(self, env):
        timeout = Timeout(env, 1.0, value="early")
        env.run()

        def late_waiter():
            value = yield timeout
            return value

        assert env.run(until=env.process(late_waiter())) == "early"

    def test_deadlock_detected(self, env):
        def waiter():
            yield Event(env)  # never triggered

        process = env.process(waiter())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=process)

    def test_deadlock_message_names_time_and_alive_processes(self, env):
        def stuck():
            yield Event(env)  # never triggered

        def bystander():
            yield env.timeout(2.5)

        process = env.process(stuck(), name="stuck-waiter")
        env.process(bystander(), name="done-by-then")
        with pytest.raises(SimulationError) as excinfo:
            env.run(until=process)
        message = str(excinfo.value)
        assert "t=2.5" in message
        assert "stuck-waiter" in message
        assert "done-by-then" not in message  # finished processes not listed

    def test_deadlock_message_includes_debug_dumper_state(self, env):
        env.debug_dumpers.append(lambda: "frobnicator: 3 widgets stuck")
        env.debug_dumpers.append(lambda: "")  # idle dumpers stay silent

        def stuck():
            yield Event(env)

        process = env.process(stuck(), name="stuck-waiter")
        with pytest.raises(SimulationError) as excinfo:
            env.run(until=process)
        message = str(excinfo.value)
        assert "frobnicator: 3 widgets stuck" in message

    def test_deadlock_message_dumps_broker_pressure(self, env):
        """A stuck memory waiter shows up with the grants blocking it."""
        from repro.storage.memory import MemoryBroker

        broker = MemoryBroker(env, 10, name="server1.memory")
        env.debug_dumpers.append(broker.describe_pressure)

        def hog():
            grant = broker.try_grant(10, 10, "join#0")
            assert grant is not None
            yield Event(env)  # never releases

        def starved():
            waiter = broker.enqueue(5, 8, "join#1")
            yield waiter.event

        env.process(hog(), name="hog")
        process = env.process(starved(), name="starved")
        with pytest.raises(SimulationError) as excinfo:
            env.run(until=process)
        message = str(excinfo.value)
        assert "server1.memory" in message
        assert "join#0" in message  # outstanding grant
        assert "join#1" in message  # queued waiter

    def test_alive_processes_listing(self, env):
        def forever():
            yield Event(env)

        def quick():
            yield env.timeout(1.0)

        immortal = env.process(forever(), name="immortal")
        env.process(quick(), name="mortal")
        env.run()
        assert immortal in env.alive_processes()
        assert all(p.name != "mortal" for p in env.alive_processes())

    def test_is_alive(self, env):
        def worker():
            yield env.timeout(1.0)

        process = env.process(worker())
        assert process.is_alive
        env.run()
        assert not process.is_alive


class TestScheduleValidation:
    """NaN/inf delays must be rejected before they touch the heap.

    A NaN key compares false against everything, so one poisoned entry
    silently corrupts sift-up for every later push -- events start firing
    out of order with no error anywhere near the cause.
    """

    @pytest.mark.parametrize("delay", [float("nan"), float("inf"), -1.0, -1e-12])
    def test_schedule_rejects_non_finite_and_negative_delays(self, env, delay):
        event = Event(env)
        event._value = None
        with pytest.raises(SimulationError):
            env.schedule(event, delay=delay)
        assert not env._queue  # nothing reached the heap

    @pytest.mark.parametrize("delay", [float("nan"), float("inf"), -0.5])
    def test_succeed_with_bad_delay_rejected(self, env, delay):
        with pytest.raises(SimulationError):
            Event(env).succeed(delay=delay)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_raw_sleep_rejects_non_finite_and_negative(self, env, bad):
        def sleeper():
            yield bad

        env.process(sleeper(), name="bad-sleeper")
        with pytest.raises(SimulationError):
            env.run()

    def test_heap_order_survives_rejected_schedule(self, env):
        """The rejected call must leave the queue fully usable."""
        order = []

        def worker(tag, delay):
            yield env.timeout(delay)
            order.append(tag)

        env.process(worker("a", 2.0))
        with pytest.raises(SimulationError):
            env.schedule(Event(env), delay=float("nan"))
        env.process(worker("b", 1.0))
        env.run()
        assert order == ["b", "a"]


class TestProcessRegistryCompaction:
    """The weakref registry must not grow without bound across sessions."""

    def test_dead_refs_are_compacted(self, env):
        import gc

        def quick():
            yield 0.0

        # A few hundred "sessions" worth of short-lived processes, run in
        # waves the way a workload stream launches them.
        for _ in range(40):
            for _ in range(100):
                env.process(quick())
            env.run()
            gc.collect()  # drop the finished generators' processes
        # 4000 dead processes went through; the registry must have been
        # compacted down to the survivors (none), not grown linearly.
        assert len(env._processes) < 1024
        assert env.alive_processes() == []

    def test_compaction_keeps_alive_processes(self, env):
        import gc

        def forever():
            yield Event(env)

        def quick():
            yield 0.0

        keeper = env.process(forever(), name="keeper")
        for _ in range(20):
            for _ in range(100):
                env.process(quick())
            env.run()
            gc.collect()
        assert keeper in env.alive_processes()
