"""Star-join workload tests: a different join graph, same machinery."""

import random

import pytest

from repro.catalog import Catalog, Placement
from repro.config import OptimizerConfig, SystemConfig
from repro.costmodel import EnvironmentState, Estimator, Objective
from repro.engine import QueryExecutor
from repro.errors import ConfigurationError
from repro.optimizer import optimize, random_plan
from repro.plans import Policy, validate_plan
from repro.plans.operators import JoinOp
from repro.workloads import benchmark_relations, star_query


@pytest.fixture
def star5():
    relations = benchmark_relations(5)
    query = star_query(relations)
    catalog = Catalog(
        relations, Placement({r.name: 1 + i % 2 for i, r in enumerate(relations)})
    )
    return query, catalog


def test_structure():
    query = star_query(benchmark_relations(4))
    assert query.is_connected()
    assert all(edge[0] == "R0" for edge in query.join_graph_edges())


def test_single_relation_star():
    query = star_query(benchmark_relations(1))
    assert query.num_joins == 0


def test_empty_star_rejected():
    with pytest.raises(ConfigurationError):
        star_query([])


def test_spoke_pairs_are_cartesian(star5):
    """Two spokes share no predicate -- joining them without the hub is a
    Cartesian product, which the optimizer must avoid."""
    query, catalog = star5
    estimator = Estimator(query, catalog, SystemConfig(num_servers=2))
    from repro.plans.annotations import Annotation as A
    from repro.plans.operators import ScanOp

    spokes = JoinOp(
        A.CONSUMER,
        inner=ScanOp(A.PRIMARY_COPY, "R1"),
        outer=ScanOp(A.PRIMARY_COPY, "R2"),
    )
    assert estimator.is_cartesian(spokes)


def test_random_plans_avoid_spoke_spoke_joins(star5):
    query, catalog = star5
    rng = random.Random(0)
    for _ in range(20):
        plan = random_plan(query, Policy.HYBRID_SHIPPING, rng)
        validate_plan(plan, query)
        estimator = Estimator(query, catalog, SystemConfig(num_servers=2))
        for op in plan.walk():
            if isinstance(op, JoinOp):
                assert not estimator.is_cartesian(op)


def test_optimize_and_execute_star(star5):
    query, catalog = star5
    config = SystemConfig(num_servers=2)
    result = optimize(
        query,
        EnvironmentState(catalog, config),
        Policy.HYBRID_SHIPPING,
        Objective.RESPONSE_TIME,
        OptimizerConfig.fast(),
        seed=1,
    )
    executed = QueryExecutor(config, catalog, query, seed=1).execute(result.plan)
    # Moderate star: every join keeps the hub's 10k cardinality.
    assert executed.result_tuples == pytest.approx(10_000, abs=5)


def test_star_hybrid_at_least_matches_pure(star5):
    query, catalog = star5
    config = SystemConfig(num_servers=2)
    environment = EnvironmentState(catalog, config)
    costs = {
        policy: optimize(
            query, environment, policy, Objective.PAGES_SENT,
            OptimizerConfig.fast(), seed=3,
        ).cost.pages_sent
        for policy in Policy
    }
    assert costs[Policy.HYBRID_SHIPPING] <= min(
        costs[Policy.DATA_SHIPPING], costs[Policy.QUERY_SHIPPING]
    )
