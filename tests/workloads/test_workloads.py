"""Workload construction tests."""

import pytest

from repro.catalog import Relation
from repro.config import BufferAllocation, SystemConfig
from repro.costmodel import Estimator
from repro.errors import ConfigurationError
from repro.plans import DisplayOp, JoinOp, ScanOp
from repro.plans.annotations import Annotation
from repro.workloads import (
    benchmark_relations,
    chain_query,
    chain_scenario,
    chain_selectivity,
)

A = Annotation


class TestBenchmarkRelations:
    def test_paper_defaults(self):
        relations = benchmark_relations(10)
        assert len(relations) == 10
        assert relations[0].name == "R0"
        assert all(r.tuples == 10_000 and r.tuple_bytes == 100 for r in relations)
        assert relations[3].pages(SystemConfig()) == 250

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            benchmark_relations(0)


class TestChainSelectivity:
    def test_moderate(self):
        assert chain_selectivity("moderate", 10_000) == pytest.approx(1e-4)

    def test_hisel(self):
        assert chain_selectivity("hisel", 10_000) == pytest.approx(2e-5)

    def test_explicit_float(self):
        assert chain_selectivity(0.5, 10_000) == 0.5

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            chain_selectivity("extreme", 10_000)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            chain_selectivity(0.0, 10_000)


class TestChainQuery:
    def test_chain_structure(self):
        query = chain_query(benchmark_relations(5))
        assert query.num_joins == 4
        assert query.is_connected()
        assert query.join_graph_edges() == [
            ("R0", "R1"), ("R1", "R2"), ("R2", "R3"), ("R3", "R4")
        ]

    def test_moderate_join_is_functional(self):
        """Any connected sub-chain joins to one base relation's size."""
        relations = benchmark_relations(4)
        query = chain_query(relations)
        from repro.catalog import Catalog, Placement

        catalog = Catalog(relations, Placement({r.name: 1 for r in relations}))
        estimator = Estimator(query, catalog, SystemConfig())
        tree = ScanOp(A.PRIMARY_COPY, "R0")
        for name in ("R1", "R2", "R3"):
            tree = JoinOp(A.CONSUMER, inner=ScanOp(A.PRIMARY_COPY, name), outer=tree)
            assert estimator.cardinality(tree) == pytest.approx(10_000)

    def test_hisel_shrinks_deep_but_inflates_bushy(self):
        """Section 5.2: bushy HiSel intermediates grow."""
        relations = benchmark_relations(4)
        query = chain_query(relations, "hisel")
        from repro.catalog import Catalog, Placement

        catalog = Catalog(relations, Placement({r.name: 1 for r in relations}))
        estimator = Estimator(query, catalog, SystemConfig())
        deep = JoinOp(
            A.CONSUMER,
            inner=ScanOp(A.PRIMARY_COPY, "R2"),
            outer=JoinOp(
                A.CONSUMER,
                inner=ScanOp(A.PRIMARY_COPY, "R0"),
                outer=ScanOp(A.PRIMARY_COPY, "R1"),
            ),
        )
        bushy = JoinOp(
            A.CONSUMER,
            inner=JoinOp(
                A.CONSUMER,
                inner=ScanOp(A.PRIMARY_COPY, "R0"),
                outer=ScanOp(A.PRIMARY_COPY, "R1"),
            ),
            outer=JoinOp(
                A.CONSUMER,
                inner=ScanOp(A.PRIMARY_COPY, "R2"),
                outer=ScanOp(A.PRIMARY_COPY, "R3"),
            ),
        )
        # Final cardinality is plan-independent; the *intermediates* differ:
        # deep shrinks each step (2000 then 400 here), while the bushy plan
        # carries two 2000-tuple intermediates into its top join.
        assert estimator.cardinality(deep) == pytest.approx(400)
        assert estimator.cardinality(bushy.inner) == pytest.approx(2_000)
        assert estimator.cardinality(bushy.outer) == pytest.approx(2_000)
        assert estimator.cardinality(bushy.outer) > estimator.cardinality(deep)


class TestChainScenario:
    def test_defaults(self):
        scenario = chain_scenario(num_relations=10, num_servers=3, placement_seed=1)
        assert scenario.config.num_servers == 3
        assert len(scenario.catalog.relation_names) == 10
        assert scenario.query.num_joins == 9
        assert scenario.catalog.placement.servers_used == {1, 2, 3}

    def test_cached_fraction(self):
        scenario = chain_scenario(num_relations=2, cached_fraction=0.5)
        assert scenario.catalog.cached_fraction("R0") == 0.5
        assert scenario.catalog.cached_fraction("R1") == 0.5

    def test_cached_relations(self):
        scenario = chain_scenario(num_relations=10, cached_relations=5)
        cached = [n for n in scenario.catalog.relation_names
                  if scenario.catalog.cached_fraction(n) == 1.0]
        assert cached == ["R0", "R1", "R2", "R3", "R4"]

    def test_both_cache_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            chain_scenario(cached_fraction=0.5, cached_relations=2)

    def test_server_load_applied_to_all_servers(self):
        scenario = chain_scenario(num_relations=4, num_servers=2, server_load=40.0)
        assert scenario.server_loads == {1: 40.0, 2: 40.0}

    def test_allocation_setting(self):
        scenario = chain_scenario(allocation=BufferAllocation.MAXIMUM)
        assert scenario.config.buffer_allocation is BufferAllocation.MAXIMUM

    def test_environment_reflects_truth(self):
        scenario = chain_scenario(num_relations=2, server_load=40.0)
        environment = scenario.environment()
        assert environment.catalog is scenario.catalog
        assert environment.server_loads == {1: 40.0}

    def test_execute_runs_a_plan(self):
        scenario = chain_scenario(num_relations=2)
        plan = DisplayOp(
            A.CLIENT,
            child=JoinOp(
                A.INNER_RELATION,
                inner=ScanOp(A.PRIMARY_COPY, "R0"),
                outer=ScanOp(A.PRIMARY_COPY, "R1"),
            ),
        )
        result = scenario.execute(plan, seed=1)
        assert result.result_tuples == 10_000
