"""Unit tests for the client disk cache."""

import pytest

from repro.errors import CatalogError
from repro.storage import ClientDiskCache, ExtentAllocator


@pytest.fixture
def cache():
    return ClientDiskCache(ExtentAllocator(1000))


def test_install_prefix(cache):
    entry = cache.install("A", 250, 0.5)
    assert entry.cached_pages == 125
    assert entry.fraction == pytest.approx(0.5)
    assert cache.cached_pages("A") == 125
    assert "A" in cache


def test_prefix_containment(cache):
    entry = cache.install("A", 250, 0.25)
    assert entry.contains(0)
    assert entry.contains(61)
    assert not entry.contains(62)  # round(250 * 0.25) = 62 pages cached


def test_disk_page_mapping(cache):
    entry = cache.install("A", 250, 1.0)
    assert entry.disk_page(0) == entry.extent.start
    assert entry.disk_page(249) == entry.extent.start + 249


def test_uncached_page_rejected(cache):
    entry = cache.install("A", 250, 0.1)
    with pytest.raises(CatalogError):
        entry.disk_page(200)


def test_zero_fraction_not_reported_cached(cache):
    cache.install("A", 250, 0.0)
    assert cache.lookup("A") is None
    assert "A" not in cache
    assert len(cache) == 0


def test_reinstall_same_shape_is_idempotent(cache):
    first = cache.install("A", 250, 0.5)
    second = cache.install("A", 250, 0.5)
    assert second is first
    assert len(cache) == 1


def test_reinstall_resizes_and_frees_old_extent(cache):
    free_before = cache._allocator.free_pages
    cache.install("A", 250, 1.0)
    entry = cache.install("A", 250, 0.5)
    assert entry.cached_pages == 125
    assert cache.cached_pages("A") == 125
    assert cache._allocator.free_pages == free_before - 125


def test_reinstall_validates_before_replacing(cache):
    cache.install("A", 250, 0.5)
    with pytest.raises(CatalogError):
        cache.install("A", 250, 1.5)
    # The bad install left the existing entry untouched.
    assert cache.cached_pages("A") == 125


def test_contents_and_digest_track_installs(cache):
    empty_digest = cache.digest()
    cache.install("A", 250, 0.5)
    assert cache.contents() == (("A", 125, 250),)
    assert cache.total_cached_pages == 125
    assert cache.digest() != empty_digest
    resized = cache.digest()
    cache.install("A", 250, 1.0)
    assert cache.digest() != resized


def test_invalid_fraction_rejected(cache):
    with pytest.raises(CatalogError):
        cache.install("A", 250, 1.5)


def test_evict_frees_disk_space(cache):
    allocator_free_before = cache._allocator.free_pages
    cache.install("A", 250, 1.0)
    assert cache._allocator.free_pages == allocator_free_before - 250
    cache.evict("A")
    assert cache._allocator.free_pages == allocator_free_before
    assert "A" not in cache


def test_evict_unknown_rejected(cache):
    with pytest.raises(CatalogError):
        cache.evict("missing")


def test_multiple_relations(cache):
    cache.install("A", 250, 0.5)
    cache.install("B", 250, 1.0)
    assert len(cache) == 2
    assert cache.cached_pages("B") == 250
    assert cache.cached_pages("unknown") == 0
