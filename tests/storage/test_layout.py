"""Unit tests for extents and the first-fit allocator."""

import pytest

from repro.errors import ConfigurationError
from repro.storage import Extent, ExtentAllocator


class TestExtent:
    def test_page_addressing(self):
        extent = Extent(100, 10)
        assert extent.page(0) == 100
        assert extent.page(9) == 109
        assert extent.end == 110
        assert len(extent) == 10
        assert list(extent) == list(range(100, 110))

    def test_page_out_of_range(self):
        extent = Extent(0, 4)
        with pytest.raises(IndexError):
            extent.page(4)
        with pytest.raises(IndexError):
            extent.page(-1)

    def test_invalid_extent(self):
        with pytest.raises(ConfigurationError):
            Extent(-1, 5)


class TestExtentAllocator:
    def test_first_fit(self):
        allocator = ExtentAllocator(100)
        a = allocator.allocate(30)
        b = allocator.allocate(30)
        assert (a.start, b.start) == (0, 30)
        assert allocator.free_pages == 40
        assert allocator.used_pages == 60

    def test_exhaustion(self):
        allocator = ExtentAllocator(10)
        allocator.allocate(10)
        with pytest.raises(ConfigurationError, match="disk full"):
            allocator.allocate(1)

    def test_free_and_reuse(self):
        allocator = ExtentAllocator(100)
        a = allocator.allocate(40)
        allocator.allocate(40)
        allocator.free(a)
        c = allocator.allocate(40)
        assert c.start == 0  # reused the freed hole

    def test_coalescing(self):
        allocator = ExtentAllocator(100)
        a = allocator.allocate(30)
        b = allocator.allocate(30)
        c = allocator.allocate(40)
        allocator.free(a)
        allocator.free(c)
        allocator.free(b)  # merges all three back into one run
        big = allocator.allocate(100)
        assert big.start == 0

    def test_double_free_detected(self):
        allocator = ExtentAllocator(50)
        a = allocator.allocate(10)
        allocator.free(a)
        with pytest.raises(ConfigurationError, match="double free"):
            allocator.free(a)

    def test_free_outside_space_rejected(self):
        allocator = ExtentAllocator(50)
        with pytest.raises(ConfigurationError):
            allocator.free(Extent(45, 10))

    def test_zero_page_free_is_noop(self):
        allocator = ExtentAllocator(50)
        allocator.free(Extent(0, 0))
        assert allocator.free_pages == 50

    def test_negative_allocation_rejected(self):
        allocator = ExtentAllocator(50)
        with pytest.raises(ConfigurationError):
            allocator.allocate(-1)

    def test_zero_allocation_is_empty_extent(self):
        allocator = ExtentAllocator(50)
        empty = allocator.allocate(0)
        assert empty.pages == 0
        assert allocator.free_pages == 50
        allocator.free(empty)  # no-op
