"""Unit tests for buffer accounting and Shapiro's hybrid-hash formulas."""


import pytest

from repro.config import HYBRID_HASH_FUDGE_FACTOR, BufferAllocation
from repro.errors import ConfigurationError
from repro.storage import MemoryManager, plan_hybrid_hash
from repro.storage.memory import (
    join_allocation,
    maximum_join_allocation,
    minimum_join_allocation,
)


class TestAllocationFormulas:
    def test_minimum_is_sqrt_fm(self):
        # Paper relations: 250 pages; F * M = 300; sqrt = 17.3 -> 18 frames.
        assert minimum_join_allocation(250) == 18

    def test_maximum_fits_inner(self):
        assert maximum_join_allocation(250) == 300

    def test_join_allocation_dispatch(self):
        assert join_allocation(250, BufferAllocation.MINIMUM) == 18
        assert join_allocation(250, BufferAllocation.MAXIMUM) == 300

    def test_tiny_relations_get_floor(self):
        assert minimum_join_allocation(0) >= 2
        assert maximum_join_allocation(1) >= 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            minimum_join_allocation(-1)


class TestHybridHashPlan:
    def test_maximum_allocation_runs_in_memory(self):
        plan = plan_hybrid_hash(250, 250, maximum_join_allocation(250))
        assert plan.in_memory
        assert plan.spill_partitions == 0
        assert plan.resident_fraction == 1.0
        assert plan.temp_io_pages == 0

    def test_minimum_allocation_spills_almost_everything(self):
        plan = plan_hybrid_hash(250, 250, minimum_join_allocation(250))
        assert not plan.in_memory
        assert plan.resident_fraction < 0.02
        assert plan.spilled_inner_pages >= 245
        # Every spilled page is written once and read once.
        assert plan.temp_io_pages == 2 * (
            plan.spilled_inner_pages + plan.spilled_outer_pages
        )

    def test_partitions_fit_when_reprocessed(self):
        buffers = minimum_join_allocation(250)
        plan = plan_hybrid_hash(250, 250, buffers)
        per_partition = plan.spilled_inner_pages / plan.spill_partitions
        # Each spilled inner partition must fit in memory with fudge factor.
        assert per_partition * HYBRID_HASH_FUDGE_FACTOR <= buffers + 1

    def test_intermediate_allocation(self):
        plan = plan_hybrid_hash(250, 250, 150)
        assert 0.0 < plan.resident_fraction < 1.0
        assert plan.spilled_inner_pages < 250

    def test_empty_inner(self):
        plan = plan_hybrid_hash(0, 250, 10)
        assert plan.in_memory

    def test_too_few_buffers_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_hybrid_hash(250, 250, 1)


class TestMemoryManager:
    def test_allocate_release(self):
        memory = MemoryManager(100)
        memory.allocate(60)
        assert memory.available_pages == 40
        memory.release(60)
        assert memory.available_pages == 100

    def test_oversubscription_rejected(self):
        memory = MemoryManager(100)
        memory.allocate(80)
        with pytest.raises(ConfigurationError, match="exhausted"):
            memory.allocate(30)

    def test_high_water_mark(self):
        memory = MemoryManager(100)
        memory.allocate(50)
        memory.allocate(30)
        memory.release(70)
        assert memory.high_water_mark == 80

    def test_bad_release_rejected(self):
        memory = MemoryManager(100)
        memory.allocate(10)
        with pytest.raises(ConfigurationError):
            memory.release(20)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            MemoryManager(0)
