"""Unit tests for buffer accounting, Shapiro's formulas, and the broker."""


import pytest

from repro.config import HYBRID_HASH_FUDGE_FACTOR, BufferAllocation
from repro.errors import ConfigurationError, MemoryExhaustedError, TransientFaultError
from repro.sim import Environment
from repro.storage import MemoryBroker, MemoryManager, MemoryPressureState, plan_hybrid_hash
from repro.storage.memory import (
    join_allocation,
    maximum_join_allocation,
    minimum_join_allocation,
)


class TestAllocationFormulas:
    def test_minimum_is_sqrt_fm(self):
        # Paper relations: 250 pages; F * M = 300; sqrt = 17.3 -> 18 frames.
        assert minimum_join_allocation(250) == 18

    def test_maximum_fits_inner(self):
        assert maximum_join_allocation(250) == 300

    def test_join_allocation_dispatch(self):
        assert join_allocation(250, BufferAllocation.MINIMUM) == 18
        assert join_allocation(250, BufferAllocation.MAXIMUM) == 300

    def test_tiny_relations_get_floor(self):
        assert minimum_join_allocation(0) >= 2
        assert maximum_join_allocation(1) >= 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            minimum_join_allocation(-1)
        with pytest.raises(ConfigurationError):
            maximum_join_allocation(-1)

    def test_degenerate_fudge_rejected(self):
        # A fudge factor below 1 would claim hash tables shrink their data.
        with pytest.raises(ConfigurationError):
            minimum_join_allocation(250, fudge=0.9)
        with pytest.raises(ConfigurationError):
            maximum_join_allocation(250, fudge=0.0)
        with pytest.raises(ConfigurationError):
            plan_hybrid_hash(250, 250, 18, fudge=0.5)

    def test_fudge_boundary_exactly_one_allowed(self):
        assert minimum_join_allocation(250, fudge=1.0) == 16
        assert maximum_join_allocation(250, fudge=1.0) == 250

    def test_zero_inner_floor(self):
        # inner_pages=0 must yield a sane minimal allocation, not 0 frames.
        assert minimum_join_allocation(0) == 2
        assert maximum_join_allocation(0) == 2
        assert join_allocation(0, BufferAllocation.MINIMUM) == 2


class TestHybridHashPlan:
    def test_maximum_allocation_runs_in_memory(self):
        plan = plan_hybrid_hash(250, 250, maximum_join_allocation(250))
        assert plan.in_memory
        assert plan.spill_partitions == 0
        assert plan.resident_fraction == 1.0
        assert plan.temp_io_pages == 0

    def test_minimum_allocation_spills_almost_everything(self):
        plan = plan_hybrid_hash(250, 250, minimum_join_allocation(250))
        assert not plan.in_memory
        assert plan.resident_fraction < 0.02
        assert plan.spilled_inner_pages >= 245
        # Every spilled page is written once and read once.
        assert plan.temp_io_pages == 2 * (
            plan.spilled_inner_pages + plan.spilled_outer_pages
        )

    def test_partitions_fit_when_reprocessed(self):
        buffers = minimum_join_allocation(250)
        plan = plan_hybrid_hash(250, 250, buffers)
        per_partition = plan.spilled_inner_pages / plan.spill_partitions
        # Each spilled inner partition must fit in memory with fudge factor.
        assert per_partition * HYBRID_HASH_FUDGE_FACTOR <= buffers + 1

    def test_intermediate_allocation(self):
        plan = plan_hybrid_hash(250, 250, 150)
        assert 0.0 < plan.resident_fraction < 1.0
        assert plan.spilled_inner_pages < 250

    def test_empty_inner(self):
        plan = plan_hybrid_hash(0, 250, 10)
        assert plan.in_memory

    def test_too_few_buffers_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_hybrid_hash(250, 250, 1)


class TestMemoryManager:
    def test_allocate_release(self):
        memory = MemoryManager(100)
        memory.allocate(60)
        assert memory.available_pages == 40
        memory.release(60)
        assert memory.available_pages == 100

    def test_oversubscription_sheds(self):
        # Static-discipline exhaustion is a shed (load control), not a
        # configuration bug: MemoryExhaustedError is a QueryShedError.
        memory = MemoryManager(100)
        memory.allocate(80)
        with pytest.raises(MemoryExhaustedError, match="exhausted"):
            memory.allocate(30)

    def test_high_water_mark(self):
        memory = MemoryManager(100)
        memory.allocate(50)
        memory.allocate(30)
        memory.release(70)
        assert memory.high_water_mark == 80

    def test_bad_release_rejected(self):
        memory = MemoryManager(100)
        memory.allocate(10)
        with pytest.raises(ConfigurationError):
            memory.release(20)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            MemoryManager(0)


def _drive(env, generator, name="request"):
    """Run a broker-request generator as a process; returns the Process."""
    return env.process(generator, name=name)


class TestMemoryBroker:
    def make(self, capacity=100, reclaim=True):
        env = Environment()
        return env, MemoryBroker(env, capacity, name="site.memory", reclaim_enabled=reclaim)

    def test_uncontended_grant_is_synchronous_and_maximal(self):
        _env, broker = self.make()
        grant = broker.try_grant(10, 40, "join#0")
        assert grant is not None
        assert grant.pages == 40  # greedy up to the maximum
        assert broker.allocated_pages == 40
        grant.release()
        assert broker.allocated_pages == 0

    def test_grant_release_idempotent(self):
        _env, broker = self.make()
        grant = broker.try_grant(10, 40, "join#0")
        grant.release()
        grant.release()
        assert broker.allocated_pages == 0

    def test_minimum_respected_under_pressure(self):
        _env, broker = self.make(capacity=50)
        first = broker.try_grant(10, 40, "a")
        assert first is not None and first.pages == 40
        # 10 pages free: a [10..30] request gets its minimum, not less.
        second = broker.try_grant(10, 30, "b")
        assert second is not None and second.pages == 10

    def test_never_partially_starved(self):
        _env, broker = self.make(capacity=50)
        broker.try_grant(10, 45, "a")
        # 5 free < minimum 10 and no reclaimable grant: no partial grant.
        assert broker.try_grant(10, 30, "b") is None

    def test_impossible_minimum_fails_fast(self):
        _env, broker = self.make(capacity=50)
        with pytest.raises(MemoryExhaustedError):
            broker.try_grant(51, 60, "join#0")

    def test_fifo_wait_queue_and_wake_on_release(self):
        env, broker = self.make(capacity=50)
        first = broker.try_grant(20, 50, "a")
        assert first is not None
        granted: list[str] = []

        def ask(label):
            grant = yield from broker.request(20, 25, label)
            granted.append(label)
            return grant

        _drive(env, ask("b"))
        _drive(env, ask("c"))
        env.run(until=env.timeout(0.0))
        assert granted == []  # both queued behind the full pool
        assert broker.waiting == 2
        first.release()
        env.run(until=env.timeout(0.0))
        # Release wakes the queue strictly in arrival order.
        assert granted == ["b", "c"]
        assert broker.waiting == 0

    def test_head_of_queue_blocks_later_requests(self):
        env, broker = self.make(capacity=50)
        broker.try_grant(20, 45, "a")  # 5 free
        _drive(env, broker.request(30, 30, "big"))
        env.run(until=env.timeout(0.0))
        # A small request that *would* fit must still queue behind "big".
        assert broker.try_grant(2, 4, "small") is None
        assert broker.waiting == 1

    def test_reclaim_shrinks_oldest_toward_minimum(self):
        _env, broker = self.make(capacity=50)
        taken: list[int] = []

        def give_back(pages):
            taken.append(pages)
            return pages

        first = broker.try_grant(10, 50, "a", give_back)
        assert first.pages == 50
        second = broker.try_grant(10, 20, "b")
        # The broker clawed pages above "a"'s minimum to serve "b".
        assert second is not None and second.pages >= 10
        assert taken and first.pages >= 10
        assert broker.reclaims == 1
        assert broker.reclaimed_pages == sum(taken)

    def test_reclaim_never_goes_below_minimum(self):
        _env, broker = self.make(capacity=50)
        first = broker.try_grant(30, 50, "a", lambda pages: pages)
        assert first.pages == 50
        assert broker.try_grant(25, 30, "b") is None  # only 20 reclaimable
        assert first.pages == 30  # shrunk exactly to its minimum

    def test_reclaim_disabled_only_queues(self):
        _env, broker = self.make(capacity=50, reclaim=False)
        first = broker.try_grant(10, 50, "a", lambda pages: pages)
        assert first.pages == 50
        assert broker.try_grant(10, 20, "b") is None

    def test_cancel_queued_waiter_fails_event(self):
        env, broker = self.make(capacity=50)
        broker.try_grant(20, 50, "a")
        waiter = broker.enqueue(20, 30, "b")
        failures: list[BaseException] = []

        def wait():
            try:
                yield waiter.event
            except TransientFaultError as exc:
                failures.append(exc)

        _drive(env, wait())
        broker.cancel(waiter)
        env.run(until=env.timeout(0.0))
        assert len(failures) == 1
        assert broker.waiting == 0

    def test_cancel_after_grant_releases_it(self):
        env, broker = self.make(capacity=50)
        first = broker.try_grant(20, 50, "a")
        waiter = broker.enqueue(20, 30, "b")
        first.release()  # grants the waiter synchronously
        assert waiter.granted is not None
        broker.cancel(waiter)
        assert broker.allocated_pages == 0
        env.run(until=env.timeout(0.0))

    def test_log_is_deterministic(self):
        def scenario():
            env, broker = self.make(capacity=50)
            a = broker.try_grant(10, 50, "a", lambda pages: pages)
            broker.try_grant(10, 20, "b")
            broker.record_spill("a", 3)
            a.release()
            env.run(until=env.timeout(0.0))
            return broker.log

        assert scenario() == scenario()

    def test_bad_range_rejected(self):
        _env, broker = self.make()
        with pytest.raises(ConfigurationError):
            broker.try_grant(0, 10, "a")
        with pytest.raises(ConfigurationError):
            broker.try_grant(10, 5, "a")

    def test_describe_pressure(self):
        _env, broker = self.make(capacity=50)
        assert broker.describe_pressure() == ""
        broker.try_grant(20, 45, "join#0@server1")
        broker.enqueue(20, 30, "join#0@server1")
        text = broker.describe_pressure()
        assert "granted" in text and "waiter" in text and "join#0@server1" in text


class TestMemoryPressureState:
    def test_capture_and_digest(self):
        env = Environment()

        class FakeSite:
            def __init__(self, site_id, broker):
                self.site_id = site_id
                self.memory = broker

        busy = MemoryBroker(env, 100, name="s1")
        busy.try_grant(10, 60, "j")
        idle = MemoryBroker(env, 100, name="s2")
        state = MemoryPressureState.capture([FakeSite(2, idle), FakeSite(1, busy)])
        assert state.sites[0][0] == 1  # sorted by site id
        assert state.free_pages(1) == 40
        assert state.free_pages(2) == 100
        assert state.free_pages(99) is None
        assert state.waiters(1) == 0
        other = MemoryPressureState.capture([FakeSite(1, busy)])
        assert state.digest() != other.digest()
        assert state.digest() == MemoryPressureState.capture(
            [FakeSite(2, idle), FakeSite(1, busy)]
        ).digest()
