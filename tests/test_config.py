"""Configuration validation and derived-cost tests."""

import pytest

from repro.config import (
    BufferAllocation,
    DiskParams,
    OptimizerConfig,
    SystemConfig,
)
from repro.errors import ConfigurationError


class TestSystemConfig:
    def test_table2_defaults(self):
        config = SystemConfig()
        assert config.mips == 50.0
        assert config.num_disks == 1
        assert config.disk_inst == 5000
        assert config.page_size == 4096
        assert config.net_bandwidth_mbit == 100.0
        assert config.msg_inst == 20000
        assert config.per_size_mi == 12000
        assert config.display_inst == 0
        assert config.compare_inst == 2
        assert config.hash_inst == 9
        assert config.move_inst_per_4_bytes == 1

    def test_derived_costs(self):
        config = SystemConfig()
        # 5000 instructions at 50 MIPS = 0.1 ms.
        assert config.instructions_time(5000) == pytest.approx(1e-4)
        # A full page on a 100 Mbit/s wire = 4096*8/1e8 s.
        assert config.wire_time(4096) == pytest.approx(0.00032768)
        # Message endpoint cost for a full page: MsgInst + PerSizeMI.
        assert config.message_cpu_instructions(4096) == 32000
        # Copying 100 bytes at 1 instruction per 4 bytes.
        assert config.move_instructions(100) == 25.0

    def test_tuples_per_page(self):
        config = SystemConfig()
        assert config.tuples_per_page(100) == 40
        assert config.tuples_per_page(4096) == 1
        with pytest.raises(ConfigurationError):
            config.tuples_per_page(5000)
        with pytest.raises(ConfigurationError):
            config.tuples_per_page(0)

    def test_with_helpers(self):
        config = SystemConfig()
        assert config.with_servers(5).num_servers == 5
        assert (
            config.with_allocation(BufferAllocation.MAXIMUM).buffer_allocation
            is BufferAllocation.MAXIMUM
        )
        # Originals untouched (frozen dataclass).
        assert config.num_servers == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mips": 0},
            {"page_size": 0},
            {"net_bandwidth_mbit": 0},
            {"num_servers": 0},
            {"num_disks": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SystemConfig(**kwargs)


class TestDiskParams:
    def test_derived_geometry(self):
        params = DiskParams()
        assert params.pages_per_cylinder == 16
        assert params.capacity_pages == 16_000
        assert params.transfer_time == pytest.approx(params.revolution_time / 4)
        assert params.average_rotational_latency == pytest.approx(
            params.revolution_time / 2
        )

    def test_seek_time(self):
        params = DiskParams()
        assert params.seek_time(0) == 0.0
        assert params.seek_time(100) == pytest.approx(
            params.min_seek_time + 100 * params.seek_factor
        )

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            DiskParams(cylinders=0)
        with pytest.raises(ConfigurationError):
            DiskParams(revolution_time=0.0)


class TestOptimizerConfig:
    def test_presets_are_valid(self):
        paper = OptimizerConfig.paper()
        fast = OptimizerConfig.fast()
        assert paper.ii_starts > fast.ii_starts
        assert paper.ii_local_minimum_patience > fast.ii_local_minimum_patience

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            OptimizerConfig(ii_starts=0)
        with pytest.raises(ConfigurationError):
            OptimizerConfig(sa_temperature_decay=1.0)


class TestBufferAllocation:
    def test_values_match_paper(self):
        assert BufferAllocation("min") is BufferAllocation.MINIMUM
        assert BufferAllocation("max") is BufferAllocation.MAXIMUM
        assert str(BufferAllocation.MINIMUM) == "min"
