"""Dynamic hybrid-hash join: broker grants, spilling, reversal, recovery."""

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.config import BufferAllocation, MemoryConfig, SystemConfig
from repro.engine import QueryExecutor
from repro.errors import TransientFaultError
from repro.faults import FaultSchedule, RecoveryPolicy
from repro.obs.trace import Tracer
from repro.plans import DisplayOp, JoinOp, JoinPredicate, Query, ScanOp
from repro.plans.annotations import Annotation

A = Annotation
MODERATE = 1e-4


def run_join(
    allocation,
    memory_mode="static",
    server_memory_pages=2048,
    inner_tuples=10_000,
    outer_tuples=10_000,
    selectivity=MODERATE,
    seed=1,
    faults=None,
    recovery=None,
    tracer=None,
):
    config = SystemConfig(
        num_servers=1,
        buffer_allocation=allocation,
        server_memory_pages=server_memory_pages,
        memory=MemoryConfig(mode=memory_mode),
    )
    catalog = Catalog(
        [Relation("A", inner_tuples), Relation("B", outer_tuples)],
        Placement({"A": 1, "B": 1}),
    )
    query = Query(("A", "B"), (JoinPredicate("A", "B", selectivity),))
    join = JoinOp(
        A.INNER_RELATION,
        inner=ScanOp(A.PRIMARY_COPY, "A"),
        outer=ScanOp(A.PRIMARY_COPY, "B"),
    )
    plan = DisplayOp(A.CLIENT, child=join)
    executor = QueryExecutor(
        config,
        catalog,
        query,
        seed=seed,
        faults=faults,
        recovery=recovery,
        tracer=tracer,
    )
    return executor.execute(plan), executor


class TestUnboundedParity:
    """Satellite: with memory to spare, dynamic == static, event for event."""

    def test_matches_static_maximum_exactly(self):
        static, static_exec = run_join(BufferAllocation.MAXIMUM, "static")
        dynamic, dynamic_exec = run_join(BufferAllocation.MAXIMUM, "dynamic")
        assert dynamic.response_time == static.response_time
        assert dynamic.pages_sent == static.pages_sent
        assert dynamic.result_tuples == static.result_tuples
        s_disk = static_exec.topology.servers[0].disk
        d_disk = dynamic_exec.topology.servers[0].disk
        assert (d_disk.reads, d_disk.writes) == (s_disk.reads, s_disk.writes)

    def test_uncontended_grant_is_maximal_and_spill_free(self):
        _result, executor = run_join(BufferAllocation.MAXIMUM, "dynamic")
        server = executor.topology.servers[0]
        assert server.disk.writes == 0
        assert server.memory.allocated_pages == 0
        assert server.memory.high_water_mark >= 300
        assert server.memory.spill_pages == 0
        assert server.memory.grants_issued == 1


class TestConstrainedDynamic:
    def test_partial_grant_spills_and_completes(self):
        result, executor = run_join(
            BufferAllocation.MAXIMUM, "dynamic", server_memory_pages=100
        )
        server = executor.topology.servers[0]
        # The broker granted what it had (100 < the 300-page maximum);
        # the join degraded to a spilling hybrid-hash and still finished.
        assert result.result_tuples == 10_000
        assert server.disk.writes > 0
        assert server.memory.spill_pages > 0
        assert server.memory.allocated_pages == 0
        assert server.allocators[0].used_pages == 500  # temps freed

    def test_constrained_slower_than_unconstrained(self):
        tight, _ = run_join(
            BufferAllocation.MAXIMUM, "dynamic", server_memory_pages=100
        )
        roomy, _ = run_join(BufferAllocation.MAXIMUM, "dynamic")
        assert tight.response_time > roomy.response_time

    def test_role_reversal_on_smaller_probe(self):
        # Inner 10k tuples (250 pages), outer 2k (50 pages): any spilled
        # partition pair has the probe side smaller than the build side,
        # so the dynamic join swaps their roles before rejoining them.
        tracer = Tracer()
        result, executor = run_join(
            BufferAllocation.MAXIMUM,
            "dynamic",
            server_memory_pages=40,
            outer_tuples=2_000,
            selectivity=5e-4,
            tracer=tracer,
        )
        assert result.result_tuples > 0
        names = {i.name for i in tracer.instants}
        assert "join.role-reversal" in names
        server = executor.topology.servers[0]
        assert server.memory.allocated_pages == 0
        assert server.allocators[0].used_pages == 300  # 250 + 50 base pages

    def test_determinism_under_constrained_memory(self):
        a, exec_a = run_join(
            BufferAllocation.MAXIMUM, "dynamic", server_memory_pages=100, seed=5
        )
        b, exec_b = run_join(
            BufferAllocation.MAXIMUM, "dynamic", server_memory_pages=100, seed=5
        )
        assert a.response_time == b.response_time
        assert a.pages_sent == b.pages_sent
        assert (
            exec_a.topology.servers[0].memory.log
            == exec_b.topology.servers[0].memory.log
        )


class TestCrashDuringDynamicJoin:
    """Satellite: abort during a granted join releases broker memory."""

    def test_crash_mid_join_releases_grant_and_recovers(self):
        result, executor = run_join(
            BufferAllocation.MAXIMUM,
            "dynamic",
            server_memory_pages=100,
            faults=FaultSchedule.server_crash(1, at=0.5, duration=1.0),
            recovery=RecoveryPolicy(max_attempts=8, base_backoff=0.5),
        )
        assert result.result_tuples == 10_000
        assert result.retries >= 1
        server = executor.topology.servers[0]
        assert server.memory.allocated_pages == 0
        assert server.memory.waiting == 0
        assert server.allocators[0].used_pages == 500

    def test_failed_recovery_still_drains_broker(self):
        config = SystemConfig(
            num_servers=1,
            buffer_allocation=BufferAllocation.MAXIMUM,
            server_memory_pages=100,
            memory=MemoryConfig(mode="dynamic"),
        )
        catalog = Catalog(
            [Relation("A", 10_000), Relation("B", 10_000)],
            Placement({"A": 1, "B": 1}),
        )
        query = Query(("A", "B"), (JoinPredicate("A", "B", MODERATE),))
        plan = DisplayOp(
            A.CLIENT,
            child=JoinOp(
                A.INNER_RELATION,
                inner=ScanOp(A.PRIMARY_COPY, "A"),
                outer=ScanOp(A.PRIMARY_COPY, "B"),
            ),
        )
        executor = QueryExecutor(
            config,
            catalog,
            query,
            seed=1,
            faults=FaultSchedule.server_crash(1, at=0.5),
            recovery=RecoveryPolicy.none(),
        )
        with pytest.raises(TransientFaultError):
            executor.execute(plan)
        server = executor.topology.servers[0]
        assert server.memory.allocated_pages == 0
        assert server.memory.waiting == 0
