"""Write operators: spec validation, write-through, replica failover."""

import pytest

from repro.engine.writes import (
    WRITE_KINDS,
    DeleteIterator,
    InsertIterator,
    UpdateIterator,
    WriteSpec,
)
from repro.errors import (
    ExecutionError,
    NoReachableReplicaError,
    ReproError,
    TransientFaultError,
)
from repro.faults.recovery import RecoveryPolicy
from repro.faults.schedule import FaultSchedule
from repro.plans.policies import Policy
from repro.workload import StreamConfig, WorkloadRunner
from repro.workloads.scenarios import chain_scenario


class TestWriteSpec:
    def test_valid_kinds(self):
        for kind in WRITE_KINDS:
            spec = WriteSpec(kind, "A", (0, 1))
            assert spec.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExecutionError, match="unknown write kind"):
            WriteSpec("upsert", "A", (0,))

    def test_empty_page_set_rejected(self):
        with pytest.raises(ExecutionError, match="dirties no pages"):
            WriteSpec("update", "A", ())

    def test_negative_page_index_rejected(self):
        with pytest.raises(ExecutionError, match="negative page index"):
            WriteSpec("delete", "A", (0, -1))

    def test_cost_shape_flags(self):
        # UPDATE read-modify-writes and ships the page; INSERT appends
        # (no read); DELETE ships only the command.
        assert UpdateIterator.reads_page and UpdateIterator.ships_page
        assert not InsertIterator.reads_page and InsertIterator.ships_page
        assert DeleteIterator.reads_page and not DeleteIterator.ships_page


def run_writes(
    *,
    replication_factor=1,
    faults=None,
    recovery=None,
    seed=3,
    queries=2,
    num_servers=2,
):
    scenario = chain_scenario(
        num_relations=2,
        num_servers=num_servers,
        cached_fraction=1.0,
        placement_seed=seed,
        replication_factor=replication_factor,
    )
    return WorkloadRunner(
        scenario,
        Policy.DATA_SHIPPING,
        num_clients=2,
        stream=StreamConfig(
            arrival="closed",
            think_time=0.0,
            queries_per_client=queries,
            write_fraction=1.0,
        ),
        seed=seed,
        faults=faults,
        recovery=recovery,
        cache="dynamic",
    ).run()


class TestWriteThrough:
    def test_unreplicated_writes_complete_at_the_primary(self):
        result = run_writes()
        assert result.completed == result.submitted
        total = sum(
            v
            for k, v in result.profile.items()
            if k.endswith("consistency.write_pages")
        )
        assert total == result.completed  # one page per statement, one copy

    def test_replicated_writes_double_the_applied_pages(self):
        result = run_writes(replication_factor=2)
        assert result.completed == result.submitted
        total = sum(
            v
            for k, v in result.profile.items()
            if k.endswith("consistency.write_pages")
        )
        assert total == 2 * result.completed

    def test_writers_report_server_usage(self):
        result = run_writes(replication_factor=2)
        for session in result.sessions:
            assert session.status == "completed"
            assert session.servers_used  # every copy holder


class TestNoReachableReplica:
    """Satellite: the typed error for writes with no live copy."""

    def test_error_type_and_payload(self):
        err = NoReachableReplicaError("gone", relation="A", servers=(1, 2))
        assert isinstance(err, TransientFaultError)
        assert isinstance(err, ReproError)
        assert err.relation == "A"
        assert err.servers == (1, 2)

    def test_write_with_all_copies_down_fails_typed(self):
        # One server holding everything, crashed before the stream starts
        # and never restarted: every write statement fails with the typed
        # error (transient -- a restart schedule could have saved it).
        result = run_writes(
            num_servers=1,
            faults=FaultSchedule.server_crash(1, at=0.0),
            recovery=RecoveryPolicy(max_attempts=2, base_backoff=0.1),
        )
        assert result.failed == result.submitted
        for session in result.sessions:
            assert session.status == "failed"
            assert "no reachable copy" in session.error

    def test_write_fails_over_to_surviving_replica(self):
        # 2-way replication, one holder crashed for the whole run: the
        # writer's copy resolution lands on the survivor and every write
        # completes without replica coverage.
        result = run_writes(
            replication_factor=2,
            faults=FaultSchedule.server_crash(1, at=0.0),
            recovery=RecoveryPolicy(max_attempts=4, base_backoff=0.5),
        )
        assert result.completed == result.submitted
        assert result.profile["site.server1.consistency.write_pages"] == 0
        assert result.profile["site.server2.consistency.write_pages"] > 0
