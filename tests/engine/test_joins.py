"""Hybrid-hash join engine tests."""

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.config import BufferAllocation, SystemConfig
from repro.engine import QueryExecutor
from repro.plans import DisplayOp, JoinOp, JoinPredicate, Query, ScanOp
from repro.plans.annotations import Annotation

A = Annotation
MODERATE = 1e-4


def run_join(
    allocation,
    annotation=A.INNER_RELATION,
    scan_annotation=A.PRIMARY_COPY,
    tuples=10_000,
    selectivity=MODERATE,
    seed=1,
):
    config = SystemConfig(num_servers=1, buffer_allocation=allocation)
    catalog = Catalog(
        [Relation("A", tuples), Relation("B", tuples)],
        Placement({"A": 1, "B": 1}),
    )
    query = Query(("A", "B"), (JoinPredicate("A", "B", selectivity),))
    join = JoinOp(
        annotation,
        inner=ScanOp(scan_annotation, "A"),
        outer=ScanOp(scan_annotation, "B"),
    )
    plan = DisplayOp(A.CLIENT, child=join)
    executor = QueryExecutor(config, catalog, query, seed=seed)
    return executor.execute(plan), executor


class TestMaximumAllocation:
    def test_no_temp_io(self):
        result, executor = run_join(BufferAllocation.MAXIMUM)
        server_disk = executor.topology.servers[0].disk
        assert server_disk.writes == 0  # in-memory join writes nothing
        assert result.result_tuples == 10_000

    def test_result_cardinality(self):
        result, _ = run_join(BufferAllocation.MAXIMUM)
        assert result.result_tuples == 10_000
        assert result.result_pages == 250

    def test_memory_released_after_query(self):
        _result, executor = run_join(BufferAllocation.MAXIMUM)
        assert executor.topology.servers[0].memory.allocated_pages == 0
        assert executor.topology.servers[0].memory.high_water_mark >= 300


class TestMinimumAllocation:
    def test_spills_and_rereads(self):
        result, executor = run_join(BufferAllocation.MINIMUM)
        server_disk = executor.topology.servers[0].disk
        # Nearly all of both 250-page inputs spilled once.
        assert 400 <= server_disk.writes <= 520
        assert result.result_tuples == 10_000

    def test_temp_space_freed(self):
        _result, executor = run_join(BufferAllocation.MINIMUM)
        server = executor.topology.servers[0]
        # Only the two base relations remain on disk.
        assert server.allocators[0].used_pages == 500

    def test_slower_than_maximum(self):
        slow, _ = run_join(BufferAllocation.MINIMUM)
        fast, _ = run_join(BufferAllocation.MAXIMUM)
        assert slow.response_time > 3.0 * fast.response_time


class TestJoinPlacement:
    def test_join_at_client_pulls_both_inputs(self):
        result, _ = run_join(BufferAllocation.MAXIMUM, annotation=A.CONSUMER)
        assert result.pages_sent == 500  # both relations shipped up

    def test_join_at_server_ships_result(self):
        result, _ = run_join(BufferAllocation.MAXIMUM, annotation=A.INNER_RELATION)
        assert result.pages_sent == 250

    def test_client_join_avoids_server_disk_contention(self):
        """The Figure 3 effect: at minimum allocation, moving the join to
        the client beats co-locating it with the scans."""
        co_located, _ = run_join(BufferAllocation.MINIMUM, annotation=A.INNER_RELATION)
        split, _ = run_join(BufferAllocation.MINIMUM, annotation=A.CONSUMER)
        assert split.response_time < 0.6 * co_located.response_time


class TestSelectivities:
    def test_hisel_output(self):
        result, _ = run_join(BufferAllocation.MAXIMUM, selectivity=0.2 / 10_000)
        assert result.result_tuples == pytest.approx(2_000, abs=2)

    def test_small_relations_fit_in_memory_even_min_alloc(self):
        result, executor = run_join(
            BufferAllocation.MINIMUM, tuples=40, selectivity=1.0 / 40
        )
        # One page per side: minimum allocation is still enough.
        assert executor.topology.servers[0].disk.writes == 0
        assert result.result_tuples == pytest.approx(40, abs=1)

    def test_deterministic_given_seed(self):
        a, _ = run_join(BufferAllocation.MINIMUM, seed=5)
        b, _ = run_join(BufferAllocation.MINIMUM, seed=5)
        assert a.response_time == b.response_time
        assert a.pages_sent == b.pages_sent
