"""Executor integration tests: whole plans through the simulator."""

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.config import SystemConfig
from repro.engine import QueryExecutor
from repro.errors import PlanError
from repro.plans import DisplayOp, JoinOp, JoinPredicate, Query, ScanOp, SelectOp
from repro.plans.annotations import Annotation

A = Annotation
MODERATE = 1e-4


def three_way_setup(num_servers=2):
    config = SystemConfig(num_servers=num_servers)
    catalog = Catalog(
        [Relation(n, 10_000) for n in ("A", "B", "C")],
        Placement({"A": 1, "B": 1, "C": min(2, num_servers)}),
    )
    query = Query(
        ("A", "B", "C"),
        (JoinPredicate("A", "B", MODERATE), JoinPredicate("B", "C", MODERATE)),
    )
    return config, catalog, query


def test_three_way_join_across_servers():
    config, catalog, query = three_way_setup()
    lower = JoinOp(
        A.INNER_RELATION, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "B")
    )
    upper = JoinOp(A.OUTER_RELATION, inner=lower, outer=ScanOp(A.PRIMARY_COPY, "C"))
    plan = DisplayOp(A.CLIENT, child=upper)
    result = QueryExecutor(config, catalog, query, seed=1).execute(plan)
    assert result.result_tuples == pytest.approx(10_000, abs=2)
    # AB result ships server1 -> server2, final result ships to client.
    assert result.pages_sent == 500


def test_selection_reduces_stream():
    config, catalog, query = three_way_setup()
    query = Query(("A",), selections={"A": 0.25})
    select = SelectOp(A.PRODUCER, child=ScanOp(A.PRIMARY_COPY, "A"), selectivity=0.25)
    plan = DisplayOp(A.CLIENT, child=select)
    result = QueryExecutor(config, catalog, query, seed=1).execute(plan)
    assert result.result_tuples == pytest.approx(2_500, abs=2)
    assert result.pages_sent == 63  # repacked survivors only

def test_select_at_consumer_ships_unfiltered():
    config, catalog, _ = three_way_setup()
    query = Query(("A",), selections={"A": 0.25})
    select = SelectOp(A.CONSUMER, child=ScanOp(A.PRIMARY_COPY, "A"), selectivity=0.25)
    plan = DisplayOp(A.CLIENT, child=select)
    result = QueryExecutor(config, catalog, query, seed=1).execute(plan)
    assert result.result_tuples == pytest.approx(2_500, abs=2)
    assert result.pages_sent == 250  # the whole relation crosses the wire


def test_validate_rejects_wrong_relations():
    config, catalog, query = three_way_setup()
    plan = DisplayOp(A.CLIENT, child=ScanOp(A.PRIMARY_COPY, "A"))
    with pytest.raises(PlanError):
        QueryExecutor(config, catalog, query, seed=1).execute(plan)


def test_utilizations_reported():
    config, catalog, query = three_way_setup()
    lower = JoinOp(
        A.INNER_RELATION, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "B")
    )
    upper = JoinOp(A.CONSUMER, inner=lower, outer=ScanOp(A.PRIMARY_COPY, "C"))
    plan = DisplayOp(A.CLIENT, child=upper)
    result = QueryExecutor(config, catalog, query, seed=1).execute(plan)
    assert 0.0 < result.disk_utilizations["server1.disk0"] <= 1.0
    assert 0.0 <= result.network_utilization <= 1.0
    assert result.disk_reads > 0


def test_bushy_plan_scans_in_parallel():
    """Independent parallelism: scans on different servers overlap."""
    config, catalog, query = three_way_setup()
    # AB at server1, then join with C at server2's site.
    lower = JoinOp(
        A.INNER_RELATION, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "B")
    )
    upper = JoinOp(A.OUTER_RELATION, inner=lower, outer=ScanOp(A.PRIMARY_COPY, "C"))
    parallel = QueryExecutor(config, catalog, query, seed=1).execute(
        DisplayOp(A.CLIENT, child=upper)
    )
    # Same shape but single-server placement: no overlap possible.
    config1 = SystemConfig(num_servers=1)
    catalog1 = Catalog(
        [Relation(n, 10_000) for n in ("A", "B", "C")],
        Placement({"A": 1, "B": 1, "C": 1}),
    )
    serial = QueryExecutor(config1, catalog1, query, seed=1).execute(
        DisplayOp(A.CLIENT, child=upper)
    )
    assert parallel.response_time < serial.response_time


def test_seed_determinism_full_pipeline():
    config, catalog, query = three_way_setup()
    lower = JoinOp(
        A.INNER_RELATION, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "B")
    )
    upper = JoinOp(A.CONSUMER, inner=lower, outer=ScanOp(A.PRIMARY_COPY, "C"))
    plan = DisplayOp(A.CLIENT, child=upper)
    first = QueryExecutor(config, catalog, query, seed=9).execute(plan)
    second = QueryExecutor(config, catalog, query, seed=9).execute(plan)
    assert first.response_time == second.response_time


def test_server_load_slows_query():
    config, catalog, query = three_way_setup(num_servers=2)
    join = JoinOp(
        A.INNER_RELATION, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "B")
    )
    upper = JoinOp(A.CONSUMER, inner=join, outer=ScanOp(A.PRIMARY_COPY, "C"))
    plan = DisplayOp(A.CLIENT, child=upper)
    quiet = QueryExecutor(config, catalog, query, seed=1).execute(plan)
    loaded = QueryExecutor(
        config, catalog, query, seed=1, server_loads={1: 60.0}
    ).execute(plan)
    assert loaded.response_time > 1.3 * quiet.response_time
