"""Scan operator tests: server scans, cached reads, page faulting."""


from repro.catalog import Catalog, Placement, Relation
from repro.config import SystemConfig
from repro.engine import QueryExecutor
from repro.plans import DisplayOp, Query, ScanOp
from repro.plans.annotations import Annotation

A = Annotation


def run_scan(annotation, cache_fraction=0.0, tuples=10_000):
    config = SystemConfig(num_servers=1)
    catalog = Catalog(
        [Relation("R", tuples)],
        Placement({"R": 1}),
        {"R": cache_fraction} if cache_fraction else None,
    )
    query = Query(("R",))
    plan = DisplayOp(A.CLIENT, child=ScanOp(annotation, "R"))
    executor = QueryExecutor(config, catalog, query, seed=1)
    return executor.execute(plan)


class TestServerScan:
    def test_produces_all_tuples(self):
        result = run_scan(A.PRIMARY_COPY)
        assert result.result_tuples == 10_000
        assert result.result_pages == 250

    def test_ships_every_page_to_client(self):
        result = run_scan(A.PRIMARY_COPY)
        assert result.pages_sent == 250
        assert result.control_messages == 0

    def test_sequential_cost(self):
        """250 sequential pages at ~3.5 ms plus shipping."""
        result = run_scan(A.PRIMARY_COPY)
        assert 0.8 < result.response_time < 1.6

    def test_partial_last_page(self):
        result = run_scan(A.PRIMARY_COPY, tuples=10_019)
        assert result.result_tuples == 10_019
        assert result.result_pages == 251


class TestClientScan:
    def test_faults_everything_uncached(self):
        result = run_scan(A.CLIENT)
        assert result.pages_sent == 250
        assert result.control_messages == 250  # one request per faulted page
        assert result.result_tuples == 10_000

    def test_cached_prefix_read_locally(self):
        result = run_scan(A.CLIENT, cache_fraction=0.6)
        assert result.pages_sent == 100  # only the missing 40%
        assert result.control_messages == 100

    def test_fully_cached_no_communication(self):
        result = run_scan(A.CLIENT, cache_fraction=1.0)
        assert result.pages_sent == 0
        assert result.control_messages == 0
        assert result.result_tuples == 10_000

    def test_faulting_slower_than_shipping(self):
        """Page-at-a-time synchronous faulting beats pipelined shipping
        on communication but loses on elapsed time (section 4.2.3)."""
        faulted = run_scan(A.CLIENT)
        shipped = run_scan(A.PRIMARY_COPY)
        assert faulted.response_time > shipped.response_time

    def test_fully_cached_fastest(self):
        cached = run_scan(A.CLIENT, cache_fraction=1.0)
        shipped = run_scan(A.PRIMARY_COPY)
        assert cached.response_time < shipped.response_time


class TestEmptyRelation:
    def test_scan_of_empty_relation(self):
        result = run_scan(A.PRIMARY_COPY, tuples=0)
        assert result.result_tuples == 0
        assert result.result_pages == 0
        assert result.pages_sent == 0
