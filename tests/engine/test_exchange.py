"""Exchange (network operator pair) tests."""


from repro.catalog import Catalog, Placement, Relation
from repro.config import SystemConfig
from repro.engine import QueryExecutor
from repro.plans import DisplayOp, JoinOp, JoinPredicate, Query, ScanOp
from repro.plans.annotations import Annotation

A = Annotation


def setup(num_servers=1):
    config = SystemConfig(num_servers=num_servers)
    catalog = Catalog([Relation("R", 10_000)], Placement({"R": 1}))
    query = Query(("R",))
    return config, catalog, query


def test_exchange_inserted_only_on_crossing_edges():
    config, catalog, query = setup()
    plan = DisplayOp(A.CLIENT, child=ScanOp(A.PRIMARY_COPY, "R"))
    executor = QueryExecutor(config, catalog, query, seed=1)
    from repro.engine.exchange import ExchangeReceiver
    from repro.plans import bind_plan

    root = executor.build_physical(bind_plan(plan, catalog))
    assert isinstance(root.child, ExchangeReceiver)

    # Client scan: no crossing edge, no exchange.
    local_plan = DisplayOp(A.CLIENT, child=ScanOp(A.CLIENT, "R"))
    executor2 = QueryExecutor(config, catalog, query, seed=1)
    root2 = executor2.build_physical(bind_plan(local_plan, catalog))
    from repro.engine.scans import ScanIterator

    assert isinstance(root2.child, ScanIterator)


def test_exchange_pipelines_production_and_shipping():
    """The producer stays a page ahead: total time is far below the sum
    of scan time and shipping time performed serially."""
    config, catalog, query = setup()
    plan = DisplayOp(A.CLIENT, child=ScanOp(A.PRIMARY_COPY, "R"))
    result = QueryExecutor(config, catalog, query, seed=1).execute(plan)
    scan_seconds = 250 * 0.0035
    ship_seconds = 250 * (
        config.wire_time(config.page_size)
        + 2 * config.instructions_time(config.message_cpu_instructions(config.page_size))
    )
    serial = scan_seconds + ship_seconds
    # Wire time fully overlaps production; the sender CPU shares a FIFO
    # queue with the scan's per-I/O CPU charge, so that part serializes.
    assert result.response_time < 0.9 * serial
    assert result.response_time < scan_seconds + 0.6 * ship_seconds


def test_exchange_counts_pages_once():
    config, catalog, query = setup()
    plan = DisplayOp(A.CLIENT, child=ScanOp(A.PRIMARY_COPY, "R"))
    result = QueryExecutor(config, catalog, query, seed=1).execute(plan)
    assert result.pages_sent == 250


def test_server_to_server_exchange():
    config = SystemConfig(num_servers=2)
    catalog = Catalog(
        [Relation("A", 10_000), Relation("B", 10_000)],
        Placement({"A": 1, "B": 2}),
    )
    query = Query(("A", "B"), (JoinPredicate("A", "B", 1e-4),))
    # Join at B's server: A ships server1 -> server2, result ships to client.
    join = JoinOp(
        A.OUTER_RELATION,
        inner=ScanOp(A.PRIMARY_COPY, "A"),
        outer=ScanOp(A.PRIMARY_COPY, "B"),
    )
    result = QueryExecutor(config, catalog, query, seed=1).execute(
        DisplayOp(A.CLIENT, child=join)
    )
    assert result.pages_sent == 500
    assert result.result_tuples == 10_000
