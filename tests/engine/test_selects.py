"""Select iterator tests, including selects inside join plans."""

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.config import BufferAllocation, SystemConfig
from repro.engine import QueryExecutor
from repro.plans import (
    DisplayOp,
    JoinOp,
    JoinPredicate,
    Query,
    ScanOp,
    SelectOp,
)
from repro.plans.annotations import Annotation

A = Annotation


def run_select(selectivity, annotation=A.PRODUCER, tuples=10_000):
    config = SystemConfig(num_servers=1)
    catalog = Catalog([Relation("R", tuples)], Placement({"R": 1}))
    query = Query(("R",), selections={"R": selectivity})
    select = SelectOp(annotation, child=ScanOp(A.PRIMARY_COPY, "R"),
                      selectivity=selectivity)
    plan = DisplayOp(A.CLIENT, child=select)
    return QueryExecutor(config, catalog, query, seed=1).execute(plan)


class TestSelectCardinality:
    @pytest.mark.parametrize("selectivity", [0.01, 0.1, 0.5, 0.9])
    def test_output_cardinality(self, selectivity):
        result = run_select(selectivity)
        assert result.result_tuples == pytest.approx(10_000 * selectivity, abs=2)

    def test_output_repacked_into_full_pages(self):
        result = run_select(0.5)
        assert result.result_pages == 125  # 5000 tuples / 40 per page

    def test_tiny_selectivity(self):
        result = run_select(0.0001)
        assert result.result_tuples == pytest.approx(1, abs=1)


class TestSelectPlacement:
    def test_producer_select_reduces_communication(self):
        at_server = run_select(0.1, A.PRODUCER)
        at_client = run_select(0.1, A.CONSUMER)
        assert at_server.pages_sent == 25
        assert at_client.pages_sent == 250
        assert at_server.result_tuples == at_client.result_tuples


class TestSelectUnderJoin:
    def test_select_feeding_join(self):
        config = SystemConfig(num_servers=1, buffer_allocation=BufferAllocation.MAXIMUM)
        catalog = Catalog(
            [Relation("A", 10_000), Relation("B", 10_000)],
            Placement({"A": 1, "B": 1}),
        )
        query = Query(
            ("A", "B"),
            (JoinPredicate("A", "B", 1e-4),),
            selections={"A": 0.2},
        )
        select = SelectOp(A.PRODUCER, child=ScanOp(A.PRIMARY_COPY, "A"), selectivity=0.2)
        join = JoinOp(A.INNER_RELATION, inner=select, outer=ScanOp(A.PRIMARY_COPY, "B"))
        plan = DisplayOp(A.CLIENT, child=join)
        result = QueryExecutor(config, catalog, query, seed=1).execute(plan)
        # 2000 * 10000 * 1e-4 = 2000 result tuples.
        assert result.result_tuples == pytest.approx(2_000, abs=5)
