"""External disk load generator tests."""

import random

import pytest

from repro.config import SystemConfig
from repro.engine import DiskLoadGenerator
from repro.hardware import Topology
from repro.sim import Environment


@pytest.fixture
def server(env):
    return Topology(env, SystemConfig(num_servers=1), seed=1).servers[0]


def test_utilization_matches_paper_calibration(env, server):
    """The paper's load levels: 40 req/s ~ 50% utilization."""
    DiskLoadGenerator(env, server, 40.0, rng=random.Random(2))
    env.run(until=30.0)
    assert server.disk.utilization() == pytest.approx(0.5, abs=0.08)


@pytest.mark.parametrize(
    ("rate", "utilization"),
    [(40.0, 0.50), (60.0, 0.76), (70.0, 0.90)],
)
def test_figure4_load_calibration(env, server, rate, utilization):
    """All three Figure 4 load levels land near the utilizations the paper
    cites (50/76/90 %); the calibrated disk runs a few points below them."""
    DiskLoadGenerator(env, server, rate, rng=random.Random(5))
    env.run(until=60.0)
    assert server.disk.utilization() == pytest.approx(utilization, abs=0.12)


def test_figure4_load_levels_are_distinct(env):
    """Higher offered load produces strictly higher disk utilization."""
    measured = []
    for rate in (40.0, 60.0, 70.0):
        local = Environment()
        server = Topology(local, SystemConfig(num_servers=1), seed=1).servers[0]
        DiskLoadGenerator(local, server, rate, rng=random.Random(5))
        local.run(until=60.0)
        measured.append(server.disk.utilization())
    assert measured[0] < measured[1] < measured[2]


def test_heavy_load_high_utilization(env, server):
    DiskLoadGenerator(env, server, 70.0, rng=random.Random(2))
    env.run(until=30.0)
    assert server.disk.utilization() > 0.75


def test_request_rate(env, server):
    generator = DiskLoadGenerator(env, server, 50.0, rng=random.Random(3))
    env.run(until=20.0)
    assert generator.requests_issued == pytest.approx(1000, rel=0.15)


def test_zero_rate_is_inert(env, server):
    generator = DiskLoadGenerator(env, server, 0.0)
    assert generator.process is None
    env.run(until=1.0)
    assert server.disk.reads == 0


def test_negative_rate_rejected(env, server):
    with pytest.raises(ValueError):
        DiskLoadGenerator(env, server, -1.0)


def test_open_arrivals_do_not_wait_for_completions(env, server):
    """At an offered load beyond capacity the queue builds up."""
    DiskLoadGenerator(env, server, 500.0, rng=random.Random(4))
    env.run(until=5.0)
    assert server.disk.queue_length > 50
