"""Executor-level recovery loop: retries, replans, timeouts, fallbacks."""

import pytest

from repro.config import OptimizerConfig
from repro.costmodel.model import Objective
from repro.errors import QueryTimeoutError, SiteUnavailableError, TransientFaultError
from repro.faults import FaultSchedule, RecoveryPolicy
from repro.optimizer.two_phase import RandomizedOptimizer
from repro.plans.policies import Policy
from repro.workloads.scenarios import chain_scenario

FAST = OptimizerConfig.fast()


def _optimized(scenario, policy, seed=0):
    return RandomizedOptimizer(
        scenario.query,
        scenario.environment(),
        policy=policy,
        objective=Objective.RESPONSE_TIME,
        config=FAST,
        seed=seed,
    ).optimize().plan


def _run(policy, faults, recovery=None, cached_fraction=1.0, seed=0):
    scenario = chain_scenario(
        num_relations=2, num_servers=1, cached_fraction=cached_fraction, placement_seed=seed
    )
    plan = _optimized(scenario, policy, seed)
    return scenario.execute(
        plan,
        seed=seed,
        faults=faults,
        recovery=recovery,
        policy=policy,
        optimizer_config=FAST,
    )


class TestRecoveryLoop:
    def test_hybrid_replans_onto_client_cache_after_crash(self):
        result = _run(Policy.HYBRID_SHIPPING, FaultSchedule.server_crash(1, at=0.2))
        assert result.replans >= 1
        assert result.retries >= 1
        assert result.faults_seen >= 1
        assert result.time_to_recover > 0.0
        assert result.wasted_work_pages > 0
        assert result.result_tuples > 0

    def test_data_shipping_with_full_cache_is_immune(self):
        result = _run(Policy.DATA_SHIPPING, FaultSchedule.server_crash(1, at=0.2))
        assert result.replans == 0
        assert result.retries == 0
        assert result.result_tuples > 0

    def test_query_shipping_exhausts_retries_without_restart(self):
        with pytest.raises(SiteUnavailableError):
            _run(
                Policy.QUERY_SHIPPING,
                FaultSchedule.server_crash(1, at=0.2),
                recovery=RecoveryPolicy(max_attempts=3, base_backoff=0.2),
            )

    def test_query_shipping_recovers_after_restart_window(self):
        result = _run(
            Policy.QUERY_SHIPPING,
            FaultSchedule.server_crash(1, at=0.2, duration=1.0),
            recovery=RecoveryPolicy(max_attempts=8, base_backoff=0.5),
        )
        assert result.retries >= 1
        assert result.replans == 0  # QS cannot plan around the crash
        assert result.result_tuples > 0

    def test_single_attempt_policy_fails_fast(self):
        with pytest.raises(TransientFaultError):
            _run(
                Policy.HYBRID_SHIPPING,
                FaultSchedule.server_crash(1, at=0.2),
                recovery=RecoveryPolicy.none(),
            )

    def test_query_timeout_raises_timeout_error(self):
        with pytest.raises(QueryTimeoutError):
            _run(
                Policy.QUERY_SHIPPING,
                FaultSchedule.server_crash(1, at=0.2),
                recovery=RecoveryPolicy(
                    max_attempts=50, base_backoff=0.5, query_timeout=10.0
                ),
            )

    def test_recovery_policy_without_faults_matches_plain_run(self):
        scenario = chain_scenario(num_relations=2, num_servers=1, placement_seed=0)
        plan = _optimized(scenario, Policy.QUERY_SHIPPING)
        plain = scenario.execute(plan, seed=0)
        supervised = scenario.execute(
            plan, seed=0, recovery=RecoveryPolicy(), policy=Policy.QUERY_SHIPPING
        )
        assert supervised.response_time == pytest.approx(plain.response_time)
        assert supervised.pages_sent == plain.pages_sent
        assert supervised.retries == 0

    def test_message_drops_survive_without_recovery_loop_faults(self):
        result = _run(
            Policy.QUERY_SHIPPING,
            FaultSchedule(message_drop_probability=0.05),
            cached_fraction=0.0,
        )
        assert result.messages_dropped > 0
        assert result.retries == 0
        assert result.result_tuples > 0

    def test_network_outage_mid_stream_triggers_recovery(self):
        # Outage opens immediately and heals: the initial control/open
        # traffic of a query-shipping plan hits it and the client retries.
        result = _run(
            Policy.QUERY_SHIPPING,
            FaultSchedule.network_outage(at=0.01, duration=1.0),
            cached_fraction=0.0,
            seed=1,
        )
        assert result.result_tuples > 0

    def test_wasted_work_and_recovery_metrics_in_str(self):
        result = _run(Policy.HYBRID_SHIPPING, FaultSchedule.server_crash(1, at=0.2))
        text = str(result)
        assert "retries=" in text and "replans=" in text
