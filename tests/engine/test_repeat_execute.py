"""Re-executing on one topology must not double-count metrics.

The second run is allowed to differ *slightly* from the first (disk head
position, buffer residency, and sequential-run detection legitimately carry
over on a live system); what it must never do is report the first run's
pages, I/Os, or elapsed time again inside its own result.
"""

import random

import pytest

from repro.optimizer.random_plans import random_plan
from repro.plans.policies import Policy
from repro.engine.executor import QueryExecutor
from repro.workloads.scenarios import chain_scenario


@pytest.fixture()
def executor_and_plan():
    scenario = chain_scenario(num_relations=2, cached_fraction=0.5)
    executor = QueryExecutor(scenario.config, scenario.catalog, scenario.query, seed=3)
    plan = random_plan(scenario.query, Policy.HYBRID_SHIPPING, random.Random(3))
    return executor, plan


class TestRepeatExecute:
    def test_second_execute_reports_only_its_own_run(self, executor_and_plan):
        executor, plan = executor_and_plan
        first = executor.execute(plan)
        second = executor.execute(plan)
        # Deterministic transfer and I/O counts repeat exactly; before the
        # per-execute baselines these all came back doubled.
        assert second.pages_sent == first.pages_sent
        assert second.bytes_sent == first.bytes_sent
        assert second.control_messages == first.control_messages
        assert second.disk_reads == first.disk_reads
        assert second.disk_writes == first.disk_writes
        assert second.response_time == pytest.approx(first.response_time, rel=0.05)

    def test_profile_counters_are_per_run(self, executor_and_plan):
        executor, plan = executor_and_plan
        first = executor.execute(plan)
        second = executor.execute(plan)
        for name, value in first.profile.items():
            if name.endswith(("utilization", ".mean", ".min", ".max")):
                continue
            # Nowhere near cumulative: carried-over device state may shift a
            # counter a little, but a doubled value is a baseline bug.
            assert second.profile[name] == pytest.approx(value, rel=0.1, abs=1e-9), name

    def test_recovery_stats_reset_between_executes(self, executor_and_plan):
        executor, plan = executor_and_plan
        executor.execute(plan)
        stats = executor.recovery_stats
        executor.execute(plan)
        assert executor.recovery_stats is not stats
        assert executor.recovery_stats.retries.value == 0
