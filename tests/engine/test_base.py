"""Page and PageAssembler unit tests."""

import pytest

from repro.engine.base import Page, PageAssembler
from repro.errors import ExecutionError


class TestPage:
    def test_payload(self):
        page = Page(40, 100)
        assert page.payload_bytes == 4000

    def test_negative_tuples_rejected(self):
        with pytest.raises(ExecutionError):
            Page(-1, 100)

    def test_empty_page_allowed(self):
        assert Page(0, 100).payload_bytes == 0


class TestPageAssembler:
    def test_emits_full_pages(self):
        assembler = PageAssembler(40, 100)
        pages = assembler.add(100.0)
        assert [p.tuples for p in pages] == [40, 40]
        assert assembler.flush()[0].tuples == 20

    def test_fractional_accumulation(self):
        assembler = PageAssembler(40, 100)
        emitted = []
        for _ in range(100):
            emitted.extend(assembler.add(0.5))  # 50 tuples total
        emitted.extend(assembler.flush())
        assert sum(p.tuples for p in emitted) == 50
        assert emitted[0].tuples == 40

    def test_flush_empty(self):
        assembler = PageAssembler(40, 100)
        assert assembler.flush() == []

    def test_flush_rounds_remainder(self):
        assembler = PageAssembler(40, 100)
        assembler.add(0.4)  # rounds down to zero tuples
        assert assembler.flush() == []
        assembler.add(0.6)
        flushed = assembler.flush()
        assert flushed[0].tuples == 1

    def test_total_emitted_tracks_everything(self):
        assembler = PageAssembler(40, 100)
        assembler.add(95.0)
        assembler.flush()
        assert assembler.total_emitted == 95

    def test_negative_contribution_rejected(self):
        assembler = PageAssembler(40, 100)
        with pytest.raises(ExecutionError):
            assembler.add(-1.0)

    def test_invalid_page_capacity(self):
        with pytest.raises(ExecutionError):
            PageAssembler(0, 100)
