"""Replacement policies: behaviour and byte-identical determinism."""

import random

import pytest

from repro.caching.policies import (
    POLICY_NAMES,
    ClockPolicy,
    LRUPolicy,
    MRUPolicy,
    make_policy,
)
from repro.errors import ConfigurationError


def key(i):
    return ("R", i)


class TestLRU:
    def test_evicts_least_recently_used(self):
        policy = LRUPolicy()
        for i in range(3):
            policy.admit(key(i))
        assert policy.evict() == key(0)
        assert policy.evict() == key(1)

    def test_touch_refreshes_recency(self):
        policy = LRUPolicy()
        for i in range(3):
            policy.admit(key(i))
        policy.touch(key(0))
        assert policy.evict() == key(1)

    def test_evict_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            LRUPolicy().evict()


class TestMRU:
    def test_evicts_most_recently_used(self):
        policy = MRUPolicy()
        for i in range(3):
            policy.admit(key(i))
        assert policy.evict() == key(2)

    def test_touch_marks_the_victim(self):
        policy = MRUPolicy()
        for i in range(3):
            policy.admit(key(i))
        policy.touch(key(0))
        assert policy.evict() == key(0)


class TestClock:
    def test_second_chance_spares_referenced_keys(self):
        policy = ClockPolicy()
        for i in range(3):
            policy.admit(key(i))
        # All reference bits are set: the first sweep clears 0..2, wraps,
        # and evicts key 0 -- FIFO when nothing was touched since admission.
        assert policy.evict() == key(0)

    def test_touched_key_survives_a_sweep(self):
        policy = ClockPolicy()
        for i in range(3):
            policy.admit(key(i))
        policy.evict()  # clears every bit, evicts key 0
        policy.touch(key(1))
        assert policy.evict() == key(2)

    def test_evict_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ClockPolicy().evict()


class TestFactory:
    def test_all_names_construct(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("arc")


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_eviction_sequence_is_deterministic(name):
    """Same reference stream, same policy => byte-identical victim order."""

    def run():
        policy = make_policy(name)
        rng = random.Random(17)
        resident = set()
        victims = []
        for _ in range(400):
            k = key(rng.randrange(40))
            if k in resident:
                policy.touch(k)
            else:
                if len(resident) >= 16:
                    victim = policy.evict()
                    resident.discard(victim)
                    victims.append(victim)
                policy.admit(k)
                resident.add(k)
        return victims

    first, second = run(), run()
    assert first == second
    assert len(first) > 0
