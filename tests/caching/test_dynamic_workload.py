"""Dynamic cache end to end: warm-up, parity, determinism, cache-aware plans."""

from dataclasses import replace

from repro import api
from repro.caching import CacheConfig
from repro.costmodel.model import Objective
from repro.obs import Tracer
from repro.optimizer.two_phase import RandomizedOptimizer
from repro.plans.policies import Policy
from repro.workload import StreamConfig, WorkloadRunner
from repro.workloads.scenarios import chain_scenario


def run_stream(policy="ds", cache=None, cached_fraction=0.0, queries=3, **kwargs):
    return api.run_workload(
        policy=policy,
        num_clients=1,
        arrival="closed",
        think_time=0.0,
        queries_per_client=queries,
        cached_fraction=cached_fraction,
        admission=None,
        seed=3,
        cache=cache,
        **kwargs,
    )


class TestWarmup:
    def test_ds_pages_shipped_monotone_non_increasing(self):
        result = run_stream(policy="ds", queries=3)
        pages = [s.pages_sent for s in result.sessions]
        assert pages == sorted(pages, reverse=True)
        assert pages[0] > 0  # the cold fault storm
        assert pages[-1] == 0  # fully warmed: everything on the client disk

    def test_resident_set_grows_and_persists_across_queries(self):
        result = run_stream(policy="ds", queries=2)
        first, second = result.sessions
        assert first.cache_resident_pages > 0
        assert second.cache_resident_pages >= first.cache_resident_pages
        assert second.pages_sent == 0

    def test_seeded_fraction_shrinks_the_fault_storm(self):
        cold = run_stream(policy="ds", cached_fraction=0.0, queries=1)
        seeded = run_stream(policy="ds", cached_fraction=0.6, queries=1)
        assert 0 < seeded.sessions[0].pages_sent < cold.sessions[0].pages_sent

    def test_faults_are_traced(self):
        tracer = Tracer()
        run_stream(policy="ds", queries=1, trace=tracer)
        fault_spans = [s for s in tracer.spans if s.cat == "cache"]
        assert len(fault_spans) > 0
        assert all(s.name.startswith("fault[") for s in fault_spans)

    def test_profile_reports_cache_counters(self):
        result = run_stream(policy="ds", queries=2)
        assert result.profile["site.client.cache.misses"] > 0
        assert result.profile["site.client.cache.hits"] > 0
        assert result.profile["site.client.cache.admissions"] > 0
        assert result.profile["site.client.cache.resident_pages"] > 0


class TestStaticParity:
    def test_capacity_zero_matches_the_uncached_static_run_exactly(self):
        """A dynamic cache that can hold nothing is the no-cache baseline:
        every access faults, nothing is admitted, and the simulated event
        stream -- hence every timing -- is identical."""
        static = run_stream(policy="ds", cache="static", queries=2)
        dynamic = run_stream(
            policy="ds",
            cache=CacheConfig(mode="dynamic", capacity_pages=0),
            queries=2,
        )
        assert dynamic.makespan == static.makespan
        assert dynamic.throughput == static.throughput
        static_times = [s.response_time for s in static.sessions]
        dynamic_times = [s.response_time for s in dynamic.sessions]
        assert dynamic_times == static_times
        assert [s.pages_sent for s in dynamic.sessions] == [
            s.pages_sent for s in static.sessions
        ]


class TestDeterminism:
    def test_identical_runs_are_byte_identical(self):
        """Sessions, profile counters, and eviction activity all repeat."""
        config = CacheConfig(mode="dynamic", capacity_pages=300, policy="mru")

        def run():
            scenario = chain_scenario(
                num_relations=2, num_servers=1, cached_fraction=0.5, placement_seed=3
            )
            return WorkloadRunner(
                scenario,
                Policy.DATA_SHIPPING,
                num_clients=1,
                stream=StreamConfig(
                    arrival="closed", think_time=0.0, queries_per_client=3
                ),
                seed=3,
                cache=config,
            ).run()

        first, second = run(), run()
        assert first.sessions == second.sessions
        assert first.profile == second.profile
        assert first.makespan == second.makespan
        # The undersized cache really did churn (evictions repeated too).
        assert first.profile["site.client.cache.evictions"] > 0


class TestCacheAwarePlanning:
    def test_hybrid_shifts_client_side_as_the_cache_warms(self):
        """Cold, pages-sent hybrid plans a server-side join; 60% resident
        tips every operator to the client (see examples/cache_warmup.py)."""
        from repro.caching import CacheState
        from repro.costmodel.model import EnvironmentState

        scenario = chain_scenario(
            num_relations=2, num_servers=1, cached_fraction=0.0, placement_seed=3
        )
        pages = {
            name: scenario.catalog.relation(name).pages(scenario.config)
            for name in scenario.query.relations
        }

        def plan_for(fraction):
            resident = tuple(
                (name, round(total * fraction))
                for name, total in sorted(pages.items())
                if round(total * fraction)
            )
            state = CacheState(
                capacity_pages=sum(pages.values()), resident=resident
            )
            environment = EnvironmentState(
                scenario.catalog,
                scenario.config,
                dict(scenario.server_loads),
                cache_state=state,
            )
            return RandomizedOptimizer(
                scenario.query,
                environment,
                policy=Policy.HYBRID_SHIPPING,
                objective=Objective.PAGES_SENT,
                seed=3,
                cache_digest=state.digest(),
            ).optimize().plan

        cold, warm = plan_for(0.0), plan_for(0.6)
        assert cold != warm
        assert "client" in repr(warm).lower()


class TestSingleQueryPath:
    def test_execute_reports_the_cache_state(self):
        """Scenario.execute under a dynamic config populates
        ExecutionResult.cache_state, and the session's faulted pages are
        resident afterwards."""
        scenario = chain_scenario(
            num_relations=2, num_servers=1, cached_fraction=0.0, placement_seed=3
        )
        scenario = replace(
            scenario, config=replace(scenario.config, cache=CacheConfig(mode="dynamic"))
        )
        plan = RandomizedOptimizer(
            scenario.query,
            scenario.environment(),
            policy=Policy.DATA_SHIPPING,
            seed=3,
        ).optimize().plan
        result = scenario.execute(plan, seed=3)
        assert result.cache_state is not None
        assert result.cache_state.total_resident > 0
        assert result.cache_state.misses > 0

    def test_static_config_reports_no_cache_state(self):
        scenario = chain_scenario(
            num_relations=2, num_servers=1, cached_fraction=0.5, placement_seed=3
        )
        plan = RandomizedOptimizer(
            scenario.query,
            scenario.environment(),
            policy=Policy.DATA_SHIPPING,
            seed=3,
        ).optimize().plan
        assert scenario.execute(plan, seed=3).cache_state is None
