"""CacheState equality and digests: admission order and invalidation."""

from repro.caching import BufferCache, CacheState
from repro.storage import ExtentAllocator


def make_cache(capacity=16):
    return BufferCache(ExtentAllocator(500), capacity)


class TestAdmissionOrder:
    def test_digest_ignores_admission_order(self):
        a = make_cache()
        for key in [("A", 0), ("A", 1), ("B", 0), ("B", 7)]:
            a.admit(*key)
        b = make_cache()
        for key in [("B", 7), ("A", 1), ("B", 0), ("A", 0)]:
            b.admit(*key)
        assert a.snapshot().digest() == b.snapshot().digest()
        # Identical counters too in this case, so full equality holds.
        assert a.snapshot() == b.snapshot()

    def test_digest_depends_on_resident_counts_not_history(self):
        # Same resident set reached through different hit/miss histories:
        # states differ (counters count), digests agree (contents key).
        a = make_cache()
        a.admit("A", 0)
        b = make_cache()
        b.lookup("A", 0)  # miss
        b.admit("A", 0)
        b.lookup("A", 0)  # hit
        assert a.snapshot() != b.snapshot()
        assert a.snapshot().digest() == b.snapshot().digest()

    def test_digest_distinguishes_capacity(self):
        a = make_cache(16)
        b = make_cache(8)
        a.admit("A", 0)
        b.admit("A", 0)
        assert a.snapshot().digest() != b.snapshot().digest()


class TestInvalidationResidency:
    def test_invalidation_shrinks_the_resident_set(self):
        cache = make_cache()
        for index in range(4):
            cache.admit("A", index)
        before = cache.snapshot()
        assert cache.invalidate("A", 2)
        after = cache.snapshot()
        assert after.resident_pages("A") == 3
        assert after.invalidations == 1
        assert before.digest() != after.digest()
        assert not cache.contains("A", 2)

    def test_invalidating_absent_page_is_a_counted_noop(self):
        cache = make_cache()
        cache.admit("A", 0)
        assert not cache.invalidate("A", 5)
        state = cache.snapshot()
        assert state.resident_pages("A") == 1
        assert state.invalidations == 0

    def test_readmission_restores_the_digest(self):
        # Invalidate then re-fault the same page: contents digest returns
        # to its old value (plan-cache keys converge again) even though the
        # invalidation stays visible in the state's counters.
        cache = make_cache()
        cache.admit("A", 0)
        cache.admit("A", 1)
        original = cache.snapshot()
        cache.invalidate("A", 1)
        cache.admit("A", 1, version=3)
        restored = cache.snapshot()
        assert restored.digest() == original.digest()
        assert restored != original  # invalidations counter moved
        assert cache.version_of("A", 1) == 3

    def test_freed_slot_is_reusable(self):
        # Invalidation must actually free the slot: a full cache can admit
        # a new page into the hole without evicting anything else.
        cache = make_cache(2)
        cache.admit("A", 0)
        cache.admit("A", 1)
        cache.invalidate("A", 0)
        assert cache.admit("B", 0) is not None
        assert cache.evictions == 0
        state = cache.snapshot()
        assert state.resident == (("A", 1), ("B", 1))
