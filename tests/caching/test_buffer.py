"""BufferCache unit tests: residency, capacity, seeding, snapshots."""

import random

import pytest

from repro.caching import BufferCache, CacheConfig, CacheState
from repro.errors import ConfigurationError
from repro.storage import ExtentAllocator


def make_cache(capacity, policy="lru", **kwargs):
    return BufferCache(ExtentAllocator(2000), capacity, policy=policy, **kwargs)


class TestResidency:
    def test_miss_then_admit_then_hit(self):
        cache = make_cache(8)
        assert cache.lookup("A", 0) is None
        assert cache.misses == 1
        page = cache.admit("A", 0)
        assert page is not None
        assert cache.lookup("A", 0) == page
        assert cache.hits == 1
        assert cache.admissions == 1

    def test_contains_does_not_count(self):
        cache = make_cache(8)
        cache.admit("A", 0)
        assert cache.contains("A", 0)
        assert not cache.contains("A", 1)
        assert cache.hits == 0 and cache.misses == 0

    def test_readmit_is_noop(self):
        cache = make_cache(8)
        first = cache.admit("A", 0)
        again = cache.admit("A", 0)
        assert again == first
        assert cache.admissions == 1

    def test_distinct_pages_get_distinct_disk_pages(self):
        cache = make_cache(8)
        pages = {cache.admit("A", i) for i in range(8)}
        assert len(pages) == 8


class TestCapacity:
    def test_lru_never_exceeds_capacity(self):
        """Property: under any reference stream, residency <= capacity."""
        cache = make_cache(16, policy="lru")
        rng = random.Random(3)
        for _ in range(1000):
            relation = rng.choice(("A", "B"))
            index = rng.randrange(50)
            if cache.lookup(relation, index) is None:
                cache.admit(relation, index)
            assert cache.resident_count <= 16
        assert cache.evictions > 0
        assert cache.resident_count == 16

    @pytest.mark.parametrize("policy", ("lru", "mru", "clock"))
    def test_eviction_log_matches_counters(self, policy):
        cache = make_cache(4, policy=policy)
        for i in range(10):
            cache.admit("A", i)
        assert cache.evictions == 6
        assert len(cache.eviction_log) == 6
        assert cache.resident_count == 4

    def test_capacity_zero_admits_nothing(self):
        cache = make_cache(0)
        assert cache.admit("A", 0) is None
        assert cache.lookup("A", 0) is None
        assert cache.resident_count == 0
        assert cache.admissions == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cache(-1)


class TestSeeding:
    def test_seed_populates_prefix_without_demand_counters(self):
        cache = make_cache(100)
        placed = cache.seed("A", 40)
        assert placed == 40
        assert cache.seeded == 40
        assert cache.admissions == 0
        assert cache.resident_pages("A") == 40
        assert cache.contains("A", 0) and cache.contains("A", 39)

    def test_seed_stops_at_capacity(self):
        cache = make_cache(10)
        assert cache.seed("A", 25) == 10
        assert cache.resident_count == 10
        assert cache.evictions == 0

    def test_seeded_prefix_is_contiguous_on_disk(self):
        cache = make_cache(50)
        cache.seed("A", 20)
        pages = [cache.lookup("A", i) for i in range(20)]
        assert pages == list(range(pages[0], pages[0] + 20))


class TestSnapshots:
    def test_snapshot_summarizes_per_relation(self):
        cache = make_cache(100)
        cache.seed("B", 10)
        cache.seed("A", 5)
        state = cache.snapshot()
        assert state.resident == (("A", 5), ("B", 10))
        assert state.total_resident == 15
        assert state.resident_pages("A") == 5
        assert state.resident_pages("missing") == 0

    def test_digest_ignores_counters(self):
        """Stable resident sets keep hitting the plan cache even as the
        hit/miss counters march on."""
        cache = make_cache(100)
        cache.seed("A", 10)
        before = cache.digest()
        cache.lookup("A", 0)
        cache.lookup("A", 99)  # miss
        assert cache.digest() == before
        cache.admit("A", 99)
        assert cache.digest() != before

    def test_state_equality_includes_counters(self):
        a = CacheState(capacity_pages=10, resident=(("A", 5),), hits=1)
        b = CacheState(capacity_pages=10, resident=(("A", 5),), hits=2)
        assert a != b
        assert a.digest() == b.digest()

    def test_identical_streams_identical_state_and_log(self):
        """Byte-identical determinism: state snapshot and eviction log."""

        def run():
            cache = make_cache(8, policy="clock")
            cache.seed("A", 4)
            rng = random.Random(7)
            for _ in range(200):
                relation = rng.choice(("A", "B"))
                index = rng.randrange(20)
                if cache.lookup(relation, index) is None:
                    cache.admit(relation, index)
            return cache.snapshot(), list(cache.eviction_log)

        (state1, log1), (state2, log2) = run(), run()
        assert state1 == state2
        assert log1 == log2
        assert len(log1) > 0


class TestConfig:
    def test_defaults_are_static(self):
        config = CacheConfig()
        assert config.mode == "static"
        assert not config.is_dynamic

    def test_dynamic_mode(self):
        assert CacheConfig(mode="dynamic").is_dynamic

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(mode="adaptive")

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(policy="arc")

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(capacity_pages=-5)
