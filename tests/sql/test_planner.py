"""Planner: name resolution, statistics defaults, and lowering to Query."""

import math

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.errors import SqlError
from repro.sql.parser import parse_sql
from repro.sql.planner import (
    DEFAULT_SELECTION_SELECTIVITY,
    DEFAULT_UDF_COST,
    DEFAULT_UDF_SELECTIVITY,
    plan_statement,
)


@pytest.fixture
def catalog() -> Catalog:
    return Catalog(
        [Relation("R0", 10_000), Relation("R1", 40_000), Relation("R2", 10_000)],
        Placement({"R0": 1, "R1": 1, "R2": 1}),
    )


def lower(sql: str, catalog: Catalog):
    return plan_statement(parse_sql(sql), catalog)


class TestLowering:
    def test_relations_follow_from_order(self, catalog):
        query = lower("SELECT * FROM R1, R0 WHERE R0.k = R1.k", catalog)
        assert query.relations == ("R1", "R0")

    def test_default_join_selectivity_is_one_over_larger_input(self, catalog):
        query = lower("SELECT * FROM R0, R1 WHERE R0.k = R1.k", catalog)
        assert query.predicates[0].selectivity == 1.0 / 40_000

    def test_declared_join_selectivity_wins(self, catalog):
        query = lower(
            "SELECT * FROM R0, R1 WHERE R0.k = R1.k SELECTIVITY 0.001", catalog
        )
        assert query.predicates[0].selectivity == 0.001

    def test_selections_multiply_per_relation(self, catalog):
        query = lower(
            "SELECT * FROM R0 WHERE R0.a < 1 AND R0.b < 2 SELECTIVITY 0.5", catalog
        )
        assert query.selections["R0"] == DEFAULT_SELECTION_SELECTIVITY * 0.5

    def test_udf_defaults(self, catalog):
        query = lower("SELECT * FROM R0 WHERE f(R0)", catalog)
        (udf,) = query.udfs
        assert udf.per_tuple_instructions == DEFAULT_UDF_COST
        assert udf.selectivity == DEFAULT_UDF_SELECTIVITY
        assert udf.site == "auto"

    def test_pinned_udf_site_survives_lowering(self, catalog):
        query = lower("SELECT * FROM R0 WHERE f(R0) AT SERVER", catalog)
        assert query.udfs[0].site == "server"

    def test_group_by_resolves_and_estimates_groups(self, catalog):
        query = lower(
            "SELECT R0.k, COUNT(*) FROM R0, R1 WHERE R0.k = R1.k GROUP BY R0.k",
            catalog,
        )
        assert query.aggregation is not None
        assert query.aggregation.group_by == ("R0.k",)
        assert query.aggregation.aggregates == ("COUNT(*)",)
        assert query.aggregation.groups == pytest.approx(math.sqrt(10_000))

    def test_unqualified_group_by_resolves_with_one_table(self, catalog):
        query = lower("SELECT k, COUNT(*) FROM R0 GROUP BY k", catalog)
        assert query.aggregation.group_by == ("R0.k",)

    def test_scalar_aggregate_has_one_group(self, catalog):
        query = lower("SELECT COUNT(*) FROM R0", catalog)
        assert query.aggregation.groups == 1.0


class TestSemiJoinPlanting:
    def test_low_participation_plants_reducers_on_both_sides(self, catalog):
        query = lower(
            "SELECT * FROM R0, R2 WHERE R0.k = R2.k SELECTIVITY 0.00002 SEMIJOIN",
            catalog,
        )
        planted = {semi.relation: semi for semi in query.semi_joins}
        assert set(planted) == {"R0", "R2"}
        assert planted["R0"].digest_of == "R2"
        assert planted["R0"].survivor_fraction == pytest.approx(0.2)

    def test_full_participation_plants_nothing(self, catalog):
        query = lower(
            "SELECT * FROM R0, R2 WHERE R0.k = R2.k SELECTIVITY 0.001 SEMIJOIN",
            catalog,
        )
        assert query.semi_joins == ()

    def test_without_the_keyword_no_reducers(self, catalog):
        query = lower(
            "SELECT * FROM R0, R2 WHERE R0.k = R2.k SELECTIVITY 0.00002", catalog
        )
        assert query.semi_joins == ()


class TestResolutionErrors:
    def test_unknown_table_names_itself_and_the_catalog(self, catalog):
        with pytest.raises(SqlError, match=r"unknown table 'Nope'") as info:
            lower("SELECT * FROM Nope", catalog)
        assert "R0" in str(info.value)  # catalog contents help the user
        assert info.value.line == 1

    def test_duplicate_table(self, catalog):
        with pytest.raises(SqlError, match="appears twice in FROM"):
            lower("SELECT * FROM R0, R0", catalog)

    def test_column_qualifier_outside_from_list(self, catalog):
        with pytest.raises(SqlError, match=r"R9\.k references 'R9'"):
            lower("SELECT R9.k FROM R0", catalog)

    def test_ambiguous_unqualified_column(self, catalog):
        with pytest.raises(SqlError, match="ambiguous"):
            lower("SELECT k FROM R0, R1 WHERE R0.k = R1.k", catalog)

    def test_self_join_rejected(self, catalog):
        with pytest.raises(SqlError, match="self-joins are not supported"):
            lower("SELECT * FROM R0 WHERE R0.a = R0.b", catalog)

    def test_udf_on_unlisted_relation(self, catalog):
        with pytest.raises(SqlError, match=r"f\(R9\) applies to 'R9'"):
            lower("SELECT * FROM R0 WHERE f(R9)", catalog)

    def test_error_position_spans_lines(self, catalog):
        with pytest.raises(SqlError) as info:
            lower("SELECT *\nFROM R0,\n     Nope", catalog)
        assert (info.value.line, info.value.column) == (3, 6)
