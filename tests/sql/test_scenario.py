"""sql_scenario: catalog synthesis and scenario wiring from SQL text."""

from repro.config import BufferAllocation
from repro.sql.parser import parse_sql
from repro.sql.scenario import sql_scenario


class TestSqlScenario:
    def test_tables_default_to_benchmark_shape(self):
        scenario = sql_scenario("SELECT * FROM Part, Supp WHERE Part.k = Supp.k")
        for name in ("Part", "Supp"):
            relation = scenario.catalog.relation(name)
            assert relation.tuples == 10_000
            assert relation.tuple_bytes == 100

    def test_cardinality_overrides(self):
        scenario = sql_scenario("SELECT * FROM Part", tables={"Part": 500})
        assert scenario.catalog.relation("Part").tuples == 500

    def test_accepts_a_parsed_statement(self):
        statement = parse_sql("SELECT * FROM R0")
        assert sql_scenario(statement).query.relations == ("R0",)

    def test_defaults_to_maximum_allocation(self):
        scenario = sql_scenario("SELECT * FROM R0")
        assert scenario.config.buffer_allocation is BufferAllocation.MAXIMUM

    def test_placement_is_seeded(self):
        sql = "SELECT * FROM A, B WHERE A.k = B.k"
        one = sql_scenario(sql, num_servers=2, placement_seed=1)
        same = sql_scenario(sql, num_servers=2, placement_seed=1)
        assert one.catalog.placement.assignments == same.catalog.placement.assignments

    def test_cached_fraction_applies_to_every_table(self):
        scenario = sql_scenario(
            "SELECT * FROM A, B WHERE A.k = B.k", cached_fraction=0.5
        )
        assert scenario.catalog.cache_fractions == {"A": 0.5, "B": 0.5}
