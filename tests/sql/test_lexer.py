"""Lexer: token kinds, keyword folding, and 1-based position tracking."""

import pytest

from repro.errors import SqlError
from repro.sql.lexer import tokenize


def kinds(sql):
    return [t.kind for t in tokenize(sql)]


def texts(sql):
    return [t.text for t in tokenize(sql)]


class TestTokenKinds:
    def test_simple_statement(self):
        assert kinds("SELECT * FROM R0") == [
            "keyword", "symbol", "keyword", "ident", "eof",
        ]

    def test_keywords_fold_to_upper(self):
        assert texts("select From wHeRe")[:3] == ["SELECT", "FROM", "WHERE"]

    def test_idents_keep_their_case(self):
        assert texts("SELECT Parts FROM Parts")[1] == "Parts"

    def test_numbers(self):
        assert texts("COST 2e4 SELECTIVITY 0.25") == [
            "COST", "2e4", "SELECTIVITY", "0.25", "",
        ]
        assert kinds("1 1.5 .5 2e-3")[:4] == ["number"] * 4

    def test_string_literal(self):
        tokens = tokenize("R.name = 'widget'")
        assert tokens[4].kind == "string"
        assert tokens[4].text == "widget"

    def test_two_char_operators_lex_whole(self):
        symbols = [t.text for t in tokenize("a <= b <> c") if t.kind == "symbol"]
        assert symbols == ["<=", "<>"]

    def test_line_comments_skipped(self):
        sql = "SELECT * -- everything\nFROM R0"
        assert texts(sql) == ["SELECT", "*", "FROM", "R0", ""]


class TestPositions:
    def test_columns_are_one_based(self):
        first = tokenize("SELECT x")[0]
        assert (first.line, first.column) == (1, 1)

    def test_newlines_advance_lines(self):
        tokens = tokenize("SELECT *\nFROM R0\nWHERE a = 1")
        where = next(t for t in tokens if t.text == "WHERE")
        assert (where.line, where.column) == (3, 1)
        literal = next(t for t in tokens if t.kind == "number")
        assert (literal.line, literal.column) == (3, 11)


class TestLexErrors:
    def test_unexpected_character_carries_position(self):
        with pytest.raises(SqlError) as info:
            tokenize("SELECT * FROM R0 WHERE a ; 1")
        assert info.value.line == 1
        assert info.value.column == 26
        assert "';'" in str(info.value)

    def test_unterminated_string(self):
        with pytest.raises(SqlError, match="unterminated string"):
            tokenize("R.name = 'widget")
