"""Parser: grammar coverage and positioned SqlError reporting."""

import pytest

from repro.errors import SqlError
from repro.sql.parser import parse_sql


class TestSelectList:
    def test_star(self):
        statement = parse_sql("SELECT * FROM R0")
        assert statement.star
        assert statement.columns == ()
        assert statement.table_names() == ("R0",)

    def test_columns_and_aggregates_mix(self):
        statement = parse_sql("SELECT R0.k, COUNT(*), SUM(R0.x) FROM R0")
        assert [str(c) for c in statement.columns] == ["R0.k"]
        assert [str(a) for a in statement.aggregates] == ["COUNT(*)", "SUM(R0.x)"]

    def test_unqualified_column(self):
        statement = parse_sql("SELECT k FROM R0")
        assert statement.columns[0].relation is None
        assert statement.columns[0].column == "k"


class TestWhereClause:
    def test_join_with_statistics(self):
        statement = parse_sql(
            "SELECT * FROM L, R WHERE L.k = R.k SELECTIVITY 0.001 SEMIJOIN"
        )
        (join,) = statement.joins
        assert (str(join.left), str(join.right)) == ("L.k", "R.k")
        assert join.selectivity == 0.001
        assert join.semijoin

    def test_join_defaults(self):
        (join,) = parse_sql("SELECT * FROM L, R WHERE L.k = R.k").joins
        assert join.selectivity is None
        assert not join.semijoin

    def test_selection(self):
        statement = parse_sql(
            "SELECT * FROM R0 WHERE R0.price < 100 SELECTIVITY 0.2"
        )
        (selection,) = statement.selections
        assert selection.operator == "<"
        assert selection.literal == "100"
        assert selection.selectivity == 0.2

    def test_string_literal_selection(self):
        (selection,) = parse_sql("SELECT * FROM R0 WHERE R0.name = 'x'").selections
        assert selection.literal == "x"

    def test_udf_with_all_clauses(self):
        statement = parse_sql(
            "SELECT * FROM R0 WHERE slow(R0) COST 20000 SELECTIVITY 0.25 AT CLIENT"
        )
        (udf,) = statement.udfs
        assert (udf.name, udf.relation) == ("slow", "R0")
        assert (udf.cost, udf.selectivity, udf.site) == (20000.0, 0.25, "client")

    def test_udf_defaults_to_auto(self):
        (udf,) = parse_sql("SELECT * FROM R0 WHERE f(R0)").udfs
        assert udf.cost is None
        assert udf.selectivity is None
        assert udf.site == "auto"

    def test_mixed_conjunction(self):
        statement = parse_sql(
            "SELECT * FROM L, R "
            "WHERE L.k = R.k AND L.price < 5 AND f(R) AT SERVER"
        )
        assert len(statement.joins) == 1
        assert len(statement.selections) == 1
        assert statement.udfs[0].site == "server"


class TestGroupBy:
    def test_group_by_columns(self):
        statement = parse_sql("SELECT R0.k, COUNT(*) FROM R0 GROUP BY R0.k")
        assert [str(c) for c in statement.group_by] == ["R0.k"]
        assert statement.has_aggregation

    def test_aggregates_without_group_by(self):
        assert parse_sql("SELECT COUNT(*) FROM R0").has_aggregation

    def test_plain_select_has_no_aggregation(self):
        assert not parse_sql("SELECT * FROM R0").has_aggregation


class TestParseErrors:
    def test_empty_statement(self):
        with pytest.raises(SqlError, match="empty SQL"):
            parse_sql("   ")

    def test_error_carries_line_and_column(self):
        with pytest.raises(SqlError) as info:
            parse_sql("SELECT *\nFRO R0")
        assert "expected FROM" in str(info.value)
        assert (info.value.line, info.value.column) == (2, 1)

    def test_error_names_the_offending_token(self):
        with pytest.raises(SqlError, match="near 'FRO'"):
            parse_sql("SELECT * FRO R0")

    def test_truncated_statement_reports_end_of_input(self):
        with pytest.raises(SqlError, match="at end of input"):
            parse_sql("SELECT * FROM")

    def test_non_equi_join_rejected_at_the_operator(self):
        with pytest.raises(SqlError) as info:
            parse_sql("SELECT * FROM L, R WHERE L.k < R.k")
        assert "only equi-joins" in str(info.value)
        assert (info.value.line, info.value.column) == (1, 30)

    def test_trailing_input_rejected(self):
        with pytest.raises(SqlError, match="trailing input"):
            parse_sql("SELECT * FROM R0 GROUP BY k extra")

    def test_at_requires_a_site(self):
        with pytest.raises(SqlError, match="expected CLIENT or SERVER"):
            parse_sql("SELECT * FROM R0 WHERE f(R0) AT nowhere")

    def test_selectivity_requires_a_number(self):
        with pytest.raises(SqlError, match="expected a number for SELECTIVITY"):
            parse_sql("SELECT * FROM L, R WHERE L.k = R.k SELECTIVITY high")
