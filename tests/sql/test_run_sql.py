"""End-to-end: SQL text through optimize, bind, and simulate."""

import pytest

from repro import api
from repro.errors import ConfigurationError, SqlError
from repro.plans.annotations import Annotation
from repro.plans.operators import AggregateOp, SemiJoinOp, UdfFilterOp

FULL_QUERY = (
    "SELECT R0.k, COUNT(*) FROM R0, R1 "
    "WHERE R0.k = R1.k SELECTIVITY 0.00002 SEMIJOIN AND slow(R0) COST 20000 "
    "GROUP BY R0.k"
)


class TestRunSql:
    @pytest.mark.parametrize("policy", ["data", "query", "hybrid"])
    def test_full_query_under_every_policy(self, policy):
        outcome = api.run_sql(FULL_QUERY, policy=policy, num_servers=2, seed=3)
        result = outcome.result
        assert result.response_time > 0.0
        kinds = {type(op) for op in outcome.plan.walk()}
        assert {AggregateOp, SemiJoinOp, UdfFilterOp} <= kinds
        # The hash group-by collapses the join result to its groups: far
        # fewer output tuples than the 10,000-tuple inputs.
        assert 0 < result.result_tuples <= 100

    def test_semijoin_cuts_shipped_pages(self):
        sql = "SELECT * FROM R0, R1 WHERE R0.k = R1.k SELECTIVITY 0.00002{semi}"
        plain = api.run_sql(sql.format(semi=""), policy="query", seed=3)
        reduced = api.run_sql(sql.format(semi=" SEMIJOIN"), policy="query", seed=3)
        assert reduced.result.pages_sent < plain.result.pages_sent

    def test_pinned_site_controls_shipped_volume(self):
        sql = "SELECT * FROM R0 WHERE f(R0)"  # selectivity defaults to 0.5
        server = api.run_sql(sql, policy="query", seed=3, udf_site="server")
        client = api.run_sql(sql, policy="query", seed=3, udf_site="client")
        # Server-side evaluation halves the stream before it is shipped.
        assert server.result.pages_sent * 2 == client.result.pages_sent

    def test_invalid_udf_site_rejected(self):
        with pytest.raises(ConfigurationError, match="udf_site"):
            api.run_sql("SELECT * FROM R0 WHERE f(R0)", udf_site="moon")

    def test_sql_errors_propagate_with_position(self):
        with pytest.raises(SqlError) as info:
            api.run_sql("SELECT * FRO R0")
        assert info.value.column == 10

    def test_predicted_metrics_populated(self):
        outcome = api.run_sql("SELECT * FROM R0", policy="query", seed=3)
        assert outcome.predicted.response_time > 0.0


class TestFunctionShippingFlip:
    """The optimizer's udf-site move reacts to the declared UDF cost."""

    @staticmethod
    def bound_udf_annotation(cost: float) -> Annotation:
        outcome = api.run_sql(
            f"SELECT * FROM R0 WHERE f(R0) COST {cost:g}", policy="query", seed=3
        )
        (udf,) = [op for op in outcome.plan.walk() if isinstance(op, UdfFilterOp)]
        return udf.annotation

    def test_free_udf_runs_at_the_server(self):
        # At cost ~0 the only effect of the UDF is halving the shipped
        # pages, so evaluating at the producing site wins.
        assert self.bound_udf_annotation(0.0) is Annotation.PRODUCER

    def test_expensive_udf_migrates_to_the_client(self):
        # The UDF's cpu serializes with the server's disk reads; at the
        # client it overlaps the transfer instead.
        assert self.bound_udf_annotation(128_000.0) is Annotation.CLIENT

    def test_optimizer_matches_the_better_pinned_arm(self):
        for cost in (0.0, 128_000.0):
            sql = f"SELECT * FROM R0 WHERE f(R0) COST {cost:g}"
            chosen = api.run_sql(sql, policy="query", seed=3)
            pinned = [
                api.run_sql(sql, policy="query", seed=3, udf_site=site)
                for site in ("client", "server")
            ]
            best = min(p.result.response_time for p in pinned)
            assert chosen.result.response_time <= best + 1e-9
