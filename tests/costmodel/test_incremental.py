"""Incremental cost evaluation: bit-identical to the naive walk, cheaper."""

import random

from repro.config import OptimizerConfig
from repro.costmodel.model import CostModel, Objective
from repro.optimizer import RandomizedOptimizer
from repro.optimizer.random_plans import random_plan
from repro.optimizer.space import random_neighbor
from repro.plans.policies import Policy
from repro.workloads.scenarios import chain_scenario


def _neighbor_chain(scenario, policy, seed, length):
    """A plan followed by a chain of random neighbours (shared subtrees)."""
    rng = random.Random(seed)
    plan = random_plan(scenario.query, policy, rng)
    plans = [plan]
    while len(plans) < length:
        neighbor = random_neighbor(plan, scenario.query, policy, rng)
        if neighbor is not None:
            plan = neighbor
            plans.append(plan)
    return plans


class TestBitIdentical:
    def test_matches_naive_walk_exactly(self):
        """Memoized evaluation must equal the full walk bit for bit."""
        scenario = chain_scenario(num_relations=4, num_servers=2, cached_fraction=0.5)
        environment = scenario.environment()
        incremental = CostModel(scenario.query, environment)
        naive = CostModel(scenario.query, environment, incremental=False)
        for policy in (Policy.DATA_SHIPPING, Policy.QUERY_SHIPPING, Policy.HYBRID_SHIPPING):
            for plan in _neighbor_chain(scenario, policy, seed=7, length=40):
                fast = incremental.evaluate(plan)
                slow = naive.evaluate(plan)
                cross = incremental.evaluate(plan, full_recompute=True)
                assert fast == slow
                assert cross == slow

    def test_env_var_disables_memoization(self, monkeypatch):
        monkeypatch.setenv("REPRO_COSTMODEL_FULL", "1")
        scenario = chain_scenario(num_relations=2)
        model = CostModel(scenario.query, scenario.environment())
        plan = random_plan(scenario.query, Policy.HYBRID_SHIPPING, random.Random(0))
        before = model.node_visits
        model.evaluate(plan)
        first = model.node_visits - before
        model.evaluate(plan)
        assert model.node_visits - before == 2 * first


class TestFewerVisits:
    def test_repeated_plan_is_free(self):
        scenario = chain_scenario(num_relations=3)
        model = CostModel(scenario.query, scenario.environment())
        plan = random_plan(scenario.query, Policy.HYBRID_SHIPPING, random.Random(1))
        model.evaluate(plan)
        visits = model.node_visits
        model.evaluate(plan)
        assert model.node_visits == visits

    def test_2po_run_visits_drop_at_least_30_percent(self):
        """The headline win: a full 2PO run touches far fewer cost nodes."""
        scenario = chain_scenario(num_relations=3, cached_fraction=0.5)
        visits = {}
        for incremental in (False, True):
            optimizer = RandomizedOptimizer(
                scenario.query,
                scenario.environment(),
                policy=Policy.HYBRID_SHIPPING,
                objective=Objective.RESPONSE_TIME,
                config=OptimizerConfig.fast(),
                seed=3,
            )
            optimizer.cost_model = CostModel(
                scenario.query, scenario.environment(), incremental=incremental
            )
            result = optimizer.optimize()
            visits[incremental] = optimizer.cost_model.node_visits
            assert result.evaluations > 0
        assert visits[True] <= 0.7 * visits[False]
