"""Stage graph and response-time machinery tests."""

import pytest

from repro.costmodel.tasks import ResourceVector, Stage, StageGraph, StreamContribution


class TestResourceVector:
    def test_accumulation(self):
        usage = ResourceVector()
        usage.add(("disk", 1), 2.0)
        usage.add(("disk", 1), 3.0)
        usage.add(("cpu", 0), 1.0)
        assert usage[("disk", 1)] == 5.0
        assert usage.bottleneck == 5.0
        assert usage.total == 6.0

    def test_zero_not_stored(self):
        usage = ResourceVector()
        usage.add(("disk", 1), 0.0)
        assert ("disk", 1) not in usage

    def test_merge(self):
        a, b = ResourceVector(), ResourceVector()
        a.add(("net", 0), 1.0)
        b.add(("net", 0), 2.0)
        b.add(("cpu", 1), 4.0)
        a.merge(b)
        assert a[("net", 0)] == 3.0
        assert a[("cpu", 1)] == 4.0

    def test_empty_bottleneck(self):
        assert ResourceVector().bottleneck == 0.0


class TestStage:
    def test_duration_is_max_of_latency_and_bottleneck(self):
        stage = Stage("s")
        stage.usage.add(("disk", 0), 2.0)
        stage.latency = 1.0
        assert stage.duration == 2.0
        stage.latency = 5.0
        assert stage.duration == 5.0


class TestStageGraph:
    def _stage(self, graph, name, disk, seconds, preds=()):
        stage = graph.new_stage(name)
        stage.usage.add(("disk", disk), seconds)
        stage.preds = list(preds)
        return stage

    def test_critical_path_chains(self):
        graph = StageGraph()
        a = self._stage(graph, "a", 1, 2.0)
        b = self._stage(graph, "b", 2, 3.0, [a])
        self._stage(graph, "c", 3, 1.0, [b])
        assert graph.critical_path() == pytest.approx(6.0)

    def test_independent_stages_overlap(self):
        graph = StageGraph()
        self._stage(graph, "a", 1, 2.0)
        self._stage(graph, "b", 2, 3.0)
        assert graph.critical_path() == pytest.approx(3.0)
        assert graph.response_time() == pytest.approx(3.0)

    def test_same_disk_stages_serialize_in_schedule(self):
        """Two independent stages on one disk cannot overlap."""
        graph = StageGraph()
        self._stage(graph, "a", 1, 2.0)
        self._stage(graph, "b", 1, 3.0)
        assert graph.critical_path() == pytest.approx(3.0)  # naive CP overlaps
        assert graph.scheduled_makespan() == pytest.approx(5.0)
        assert graph.response_time() == pytest.approx(5.0)

    def test_bottleneck_lower_bound(self):
        graph = StageGraph()
        for i in range(4):
            self._stage(graph, f"s{i}", 1, 1.0)
        assert graph.total_usage().bottleneck == pytest.approx(4.0)
        assert graph.response_time() >= 4.0

    def test_total_cost_sums_everything(self):
        graph = StageGraph()
        a = self._stage(graph, "a", 1, 2.0)
        a.usage.add(("cpu", 0), 0.5)
        self._stage(graph, "b", 2, 3.0)
        assert graph.total_cost() == pytest.approx(5.5)

    def test_empty_graph(self):
        graph = StageGraph()
        assert graph.response_time() == 0.0
        assert graph.total_cost() == 0.0

    def test_describe_lists_stages(self):
        graph = StageGraph()
        a = self._stage(graph, "build@1", 1, 2.0)
        self._stage(graph, "final", 0, 1.0, [a])
        text = graph.describe()
        assert "build@1" in text
        assert "preds=[build@1]" in text


class TestStreamContribution:
    def test_absorb(self):
        graph = StageGraph()
        pred = graph.new_stage("pred")
        a = StreamContribution()
        a.usage.add(("disk", 1), 1.0)
        a.latency = 0.5
        b = StreamContribution()
        b.usage.add(("disk", 1), 2.0)
        b.latency = 0.25
        b.preds.append(pred)
        b.spill_preds.append(pred)
        a.absorb(b)
        assert a.usage[("disk", 1)] == 3.0
        assert a.latency == 0.75
        assert a.preds == [pred]
        assert a.spill_preds == [pred]

    def test_into_stage_final_includes_spill_preds(self):
        graph = StageGraph()
        spill = graph.new_stage("spill")
        contribution = StreamContribution()
        contribution.spill_preds.append(spill)
        pipelined = contribution.into_stage(graph, "consumer")
        assert spill not in pipelined.preds
        final = contribution.into_stage(graph, "final", final=True)
        assert spill in final.preds
