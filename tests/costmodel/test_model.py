"""Cost model unit tests: metric behaviour and plan ranking."""

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.config import BufferAllocation, SystemConfig
from repro.costmodel import CostModel, EnvironmentState, Objective
from repro.plans import DisplayOp, JoinOp, JoinPredicate, Query, ScanOp
from repro.plans.annotations import Annotation

A = Annotation
MODERATE = 1e-4


def catalog_with(cache=None, num_servers=1):
    placement = {"A": 1, "B": 1 if num_servers == 1 else 2}
    return Catalog(
        [Relation("A", 10_000), Relation("B", 10_000)],
        Placement(placement),
        cache,
    )


def two_way_query():
    return Query(("A", "B"), (JoinPredicate("A", "B", MODERATE),))


def ds_plan():
    join = JoinOp(A.CONSUMER, inner=ScanOp(A.CLIENT, "A"), outer=ScanOp(A.CLIENT, "B"))
    return DisplayOp(A.CLIENT, child=join)


def qs_plan():
    join = JoinOp(
        A.INNER_RELATION, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "B")
    )
    return DisplayOp(A.CLIENT, child=join)


def hy_join_at_client_plan():
    join = JoinOp(
        A.CONSUMER, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "B")
    )
    return DisplayOp(A.CLIENT, child=join)


def model(cache=None, allocation=BufferAllocation.MINIMUM, loads=None):
    config = SystemConfig(num_servers=1, buffer_allocation=allocation)
    environment = EnvironmentState(catalog_with(cache), config, loads or {})
    return CostModel(two_way_query(), environment)


class TestPagesSent:
    def test_qs_ships_only_result(self):
        assert model().evaluate(qs_plan()).pages_sent == 250

    def test_ds_faults_everything_uncached(self):
        assert model().evaluate(ds_plan()).pages_sent == 500

    def test_ds_faults_only_missing(self):
        assert model({"A": 0.5, "B": 0.5}).evaluate(ds_plan()).pages_sent == 250

    def test_ds_fully_cached_sends_nothing(self):
        assert model({"A": 1.0, "B": 1.0}).evaluate(ds_plan()).pages_sent == 0

    def test_hybrid_ships_relations_and_nothing_else(self):
        assert model().evaluate(hy_join_at_client_plan()).pages_sent == 500


class TestResponseTimeRanking:
    """The orderings that drive the paper's figures (section 4.2)."""

    def test_min_alloc_qs_is_worst(self):
        cost_model = model()
        qs = cost_model.evaluate(qs_plan()).response_time
        ds = cost_model.evaluate(ds_plan()).response_time
        hy = cost_model.evaluate(hy_join_at_client_plan()).response_time
        assert qs > ds
        assert qs > hy

    def test_min_alloc_caching_hurts_ds(self):
        uncached = model().evaluate(ds_plan()).response_time
        cached = model({"A": 1.0, "B": 1.0}).evaluate(ds_plan()).response_time
        assert cached > uncached

    def test_min_alloc_hybrid_ignores_cache(self):
        plan = hy_join_at_client_plan()
        uncached = model().evaluate(plan).response_time
        cached = model({"A": 1.0, "B": 1.0}).evaluate(plan).response_time
        assert cached == pytest.approx(uncached, rel=0.01)

    def test_max_alloc_caching_helps_ds(self):
        uncached = model(allocation=BufferAllocation.MAXIMUM).evaluate(ds_plan())
        cached = model({"A": 1.0, "B": 1.0}, BufferAllocation.MAXIMUM).evaluate(ds_plan())
        assert cached.response_time < uncached.response_time

    def test_max_alloc_qs_beats_ds_uncached(self):
        cost_model = model(allocation=BufferAllocation.MAXIMUM)
        assert (
            cost_model.evaluate(qs_plan()).response_time
            < cost_model.evaluate(ds_plan()).response_time
        )

    def test_server_load_inflates_qs(self):
        unloaded = model().evaluate(qs_plan()).response_time
        loaded = model(loads={1: 60.0}).evaluate(qs_plan()).response_time
        assert loaded > 2.0 * unloaded

    def test_load_makes_cached_ds_attractive(self):
        """Figure 4's flip: at ~90% utilization caching helps DS."""
        loads = {1: 70.0}
        uncached = model(loads=loads).evaluate(ds_plan()).response_time
        cached = model({"A": 1.0, "B": 1.0}, loads=loads).evaluate(ds_plan()).response_time
        assert cached < uncached


class TestTotalCost:
    def test_total_cost_positive_and_exceeds_response(self):
        cost = model().evaluate(qs_plan())
        assert cost.total_cost > 0
        # Total cost sums all resources; response time overlaps them.
        assert cost.total_cost >= cost.response_time * 0.5

    def test_metric_tuples(self):
        cost = model().evaluate(qs_plan())
        assert cost.metric(Objective.PAGES_SENT)[0] == cost.pages_sent
        assert cost.metric(Objective.RESPONSE_TIME)[0] == cost.response_time
        assert cost.metric(Objective.TOTAL_COST)[0] == cost.total_cost


class TestEnvironmentState:
    def test_load_factor(self):
        environment = EnvironmentState(catalog_with(), SystemConfig())
        assert environment.load_factor(1) == 1.0
        loaded = EnvironmentState(catalog_with(), SystemConfig(), {1: 40.0})
        assert loaded.load_factor(1) == pytest.approx(1.0 / (1.0 - 40 * 0.0118))

    def test_load_factor_capped(self):
        overloaded = EnvironmentState(catalog_with(), SystemConfig(), {1: 1000.0})
        assert overloaded.load_factor(1) == pytest.approx(20.0)

    def test_evaluation_counter(self):
        cost_model = model()
        cost_model.evaluate(qs_plan())
        cost_model.evaluate(ds_plan())
        assert cost_model.evaluations == 2
