"""Cost model vs simulator agreement on canonical plans.

The paper's optimizer only needs estimates good enough to *rank* plans;
these tests pin (a) absolute agreement within a generous band on the
canonical 2-way plans, and (b) the rankings that decide every figure.
"""

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.config import BufferAllocation, SystemConfig
from repro.costmodel import CostModel, EnvironmentState
from repro.engine import QueryExecutor
from repro.plans import DisplayOp, JoinOp, JoinPredicate, Query, ScanOp
from repro.plans.annotations import Annotation

A = Annotation


def build(cache, allocation):
    config = SystemConfig(num_servers=1, buffer_allocation=allocation)
    catalog = Catalog(
        [Relation("A", 10_000), Relation("B", 10_000)],
        Placement({"A": 1, "B": 1}),
        {"A": cache, "B": cache} if cache else None,
    )
    query = Query(("A", "B"), (JoinPredicate("A", "B", 1e-4),))
    return config, catalog, query


def plans():
    return {
        "DS": DisplayOp(
            A.CLIENT,
            child=JoinOp(A.CONSUMER, inner=ScanOp(A.CLIENT, "A"), outer=ScanOp(A.CLIENT, "B")),
        ),
        "QS": DisplayOp(
            A.CLIENT,
            child=JoinOp(
                A.INNER_RELATION,
                inner=ScanOp(A.PRIMARY_COPY, "A"),
                outer=ScanOp(A.PRIMARY_COPY, "B"),
            ),
        ),
        "HYjc": DisplayOp(
            A.CLIENT,
            child=JoinOp(
                A.CONSUMER,
                inner=ScanOp(A.PRIMARY_COPY, "A"),
                outer=ScanOp(A.PRIMARY_COPY, "B"),
            ),
        ),
    }


@pytest.mark.parametrize("allocation", [BufferAllocation.MINIMUM, BufferAllocation.MAXIMUM])
@pytest.mark.parametrize("cache", [0.0, 0.5, 1.0])
def test_model_within_35_percent_of_simulator(cache, allocation):
    config, catalog, query = build(cache, allocation)
    model = CostModel(query, EnvironmentState(catalog, config))
    for name, plan in plans().items():
        predicted = model.evaluate(plan).response_time
        simulated = QueryExecutor(config, catalog, query, seed=1).execute(plan).response_time
        assert predicted == pytest.approx(simulated, rel=0.35), (
            f"{name} cache={cache} alloc={allocation}: "
            f"model {predicted:.2f}s vs sim {simulated:.2f}s"
        )


@pytest.mark.parametrize("cache", [0.0, 0.5, 1.0])
def test_model_ranks_min_alloc_plans_like_simulator(cache):
    config, catalog, query = build(cache, BufferAllocation.MINIMUM)
    model = CostModel(query, EnvironmentState(catalog, config))
    predicted = {}
    simulated = {}
    for name, plan in plans().items():
        predicted[name] = model.evaluate(plan).response_time
        simulated[name] = (
            QueryExecutor(config, catalog, query, seed=1).execute(plan).response_time
        )
    predicted_order = sorted(predicted, key=predicted.get)
    simulated_order = sorted(simulated, key=simulated.get)
    # The plan the model would choose must be near-optimal when simulated
    # (DS and HYjc genuinely tie at 0% cached, so exact winner can differ).
    chosen = predicted_order[0]
    assert simulated[chosen] <= min(simulated.values()) * 1.15
    # QS is the clear loser at minimum allocation in both views.
    assert predicted_order[-1] == "QS" == simulated_order[-1]


def test_model_pages_sent_matches_simulator_exactly():
    config, catalog, query = build(0.5, BufferAllocation.MINIMUM)
    model = CostModel(query, EnvironmentState(catalog, config))
    for name, plan in plans().items():
        predicted = model.evaluate(plan).pages_sent
        simulated = QueryExecutor(config, catalog, query, seed=1).execute(plan).pages_sent
        assert predicted == simulated, name
