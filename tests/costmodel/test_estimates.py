"""Cardinality and size estimation tests."""

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.config import SystemConfig
from repro.costmodel import Estimator
from repro.plans import DisplayOp, JoinOp, JoinPredicate, Query, ScanOp, SelectOp
from repro.plans.annotations import Annotation

A = Annotation
MODERATE = 1e-4


@pytest.fixture
def setup():
    relations = [Relation(n, 10_000) for n in ("A", "B", "C")]
    catalog = Catalog(relations, Placement({"A": 1, "B": 1, "C": 1}))
    query = Query(
        ("A", "B", "C"),
        (JoinPredicate("A", "B", MODERATE), JoinPredicate("B", "C", MODERATE)),
        selections={"C": 0.1},
    )
    return Estimator(query, catalog, SystemConfig()), query


def scan(name, annotation=A.PRIMARY_COPY):
    return ScanOp(annotation, name)


class TestCardinality:
    def test_scan(self, setup):
        estimator, _ = setup
        assert estimator.cardinality(scan("A")) == 10_000

    def test_moderate_join_preserves_cardinality(self, setup):
        estimator, _ = setup
        join = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("B"))
        assert estimator.cardinality(join) == pytest.approx(10_000)

    def test_chain_of_joins(self, setup):
        estimator, _ = setup
        lower = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("B"))
        upper = JoinOp(A.CONSUMER, inner=lower, outer=scan("C"))
        assert estimator.cardinality(upper) == pytest.approx(10_000)

    def test_cartesian_product(self, setup):
        estimator, _ = setup
        join = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("C"))
        assert estimator.is_cartesian(join)
        assert estimator.cardinality(join) == pytest.approx(1e8)

    def test_bushy_join_applies_crossing_edge_once(self, setup):
        estimator, _ = setup
        ab = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("B"))
        join = JoinOp(A.CONSUMER, inner=ab, outer=scan("C"))
        # |AB| = 10k, edge B-C crosses: 10k * 10k * 1e-4 = 10k.
        assert estimator.cardinality(join) == pytest.approx(10_000)

    def test_selection_scales_cardinality(self, setup):
        estimator, _ = setup
        select = SelectOp(A.PRODUCER, child=scan("C"), selectivity=0.1)
        assert estimator.cardinality(select) == pytest.approx(1_000)

    def test_display_passthrough(self, setup):
        estimator, _ = setup
        join = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("B"))
        plan = DisplayOp(A.CLIENT, child=join)
        assert estimator.cardinality(plan) == estimator.cardinality(join)

    def test_caching_by_identity(self, setup):
        estimator, _ = setup
        node = scan("A")
        assert estimator.cardinality(node) is not None
        assert id(node) in estimator._cardinality


class TestSizes:
    def test_paper_page_counts(self, setup):
        estimator, _ = setup
        assert estimator.pages(scan("A")) == 250
        join = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("B"))
        assert estimator.pages(join) == 250  # projected to 100-byte tuples

    def test_tuple_widths(self, setup):
        estimator, _ = setup
        assert estimator.tuple_bytes(scan("A")) == 100
        join = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("B"))
        assert estimator.tuple_bytes(join) == 100  # result projection

    def test_base_and_cached_pages(self):
        relations = [Relation("A", 10_000)]
        catalog = Catalog(relations, Placement({"A": 1}), {"A": 0.25})
        estimator = Estimator(Query(("A",)), catalog, SystemConfig())
        assert estimator.base_pages("A") == 250
        assert estimator.cached_pages("A") == 62
        assert estimator.missing_pages("A") == 188

    def test_tuples_per_page(self, setup):
        estimator, _ = setup
        assert estimator.tuples_per_page(scan("A")) == 40
