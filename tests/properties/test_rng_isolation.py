"""Seed-derivation hygiene: per-purpose child streams, no collisions.

Every source of randomness in a run (recovery backoff jitter, load
generators, client streams, fault injection) must draw from its own
``random.Random`` child keyed by ``(seed, purpose, identity)``.  Arithmetic
derivations like ``seed * K + id`` collide across purposes and neighbouring
ids, silently correlating what should be independent processes.
"""

import random

from repro.faults.recovery import RecoveryPolicy
from repro.faults.schedule import FaultSchedule
from repro.plans.policies import Policy
from repro.workload import StreamConfig, WorkloadRunner
from repro.workloads.scenarios import chain_scenario


def _fault_run(seed):
    scenario = chain_scenario(num_relations=2, cached_fraction=1.0, server_load=10.0)
    from repro.costmodel.model import Objective
    from repro.config import OptimizerConfig
    from repro.optimizer import RandomizedOptimizer

    plan = RandomizedOptimizer(
        scenario.query,
        scenario.environment(),
        policy=Policy.HYBRID_SHIPPING,
        objective=Objective.RESPONSE_TIME,
        config=OptimizerConfig.fast(),
        seed=seed,
    ).optimize().plan
    faults = FaultSchedule.periodic_crashes(1, mtbf=6.0, mttr=1.5, horizon=90.0, seed=seed)
    recovery = RecoveryPolicy(max_attempts=8, base_backoff=0.5, query_timeout=90.0)
    return scenario.execute(
        plan, seed=seed, faults=faults, recovery=recovery, policy=Policy.HYBRID_SHIPPING
    )


class TestRunDeterminism:
    def test_identical_fault_runs_are_byte_identical(self):
        """Backoff jitter and loadgen arrivals replay exactly under one seed."""
        first = _fault_run(3)
        second = _fault_run(3)
        assert repr(first) == repr(second)
        assert first.profile == second.profile

    def test_identical_workload_runs_are_byte_identical(self):
        def run():
            scenario = chain_scenario(num_relations=2, cached_fraction=0.75)
            return WorkloadRunner(
                scenario,
                Policy.DATA_SHIPPING,
                num_clients=3,
                stream=StreamConfig(arrival="closed", queries_per_client=2),
                seed=7,
            ).run()

        first, second = run(), run()
        assert repr(first.sessions) == repr(second.sessions)
        assert first.profile == second.profile


class TestSeedDerivation:
    def test_loadgen_streams_do_not_collide(self):
        """No (seed, site) pair shares a stream with another purpose or site."""
        draws = {
            random.Random(f"{seed}:loadgen:{site}").random()
            for seed in range(4)
            for site in range(1, 5)
        }
        assert len(draws) == 16

    def test_client_stream_seeds_do_not_collide(self):
        draws = {
            random.Random(f"{seed}:client{ordinal}:stream").random()
            for seed in range(4)
            for ordinal in range(8)
        }
        assert len(draws) == 32

    def test_client_streams_diverge_in_a_workload(self):
        """Open-arrival clients with one workload seed submit independently."""
        scenario = chain_scenario(num_relations=2, cached_fraction=1.0)
        result = WorkloadRunner(
            scenario,
            Policy.DATA_SHIPPING,
            num_clients=4,
            stream=StreamConfig(arrival="open", rate=2.0, queries_per_client=2),
            seed=3,
        ).run()
        submitted = {
            round(session.submitted, 9)
            for session in result.sessions
            if session.session_id.endswith("q0")
        }
        assert len(submitted) == 4
