"""Property-based tests over plans, moves, and binding (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Relation
from repro.optimizer import PlanShape, random_neighbor, random_plan
from repro.plans import (
    Policy,
    bind_plan,
    check_policy,
    is_well_formed,
    validate_plan,
)
from repro.plans.operators import JoinOp, ScanOp
from tests.conftest import make_chain

policies = st.sampled_from(list(Policy))
seeds = st.integers(min_value=0, max_value=2**31)
sizes = st.integers(min_value=1, max_value=8)


@st.composite
def query_and_catalog(draw):
    num_relations = draw(sizes)
    num_servers = draw(st.integers(min_value=1, max_value=num_relations))
    query = make_chain(num_relations)
    names = list(query.relations)
    rng = random.Random(draw(seeds))
    from repro.catalog import random_placement

    placement = random_placement(names, num_servers, rng)
    cache = {
        name: draw(st.sampled_from([0.0, 0.25, 0.5, 1.0])) for name in names
    }
    catalog = Catalog([Relation(n, 10_000) for n in names], placement, cache)
    return query, catalog


@given(query_and_catalog(), policies, seeds)
@settings(max_examples=60, deadline=None)
def test_random_plans_are_always_valid(setup, policy, seed):
    """Every generated plan validates, satisfies its policy, is
    well-formed, and binds to physical sites."""
    query, catalog = setup
    plan = random_plan(query, policy, random.Random(seed))
    validate_plan(plan, query)
    check_policy(plan, policy)
    assert is_well_formed(plan)
    bound = bind_plan(plan, catalog)
    for op in plan.walk():
        site = bound.site_of(op)
        assert 0 <= site <= len(catalog.placement.servers_used)


@given(query_and_catalog(), policies, seeds, st.integers(min_value=1, max_value=30))
@settings(max_examples=40, deadline=None)
def test_moves_preserve_all_invariants(setup, policy, seed, steps):
    """A random walk through the move space never leaves the legal space."""
    query, catalog = setup
    rng = random.Random(seed)
    plan = random_plan(query, policy, rng)
    for _ in range(steps):
        neighbor = random_neighbor(plan, query, policy, rng)
        if neighbor is None:
            break
        plan = neighbor
    validate_plan(plan, query)
    check_policy(plan, policy)
    assert is_well_formed(plan)
    bind_plan(plan, catalog)  # must not raise


@given(query_and_catalog(), seeds)
@settings(max_examples=40, deadline=None)
def test_moves_preserve_relation_set(setup, seed):
    """Join-order moves permute relations but never lose or duplicate."""
    query, _catalog = setup
    rng = random.Random(seed)
    plan = random_plan(query, Policy.HYBRID_SHIPPING, rng)
    expected = frozenset(query.relations)
    for _ in range(20):
        neighbor = random_neighbor(plan, query, Policy.HYBRID_SHIPPING, rng)
        if neighbor is None:
            break
        plan = neighbor
        assert plan.relations() == expected
        scans = [op for op in plan.walk() if isinstance(op, ScanOp)]
        assert len(scans) == len(expected)


@given(query_and_catalog(), seeds)
@settings(max_examples=30, deadline=None)
def test_deep_shape_closed_under_moves(setup, seed):
    query, _catalog = setup
    rng = random.Random(seed)
    from repro.optimizer.random_plans import is_deep

    plan = random_plan(query, Policy.HYBRID_SHIPPING, rng, PlanShape.DEEP)
    assert is_deep(plan.child)
    for _ in range(20):
        neighbor = random_neighbor(
            plan, query, Policy.HYBRID_SHIPPING, rng, shape=PlanShape.DEEP
        )
        if neighbor is None:
            break
        plan = neighbor
        assert is_deep(plan.child)


@given(query_and_catalog(), seeds)
@settings(max_examples=30, deadline=None)
def test_join_count_is_relations_minus_one(setup, seed):
    query, _catalog = setup
    plan = random_plan(query, Policy.HYBRID_SHIPPING, random.Random(seed))
    assert plan.count(JoinOp) == len(query.relations) - 1
