"""The simulator fast paths must be invisible in every simulated result.

Two properties gate the whole fast-path stack:

- **Batched transfers / virtual-clock booking off vs on**: running the
  Figure-2 grid with ``fastpath`` disabled (the page-at-a-time,
  event-cascade reference implementation, selectable at runtime with
  ``REPRO_SIM_FASTPATH=0``) must produce *identical* results -- response
  times, traffic counters, utilizations, profiles -- point for point.
- **Session memoization off vs on**: a memoized workload run (tapes
  replayed for repeat sessions) must produce a ``WorkloadResult`` equal
  to the plain simulated run, including the profile snapshot and the
  sampled telemetry series.
"""

import repro.sim.engine as engine_mod
from repro.config import BufferAllocation, OptimizerConfig
from repro.costmodel.model import Objective
from repro.obs.telemetry import TelemetryConfig
from repro.optimizer import RandomizedOptimizer
from repro.plans.policies import Policy
from repro.workload import AdmissionConfig, StreamConfig, WorkloadRunner
from repro.workloads.scenarios import chain_scenario

POLICIES = (Policy.DATA_SHIPPING, Policy.QUERY_SHIPPING, Policy.HYBRID_SHIPPING)
FRACTIONS = (0.0, 0.5, 1.0)
SEED = 3


def _figure2_grid_results():
    results = []
    for fraction in FRACTIONS:
        scenario = chain_scenario(
            num_relations=2,
            num_servers=1,
            allocation=BufferAllocation.MINIMUM,
            cached_fraction=fraction,
            placement_seed=SEED,
        )
        environment = scenario.environment()
        for policy in POLICIES:
            plan = RandomizedOptimizer(
                scenario.query,
                environment,
                policy=policy,
                objective=Objective.RESPONSE_TIME,
                config=OptimizerConfig.fast(),
                seed=SEED,
            ).optimize().plan
            results.append(scenario.execute(plan, seed=SEED))
    return results


def test_batched_transfers_identical_to_page_at_a_time(monkeypatch):
    fast = _figure2_grid_results()
    # The reference implementation: no virtual-clock booking, no flattened
    # sends, no raw-sleep shortcuts -- every hop is its own event cascade.
    monkeypatch.setattr(engine_mod, "_FASTPATH_DEFAULT", False)
    slow = _figure2_grid_results()
    assert len(fast) == len(slow) == len(FRACTIONS) * len(POLICIES)
    for fast_result, slow_result in zip(fast, slow):
        # Full dataclass equality: timings, counters, utilizations,
        # profile snapshot -- nothing may differ, not even in float bits.
        assert fast_result == slow_result


def _run_workload(memoize):
    scenario = chain_scenario(num_relations=2, num_servers=1, cached_fraction=0.5)
    runner = WorkloadRunner(
        scenario,
        Policy.HYBRID_SHIPPING,
        num_clients=4,
        stream=StreamConfig(arrival="closed", queries_per_client=3),
        admission=AdmissionConfig(max_concurrent=2, queue_limit=64),
        seed=SEED,
        telemetry=TelemetryConfig(interval=0.25),
        memoize=memoize,
    )
    return runner, runner.run()


def test_memoized_workload_identical_to_simulated():
    memo_runner, memo_result = _run_workload(memoize=True)
    plain_runner, plain_result = _run_workload(memoize=False)
    # The opt-out really opted out, and the memo really replayed.
    assert plain_runner.last_memo is None
    memo = memo_runner.last_memo
    assert memo is not None
    assert memo.replays > 0
    # Same seeds => identical WorkloadResult, down to the profile counters
    # and the sampled telemetry time series (frozen-dataclass equality).
    assert memo_result == plain_result
    # Steady state keeps the hardware hooks on the recorder-is-None path.
    assert memo_runner.last_topology.env.recorder is None
