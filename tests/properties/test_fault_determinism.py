"""Determinism properties of the fault-injection subsystem.

Two guarantees matter for reproducible experiments:

1. An *empty* fault schedule must be byte-identical to not passing one at
   all -- the recovery machinery may not perturb the event timeline of a
   fault-free run, for any policy.
2. The same seed and the same schedule must reproduce the same run,
   including every recovery decision (retries, replans, backoff jitter).
"""

import pytest

from repro import api
from repro.faults import FaultSchedule, RecoveryPolicy

POLICIES = ("data", "query", "hybrid")


def _result_fingerprint(result):
    return (
        result.response_time,
        result.pages_sent,
        result.control_messages,
        result.bytes_sent,
        result.result_tuples,
        result.result_pages,
        result.disk_reads,
        result.disk_writes,
        tuple(sorted(result.disk_utilizations.items())),
        tuple(sorted(result.cpu_utilizations.items())),
        result.network_utilization,
        result.retries,
        result.replans,
        result.wasted_work_pages,
        result.faults_seen,
        result.messages_dropped,
    )


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("seed", (0, 7))
def test_empty_schedule_is_byte_identical_to_seed_behavior(policy, seed):
    kwargs = dict(
        policy=policy, num_relations=2, num_servers=1,
        cached_fraction=0.5, seed=seed,
    )
    plain = api.run_query(**kwargs)
    empty = api.run_query(faults=FaultSchedule(), **kwargs)
    assert _result_fingerprint(plain.result) == _result_fingerprint(empty.result)


@pytest.mark.parametrize("policy", ("data", "hybrid"))
def test_same_seed_and_schedule_reproduce_the_run(policy):
    kwargs = dict(
        policy=policy, num_relations=2, num_servers=1, cached_fraction=1.0,
        faults=FaultSchedule.server_crash(1, at=0.2), seed=3,
    )
    first = api.run_query(**kwargs)
    second = api.run_query(**kwargs)
    assert _result_fingerprint(first.result) == _result_fingerprint(second.result)
    assert first.result.retries == second.result.retries
    assert first.result.replans == second.result.replans


def test_same_seed_reproduces_qs_wait_out_recovery():
    kwargs = dict(
        policy="query", num_relations=2, num_servers=1, cached_fraction=1.0,
        faults=FaultSchedule.server_crash(1, at=0.2, duration=1.0),
        recovery=RecoveryPolicy(max_attempts=8, base_backoff=0.5), seed=5,
    )
    first = api.run_query(**kwargs)
    second = api.run_query(**kwargs)
    assert _result_fingerprint(first.result) == _result_fingerprint(second.result)


def test_different_seeds_draw_different_periodic_schedules():
    a = FaultSchedule.periodic_crashes(1, mtbf=10.0, mttr=2.0, horizon=100.0, seed=1)
    b = FaultSchedule.periodic_crashes(1, mtbf=10.0, mttr=2.0, horizon=100.0, seed=2)
    assert a != b
