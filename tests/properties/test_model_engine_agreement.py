"""Cross-validation: the cost model and the engine must agree exactly on
communication volume for arbitrary legal plans.

Pages sent is a *deterministic* function of the bound plan (crossing edges
plus faulted pages), so any disagreement means one side mis-implements the
shipping rules.  Response time is also sanity-bounded (the model within a
factor band of the simulator).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Relation, random_placement
from repro.config import BufferAllocation, SystemConfig
from repro.costmodel import CostModel, EnvironmentState
from repro.engine import QueryExecutor
from repro.optimizer import random_plan
from repro.plans import Policy
from tests.conftest import make_chain

seeds = st.integers(min_value=0, max_value=2**31)


@st.composite
def execution_case(draw):
    num_relations = draw(st.integers(min_value=1, max_value=4))
    num_servers = draw(st.integers(min_value=1, max_value=num_relations))
    cache_level = draw(st.sampled_from([0.0, 0.5, 1.0]))
    allocation = draw(st.sampled_from(list(BufferAllocation)))
    policy = draw(st.sampled_from(list(Policy)))
    seed = draw(seeds)
    return num_relations, num_servers, cache_level, allocation, policy, seed


def _build(case):
    num_relations, num_servers, cache_level, allocation, policy, seed = case
    rng = random.Random(seed)
    query = make_chain(num_relations)
    names = list(query.relations)
    placement = random_placement(names, num_servers, rng)
    cache = {name: cache_level for name in names} if cache_level else {}
    catalog = Catalog([Relation(n, 10_000) for n in names], placement, cache)
    config = SystemConfig(num_servers=num_servers, buffer_allocation=allocation)
    plan = random_plan(query, policy, rng)
    return query, catalog, config, plan, seed


@given(execution_case())
@settings(max_examples=25, deadline=None)
def test_pages_sent_agrees_exactly(case):
    query, catalog, config, plan, seed = _build(case)
    model = CostModel(query, EnvironmentState(catalog, config))
    predicted = model.evaluate(plan).pages_sent
    simulated = QueryExecutor(config, catalog, query, seed=seed).execute(plan).pages_sent
    assert predicted == simulated


@given(execution_case())
@settings(max_examples=15, deadline=None)
def test_response_time_within_factor_band(case):
    """The model need only *rank* plans, but it should never be wildly off
    on arbitrary (not just optimized) plans.  The band is asymmetric: like
    the paper's model, ours "assumes costs can be fully overlapped" within
    a pipeline, so underestimates up to ~2.5x occur on adversarial plans,
    while overestimates stay tight."""
    query, catalog, config, plan, seed = _build(case)
    model = CostModel(query, EnvironmentState(catalog, config))
    predicted = model.evaluate(plan).response_time
    simulated = (
        QueryExecutor(config, catalog, query, seed=seed).execute(plan).response_time
    )
    assert predicted <= 2.0 * simulated
    assert predicted >= simulated / 3.0


@given(execution_case())
@settings(max_examples=15, deadline=None)
def test_result_cardinality_matches_estimate(case):
    """The engine's produced tuple count equals the estimator's prediction
    (exact statistics on these synthetic workloads)."""
    query, catalog, config, plan, seed = _build(case)
    from repro.costmodel import Estimator

    estimator = Estimator(query, catalog, config)
    expected = estimator.cardinality(plan)
    result = QueryExecutor(config, catalog, query, seed=seed).execute(plan)
    assert abs(result.result_tuples - expected) <= max(2, expected * 0.001)
