"""Property-based tests over the cost model and hybrid-hash arithmetic."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Relation, random_placement
from repro.config import (
    HYBRID_HASH_FUDGE_FACTOR,
    BufferAllocation,
    SystemConfig,
)
from repro.costmodel import CostModel, EnvironmentState
from repro.optimizer import random_plan
from repro.plans import Policy
from repro.storage.memory import (
    join_allocation,
    minimum_join_allocation,
    plan_hybrid_hash,
)
from tests.conftest import make_chain

seeds = st.integers(min_value=0, max_value=2**31)


@given(
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=2, max_value=6_000),
)
@settings(max_examples=200, deadline=None)
def test_hybrid_hash_plan_invariants(inner, outer, buffers):
    plan = plan_hybrid_hash(inner, outer, buffers)
    assert 0.0 <= plan.resident_fraction <= 1.0
    assert plan.spilled_inner_pages <= inner
    assert plan.spilled_outer_pages <= outer
    assert plan.temp_io_pages >= 0
    if buffers >= HYBRID_HASH_FUDGE_FACTOR * inner:
        assert plan.in_memory
    if plan.in_memory:
        assert plan.temp_io_pages == 0
    else:
        assert 1 <= plan.spill_partitions < buffers
        if buffers >= minimum_join_allocation(inner):
            # At or above Shapiro's minimum allocation, each spilled
            # partition fits in memory when reprocessed.  (Below it, real
            # systems would partition recursively -- out of scope, and the
            # engine never allocates below the minimum.)
            per_partition = plan.spilled_inner_pages / plan.spill_partitions
            assert per_partition * HYBRID_HASH_FUDGE_FACTOR <= buffers + 1


@given(st.integers(min_value=1, max_value=100_000))
@settings(max_examples=100, deadline=None)
def test_minimum_allocation_is_never_more_than_maximum(inner):
    assert join_allocation(inner, BufferAllocation.MINIMUM) <= join_allocation(
        inner, BufferAllocation.MAXIMUM
    )
    assert minimum_join_allocation(inner) >= 2


@st.composite
def evaluation_case(draw):
    num_relations = draw(st.integers(min_value=1, max_value=6))
    num_servers = draw(st.integers(min_value=1, max_value=num_relations))
    seed = draw(seeds)
    allocation = draw(st.sampled_from(list(BufferAllocation)))
    policy = draw(st.sampled_from(list(Policy)))
    return num_relations, num_servers, seed, allocation, policy


@given(evaluation_case())
@settings(max_examples=60, deadline=None)
def test_cost_model_outputs_are_sane(case):
    """Every legal plan gets finite, non-negative metrics, and response
    time never exceeds total cost (perfect-overlap lower bound)."""
    num_relations, num_servers, seed, allocation, policy = case
    rng = random.Random(seed)
    query = make_chain(num_relations)
    names = list(query.relations)
    placement = random_placement(names, num_servers, rng)
    catalog = Catalog([Relation(n, 10_000) for n in names], placement)
    config = SystemConfig(num_servers=num_servers, buffer_allocation=allocation)
    model = CostModel(query, EnvironmentState(catalog, config))
    plan = random_plan(query, policy, rng)
    cost = model.evaluate(plan)
    assert cost.pages_sent >= 0
    assert cost.total_cost > 0
    assert cost.response_time > 0
    assert cost.response_time <= cost.total_cost * 1.0000001


@given(evaluation_case())
@settings(max_examples=30, deadline=None)
def test_evaluation_is_deterministic(case):
    num_relations, num_servers, seed, allocation, policy = case
    rng = random.Random(seed)
    query = make_chain(num_relations)
    names = list(query.relations)
    placement = random_placement(names, num_servers, rng)
    catalog = Catalog([Relation(n, 10_000) for n in names], placement)
    config = SystemConfig(num_servers=num_servers, buffer_allocation=allocation)
    plan = random_plan(query, policy, rng)
    a = CostModel(query, EnvironmentState(catalog, config)).evaluate(plan)
    b = CostModel(query, EnvironmentState(catalog, config)).evaluate(plan)
    assert a == b


@given(st.integers(min_value=1, max_value=4), seeds)
@settings(max_examples=30, deadline=None)
def test_data_shipping_pages_equal_uncached_base_data(num_relations, seed):
    """DS must fault in exactly the uncached base pages, regardless of
    join order (a figure-2/6 invariant)."""
    rng = random.Random(seed)
    query = make_chain(num_relations)
    names = list(query.relations)
    placement = random_placement(names, 1, rng)
    catalog = Catalog([Relation(n, 10_000) for n in names], placement)
    config = SystemConfig(num_servers=1)
    model = CostModel(query, EnvironmentState(catalog, config))
    plan = random_plan(query, Policy.DATA_SHIPPING, rng)
    assert model.evaluate(plan).pages_sent == 250 * num_relations
