"""Determinism and contention properties of the workload subsystem."""


from repro.plans.policies import Policy
from repro.workload import AdmissionConfig, StreamConfig, WorkloadRunner
from repro.workloads.scenarios import chain_scenario


def build_runner(policy=Policy.QUERY_SHIPPING, num_clients=2, seed=7, **kwargs):
    scenario = chain_scenario(
        num_relations=2, num_servers=1, cached_fraction=0.5, placement_seed=seed
    )
    defaults = dict(
        stream=StreamConfig(arrival="open", rate=1.0, queries_per_client=2),
        admission=AdmissionConfig(max_concurrent=2, queue_limit=8),
        seed=seed,
    )
    defaults.update(kwargs)
    return WorkloadRunner(scenario, policy, num_clients=num_clients, **defaults)


class TestDeterminism:
    def test_same_seed_identical_results(self):
        first = build_runner().run()
        second = build_runner().run()
        assert first == second

    def test_same_seed_identical_closed_results(self):
        stream = StreamConfig(arrival="closed", think_time=2.0, queries_per_client=2)
        first = build_runner(stream=stream).run()
        second = build_runner(stream=stream).run()
        assert first == second

    def test_seed_changes_the_run(self):
        first = build_runner(seed=7).run()
        second = build_runner(seed=8).run()
        assert first != second

    def test_deterministic_with_faults(self):
        from repro.faults.recovery import RecoveryPolicy
        from repro.faults.schedule import FaultSchedule

        kwargs = dict(
            faults=FaultSchedule.server_crash(1, at=2.0, duration=3.0),
            recovery=RecoveryPolicy(max_attempts=5, base_backoff=0.5, query_timeout=300.0),
        )
        assert build_runner(**kwargs).run() == build_runner(**kwargs).run()


class TestContentionIsReal:
    """Interleaving two clients is not the same as running them serially."""

    def test_concurrent_response_times_exceed_solo(self):
        stream = StreamConfig(arrival="closed", think_time=0.0, queries_per_client=2)
        solo = build_runner(num_clients=1, stream=stream).run()
        crowd = build_runner(num_clients=4, stream=stream).run()
        assert crowd.mean_response_time > 1.2 * solo.mean_response_time

    def test_concurrent_makespan_beats_serial_sum(self):
        """Concurrency overlaps work: the 2-client makespan is shorter than
        two 1-client workloads run back to back, even under contention."""
        stream = StreamConfig(arrival="closed", think_time=0.0, queries_per_client=2)
        solo = build_runner(num_clients=1, stream=stream).run()
        duo = build_runner(num_clients=2, stream=stream).run()
        assert duo.makespan < 2.0 * solo.makespan
        assert duo.makespan > solo.makespan

    def test_sessions_overlap_in_time(self):
        stream = StreamConfig(arrival="closed", think_time=0.0, queries_per_client=2)
        result = build_runner(num_clients=2, stream=stream).run()
        spans = sorted(
            (s.submitted, s.completed)
            for s in result.sessions
            if s.status == "completed"
        )
        overlaps = any(
            later_start < earlier_end
            for (_, earlier_end), (later_start, _) in zip(spans, spans[1:])
        )
        assert overlaps
