"""Replica placement: validation, copy enumeration, deterministic drawing."""

import random

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.catalog.placement import random_placement, replicate_placement
from repro.errors import CatalogError


class TestPlacementValidation:
    def test_replicas_for_unknown_relation_rejected(self):
        with pytest.raises(CatalogError, match="unknown relation"):
            Placement({"A": 1}, {"B": (2,)})

    def test_primary_listed_as_replica_rejected(self):
        with pytest.raises(CatalogError, match="primary server"):
            Placement({"A": 1}, {"A": (1,)})

    def test_duplicate_replica_rejected(self):
        with pytest.raises(CatalogError, match="twice"):
            Placement({"A": 1}, {"A": (2, 2)})

    def test_client_site_as_replica_rejected(self):
        with pytest.raises(CatalogError, match="servers"):
            Placement({"A": 1}, {"A": (0,)})


class TestCopyEnumeration:
    def test_servers_of_lists_primary_first(self):
        placement = Placement({"A": 2}, {"A": (3, 1)})
        assert placement.servers_of("A") == (2, 3, 1)
        assert placement.server_of("A") == 2

    def test_unreplicated_relation_has_one_copy(self):
        placement = Placement({"A": 1})
        assert placement.servers_of("A") == (1,)
        assert not placement.is_replicated

    def test_relations_on_includes_replica_holders(self):
        placement = Placement({"A": 1, "B": 2}, {"A": (2,)})
        assert placement.relations_on(2) == ["A", "B"]
        assert placement.servers_used == {1, 2}
        assert placement.is_replicated

    def test_catalog_servers_of_follows_placement(self):
        catalog = Catalog(
            [Relation("A", 10_000), Relation("B", 10_000)],
            Placement({"A": 1, "B": 2}, {"B": (1,)}),
        )
        assert catalog.servers_of("A") == (1,)
        assert catalog.servers_of("B") == (2, 1)


class TestReplicatePlacement:
    def _base(self, num_servers=3):
        names = [f"R{i}" for i in range(6)]
        return random_placement(names, num_servers, random.Random(0))

    def test_factor_one_returns_placement_unchanged(self):
        placement = self._base()
        assert replicate_placement(placement, 1, 3, random.Random(0)) is placement

    def test_factor_beyond_servers_rejected(self):
        with pytest.raises(CatalogError, match="distinct copies"):
            replicate_placement(self._base(), 4, 3, random.Random(0))

    def test_factor_below_one_rejected(self):
        with pytest.raises(CatalogError):
            replicate_placement(self._base(), 0, 3, random.Random(0))

    def test_every_relation_gets_distinct_extra_copies(self):
        placement = replicate_placement(self._base(), 3, 3, random.Random(5))
        for relation in placement.assignments:
            copies = placement.servers_of(relation)
            assert len(copies) == 3
            assert len(set(copies)) == 3

    def test_drawing_is_deterministic_in_the_rng(self):
        a = replicate_placement(self._base(), 2, 3, random.Random(5))
        b = replicate_placement(self._base(), 2, 3, random.Random(5))
        c = replicate_placement(self._base(), 2, 3, random.Random(6))
        assert a.replicas == b.replicas
        assert a.replicas != c.replicas

    def test_primaries_survive_replication(self):
        base = self._base()
        replicated = replicate_placement(base, 2, 3, random.Random(5))
        assert replicated.assignments == base.assignments
