"""Unit tests for schemas, placement, and the catalog."""

import random

import pytest

from repro.catalog import Catalog, Placement, Relation, random_placement
from repro.config import SystemConfig
from repro.errors import CatalogError
from repro.hardware import Topology
from repro.sim import Environment


class TestRelation:
    def test_paper_page_count(self):
        relation = Relation("A", 10_000, 100)
        config = SystemConfig()
        assert relation.tuples_per_page(config) == 40
        assert relation.pages(config) == 250  # the paper's 250-page relations

    def test_partial_last_page(self):
        relation = Relation("A", 41, 100)
        assert relation.pages(SystemConfig()) == 2

    def test_empty_relation(self):
        assert Relation("A", 0).pages(SystemConfig()) == 0

    def test_invalid_relation(self):
        with pytest.raises(CatalogError):
            Relation("", 100)
        with pytest.raises(CatalogError):
            Relation("A", -1)
        with pytest.raises(CatalogError):
            Relation("A", 10, tuple_bytes=0)


class TestPlacement:
    def test_lookup(self):
        placement = Placement({"A": 1, "B": 2})
        assert placement.server_of("A") == 1
        assert placement.relations_on(2) == ["B"]
        assert placement.servers_used == {1, 2}

    def test_client_placement_rejected(self):
        with pytest.raises(CatalogError):
            Placement({"A": 0})

    def test_unknown_relation(self):
        with pytest.raises(CatalogError):
            Placement({}).server_of("A")


class TestRandomPlacement:
    def test_every_server_nonempty(self):
        names = [f"R{i}" for i in range(10)]
        for seed in range(20):
            placement = random_placement(names, 4, random.Random(seed))
            assert placement.servers_used == {1, 2, 3, 4}
            assert len(placement) == 10

    def test_more_servers_than_relations_rejected(self):
        with pytest.raises(CatalogError):
            random_placement(["A"], 2, random.Random(0))

    def test_deterministic_for_seed(self):
        names = [f"R{i}" for i in range(10)]
        a = random_placement(names, 3, random.Random(5))
        b = random_placement(names, 3, random.Random(5))
        assert a.assignments == b.assignments


class TestCatalog:
    def _catalog(self, cache=None):
        return Catalog(
            [Relation("A", 10_000), Relation("B", 10_000)],
            Placement({"A": 1, "B": 2}),
            cache,
        )

    def test_lookups(self):
        catalog = self._catalog({"A": 0.5})
        config = SystemConfig()
        assert catalog.relation_names == ["A", "B"]
        assert catalog.server_of("A") == 1
        assert catalog.pages_of("B", config) == 250
        assert catalog.cached_pages_of("A", config) == 125
        assert catalog.cached_pages_of("B", config) == 0

    def test_unknown_relation(self):
        with pytest.raises(CatalogError):
            self._catalog().relation("C")

    def test_placement_must_cover_all(self):
        with pytest.raises(CatalogError):
            Catalog([Relation("A", 10)], Placement({}))

    def test_placement_unknown_relation_rejected(self):
        with pytest.raises(CatalogError):
            Catalog([Relation("A", 10)], Placement({"A": 1, "B": 1}))

    def test_bad_cache_fraction(self):
        with pytest.raises(CatalogError):
            self._catalog({"A": 2.0})

    def test_cache_unknown_relation(self):
        with pytest.raises(CatalogError):
            self._catalog({"Z": 0.5})

    def test_install_on_topology(self):
        catalog = self._catalog({"A": 0.5})
        env = Environment()
        topology = Topology(env, SystemConfig(num_servers=2), seed=1)
        catalog.install(topology)
        assert topology.servers[0].stores("A")
        assert topology.servers[1].stores("B")
        assert topology.client.cache.cached_pages("A") == 125

    def test_install_needs_enough_servers(self):
        catalog = self._catalog()
        env = Environment()
        topology = Topology(env, SystemConfig(num_servers=1), seed=1)
        with pytest.raises(CatalogError):
            catalog.install(topology)

    def test_with_placement_and_cache(self):
        catalog = self._catalog()
        moved = catalog.with_placement(Placement({"A": 2, "B": 1}))
        assert moved.server_of("A") == 2
        cached = catalog.with_cache({"B": 1.0})
        assert cached.cached_fraction("B") == 1.0
        # original untouched
        assert catalog.server_of("A") == 1
        assert catalog.cached_fraction("B") == 0.0

    def test_duplicate_relation_rejected(self):
        with pytest.raises(CatalogError):
            Catalog(
                [Relation("A", 10), Relation("A", 10)],
                Placement({"A": 1}),
            )
