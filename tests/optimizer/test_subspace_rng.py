"""Per-pass RNG streams: the standalone-equivalence contract, pinned.

A hybrid optimization re-runs 2PO inside the pure data- and query-shipping
subspaces and keeps the overall best plan; its dominance over the pure
policies relies on each pure pass being *move-for-move identical* to a
standalone optimization of that policy with the same seed.  The optimizer
guarantees it by seeding every pass from a child generator keyed by
``(seed, pass policy)`` -- not by resetting one shared generator, which
would make the hybrid main pass replay the subspace passes' stream.
"""

import random

from repro.config import OptimizerConfig
from repro.costmodel.model import Objective
from repro.optimizer import RandomizedOptimizer
from repro.plans.policies import Policy
from repro.workloads.scenarios import chain_scenario


def _optimizer(scenario, policy, seed):
    return RandomizedOptimizer(
        scenario.query,
        scenario.environment(),
        policy=policy,
        objective=Objective.RESPONSE_TIME,
        config=OptimizerConfig.fast(),
        seed=seed,
    )


class TestStandaloneEquivalence:
    def test_hybrid_pure_pass_matches_standalone_run(self):
        """The hybrid run's QS/DS pass reproduces the standalone result."""
        scenario = chain_scenario(num_relations=3, cached_fraction=0.5)
        for pure in (Policy.QUERY_SHIPPING, Policy.DATA_SHIPPING):
            for seed in (3, 7, 11):
                standalone = _optimizer(scenario, pure, seed).optimize()
                hybrid = _optimizer(scenario, Policy.HYBRID_SHIPPING, seed)
                hybrid.rng = random.Random(f"{seed}:{pure.value}")
                plan, cost = hybrid._run_2po(pure)
                assert plan == standalone.plan
                assert cost == standalone.cost

    def test_pass_streams_are_independent(self):
        """Hybrid main pass and subspace passes draw from distinct streams."""
        seeds = {
            random.Random(f"3:{policy.value}").random()
            for policy in (
                Policy.HYBRID_SHIPPING,
                Policy.QUERY_SHIPPING,
                Policy.DATA_SHIPPING,
            )
        }
        assert len(seeds) == 3

    def test_hybrid_dominates_pure_policies(self):
        """The property the stream discipline exists to protect."""
        scenario = chain_scenario(num_relations=3, cached_fraction=0.5)
        for seed in (3, 7, 11, 13):
            results = {
                policy: _optimizer(scenario, policy, seed)
                .optimize()
                .cost.metric(Objective.RESPONSE_TIME)
                for policy in (
                    Policy.DATA_SHIPPING,
                    Policy.QUERY_SHIPPING,
                    Policy.HYBRID_SHIPPING,
                )
            }
            assert results[Policy.HYBRID_SHIPPING] <= results[Policy.DATA_SHIPPING]
            assert results[Policy.HYBRID_SHIPPING] <= results[Policy.QUERY_SHIPPING]

    def test_optimize_is_deterministic(self):
        scenario = chain_scenario(num_relations=3)
        first = _optimizer(scenario, Policy.HYBRID_SHIPPING, 5).optimize()
        second = _optimizer(scenario, Policy.HYBRID_SHIPPING, 5).optimize()
        assert first.plan == second.plan
        assert first.cost == second.cost
