"""Plan cache: semantic transparency, pass-level reuse, and invalidation."""

import pytest

from repro.config import OptimizerConfig
from repro.costmodel.model import Objective
from repro.optimizer import PlanCache, RandomizedOptimizer, plan_fingerprint
from repro.optimizer.random_plans import PlanShape, random_plan
from repro.plans.policies import Policy
from repro.workloads.scenarios import chain_scenario

import random

POLICIES = (Policy.DATA_SHIPPING, Policy.QUERY_SHIPPING, Policy.HYBRID_SHIPPING)
OBJECTIVES = (Objective.RESPONSE_TIME, Objective.PAGES_SENT)
SEEDS = (3, 7, 11)


def _optimize(scenario, policy, objective, seed, cache):
    return RandomizedOptimizer(
        scenario.query,
        scenario.environment(),
        policy=policy,
        objective=objective,
        config=OptimizerConfig.fast(),
        seed=seed,
        plan_cache=cache,
    ).optimize()


class TestTransparency:
    def test_cached_equals_uncached_across_grid(self):
        """Property: caching never changes the chosen plan or its cost."""
        scenario = chain_scenario(num_relations=3, cached_fraction=0.5)
        cache = PlanCache()
        for policy in POLICIES:
            for objective in OBJECTIVES:
                for seed in SEEDS:
                    plain = _optimize(scenario, policy, objective, seed, None)
                    warm = _optimize(scenario, policy, objective, seed, cache)
                    hit = _optimize(scenario, policy, objective, seed, cache)
                    assert warm.plan == plain.plan
                    assert warm.cost == plain.cost
                    assert hit.plan == plain.plan
                    assert hit.cost == plain.cost
        assert cache.stats.hits >= len(POLICIES) * len(OBJECTIVES) * len(SEEDS)

    def test_throughput_sweep_with_cache_matches_uncached(self):
        """A cached multi-client workload reproduces the uncached numbers."""
        from repro.experiments import throughput_sweep
        from repro.experiments.runner import RunSettings

        plain = throughput_sweep(RunSettings(seeds=(3,)), client_counts=(1, 2))
        cached = throughput_sweep(
            RunSettings(seeds=(3,), plan_cache=PlanCache()), client_counts=(1, 2)
        )
        assert cached.series == plain.series

    def test_full_run_hit_does_no_search(self):
        scenario = chain_scenario(num_relations=2)
        cache = PlanCache()
        _optimize(scenario, Policy.HYBRID_SHIPPING, Objective.RESPONSE_TIME, 3, cache)
        opt = RandomizedOptimizer(
            scenario.query,
            scenario.environment(),
            policy=Policy.HYBRID_SHIPPING,
            config=OptimizerConfig.fast(),
            seed=3,
            plan_cache=cache,
        )
        result = opt.optimize()
        assert opt.evaluations == 0
        assert result.evaluations == 0


class TestSubspaceReuse:
    def test_hybrid_reuses_pure_subspace_passes(self):
        """Standalone DS/QS passes pre-warm a hybrid run with the same seed."""
        scenario = chain_scenario(num_relations=2, cached_fraction=0.5)
        cache = PlanCache()
        _optimize(scenario, Policy.QUERY_SHIPPING, Objective.RESPONSE_TIME, 3, cache)
        _optimize(scenario, Policy.DATA_SHIPPING, Objective.RESPONSE_TIME, 3, cache)
        before = cache.stats.hits
        hybrid = _optimize(scenario, Policy.HYBRID_SHIPPING, Objective.RESPONSE_TIME, 3, cache)
        assert cache.stats.hits - before == 2
        plain = _optimize(scenario, Policy.HYBRID_SHIPPING, Objective.RESPONSE_TIME, 3, None)
        assert hybrid.plan == plain.plan
        assert hybrid.cost == plain.cost


class TestInvalidation:
    def test_forced_client_relations_change_the_key(self):
        """Replans around a crashed site never reuse the unconstrained plan."""
        scenario = chain_scenario(num_relations=2)
        environment = scenario.environment()
        config = OptimizerConfig.fast()
        relation = sorted(scenario.query.relations)[0]
        plain = plan_fingerprint(
            scenario.query, environment, Policy.HYBRID_SHIPPING,
            Objective.RESPONSE_TIME, config, 0, PlanShape.ANY, False, frozenset(),
        )
        constrained = plan_fingerprint(
            scenario.query, environment, Policy.HYBRID_SHIPPING,
            Objective.RESPONSE_TIME, config, 0, PlanShape.ANY, False,
            frozenset({relation}),
        )
        assert plain != constrained

    def test_environment_change_changes_the_key(self):
        config = OptimizerConfig.fast()
        cold = chain_scenario(num_relations=2, cached_fraction=0.0)
        warm = chain_scenario(num_relations=2, cached_fraction=0.5)
        keys = {
            plan_fingerprint(
                s.query, s.environment(), Policy.HYBRID_SHIPPING,
                Objective.RESPONSE_TIME, config, 0, PlanShape.ANY, False, frozenset(),
            )
            for s in (cold, warm)
        }
        assert len(keys) == 2

    def test_cache_digest_changes_the_key(self):
        """Per-client cache overrides look identical at the catalog level;
        the digest is what keeps their plans from cross-hitting."""
        scenario = chain_scenario(num_relations=2)
        environment = scenario.environment()
        config = OptimizerConfig.fast()
        args = (
            scenario.query, environment, Policy.HYBRID_SHIPPING,
            Objective.RESPONSE_TIME, config, 0, PlanShape.ANY, False, frozenset(),
        )
        keys = {
            plan_fingerprint(*args),
            plan_fingerprint(*args, cache_digest="override-a"),
            plan_fingerprint(*args, cache_digest="override-b"),
        }
        assert len(keys) == 3

    def test_dynamic_cache_state_changes_the_key(self):
        """A warming buffer cache stops stale plans from hitting."""
        from repro.caching import CacheState
        from repro.costmodel.model import EnvironmentState

        scenario = chain_scenario(num_relations=2)
        config = OptimizerConfig.fast()
        keys = set()
        for state in (
            None,
            CacheState(capacity_pages=500),
            CacheState(capacity_pages=500, resident=(("R0", 10),)),
        ):
            environment = EnvironmentState(
                scenario.catalog, scenario.config, {}, cache_state=state
            )
            keys.add(
                plan_fingerprint(
                    scenario.query, environment, Policy.HYBRID_SHIPPING,
                    Objective.RESPONSE_TIME, config, 0, PlanShape.ANY, False,
                    frozenset(),
                )
            )
        assert len(keys) == 3

    def test_counters_alone_do_not_change_the_key(self):
        """Plans depend on what is resident, not on the hit/miss history --
        a stream whose resident set stabilised keeps planning from cache."""
        from repro.caching import CacheState
        from repro.costmodel.model import EnvironmentState

        scenario = chain_scenario(num_relations=2)
        config = OptimizerConfig.fast()
        keys = set()
        for hits in (0, 100):
            state = CacheState(
                capacity_pages=500, resident=(("R0", 10),), hits=hits
            )
            environment = EnvironmentState(
                scenario.catalog, scenario.config, {}, cache_state=state
            )
            keys.add(
                plan_fingerprint(
                    scenario.query, environment, Policy.HYBRID_SHIPPING,
                    Objective.RESPONSE_TIME, config, 0, PlanShape.ANY, False,
                    frozenset(),
                )
            )
        assert len(keys) == 1

    def test_initial_plan_bypasses_the_cache(self):
        scenario = chain_scenario(num_relations=2)
        cache = PlanCache()
        start = random_plan(scenario.query, Policy.HYBRID_SHIPPING, random.Random(0))
        RandomizedOptimizer(
            scenario.query,
            scenario.environment(),
            config=OptimizerConfig.fast(),
            seed=0,
            initial_plan=start,
            plan_cache=cache,
        ).optimize()
        assert len(cache) == 0
        assert cache.stats.lookups == 0


class TestMechanics:
    def test_lru_bound(self):
        cache = PlanCache(max_entries=2)
        scenario = chain_scenario(num_relations=2)
        plan = _optimize(scenario, Policy.HYBRID_SHIPPING, Objective.RESPONSE_TIME, 0, None)
        for key in ("a", "b", "c"):
            cache.put(key, plan.plan, plan.cost)
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("c") is not None

    def test_stats_and_clear(self):
        cache = PlanCache()
        assert cache.get("missing") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.0)
        scenario = chain_scenario(num_relations=2)
        r = _optimize(scenario, Policy.DATA_SHIPPING, Objective.RESPONSE_TIME, 0, None)
        cache.put("k", r.plan, r.cost)
        assert cache.get("k") == (r.plan, r.cost)
        assert cache.stats.hit_rate == pytest.approx(0.5)
        cache.clear()
        assert len(cache) == 0
