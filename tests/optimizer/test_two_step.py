"""Static and 2-step optimization tests (section 5)."""

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.config import OptimizerConfig, SystemConfig
from repro.costmodel import CostModel, EnvironmentState, Objective
from repro.optimizer import PlanShape, RandomizedOptimizer, TwoStepOptimizer
from repro.optimizer.random_plans import is_deep
from repro.plans import JoinOp, Policy, bind_plan, validate_plan
from tests.conftest import make_chain


def _catalog(placement):
    names = sorted(placement)
    return Catalog([Relation(n, 10_000) for n in names], Placement(placement))


@pytest.fixture
def figure9_setup():
    """The paper's Figure 9: 4-way join, data migrates before run time."""
    query = make_chain(4)
    config = SystemConfig(num_servers=2)
    compile_env = EnvironmentState(
        _catalog({"R0": 1, "R1": 1, "R2": 2, "R3": 2}), config
    )
    runtime_env = EnvironmentState(
        _catalog({"R1": 1, "R2": 1, "R0": 2, "R3": 2}), config
    )
    return query, compile_env, runtime_env


class TestCompile:
    def test_compiled_plan_is_valid(self, figure9_setup):
        query, compile_env, _ = figure9_setup
        two_step = TwoStepOptimizer(Objective.PAGES_SENT, OptimizerConfig.fast())
        compiled = two_step.compile(query, compile_env, seed=1)
        validate_plan(compiled.plan, query)

    def test_deep_shape_respected(self, figure9_setup):
        query, compile_env, _ = figure9_setup
        two_step = TwoStepOptimizer(Objective.RESPONSE_TIME, OptimizerConfig.fast())
        compiled = two_step.compile(query, compile_env, shape=PlanShape.DEEP, seed=1)
        assert is_deep(compiled.plan.child)


class TestJoinOrderFrozen:
    def _order_signature(self, plan):
        return [
            (tuple(sorted(op.inner.relations())), tuple(sorted(op.outer.relations())))
            for op in plan.walk()
            if isinstance(op, JoinOp)
        ]

    def test_runtime_plan_keeps_compiled_join_order(self, figure9_setup):
        query, compile_env, runtime_env = figure9_setup
        two_step = TwoStepOptimizer(Objective.PAGES_SENT, OptimizerConfig.fast())
        compiled = two_step.compile(query, compile_env, seed=2)
        runtime = two_step.runtime_plan(compiled, runtime_env, seed=2)
        assert self._order_signature(runtime) == self._order_signature(compiled.plan)

    def test_runtime_plan_is_valid(self, figure9_setup):
        query, compile_env, runtime_env = figure9_setup
        two_step = TwoStepOptimizer(Objective.PAGES_SENT, OptimizerConfig.fast())
        compiled = two_step.compile(query, compile_env, seed=2)
        runtime = two_step.runtime_plan(compiled, runtime_env, seed=2)
        validate_plan(runtime, query)


class TestFigure9Ordering:
    """Migration penalty: static >= 2-step >= fully re-optimized ideal."""

    def test_communication_ordering(self, figure9_setup):
        query, compile_env, runtime_env = figure9_setup
        two_step = TwoStepOptimizer(Objective.PAGES_SENT, OptimizerConfig.fast())
        compiled = two_step.compile(query, compile_env, seed=5)
        runtime_model = CostModel(query, runtime_env)

        static_pages = runtime_model.evaluate(two_step.static_plan(compiled)).pages_sent
        two_step_pages = runtime_model.evaluate(
            two_step.runtime_plan(compiled, runtime_env, seed=5)
        ).pages_sent
        ideal = RandomizedOptimizer(
            query, runtime_env, Policy.HYBRID_SHIPPING, Objective.PAGES_SENT,
            OptimizerConfig.fast(), seed=5,
        ).optimize()

        assert two_step_pages <= static_pages
        assert ideal.cost.pages_sent <= two_step_pages

    def test_static_plan_still_optimal_without_migration(self, figure9_setup):
        """No migration: the static plan keeps its compile-time cost."""
        query, compile_env, _ = figure9_setup
        two_step = TwoStepOptimizer(Objective.PAGES_SENT, OptimizerConfig.fast())
        compiled = two_step.compile(query, compile_env, seed=5)
        model = CostModel(query, compile_env)
        static_pages = model.evaluate(two_step.static_plan(compiled)).pages_sent
        ideal = RandomizedOptimizer(
            query, compile_env, Policy.HYBRID_SHIPPING, Objective.PAGES_SENT,
            OptimizerConfig.fast(), seed=5,
        ).optimize()
        assert static_pages == pytest.approx(ideal.cost.pages_sent)


class TestBindingAdaptation:
    def test_static_plan_binds_to_new_servers(self, figure9_setup):
        """Logical annotations follow the data: a primary-copy scan binds
        to wherever the relation lives *now* (section 5)."""
        query, compile_env, runtime_env = figure9_setup
        two_step = TwoStepOptimizer(Objective.PAGES_SENT, OptimizerConfig.fast())
        compiled = two_step.compile(query, compile_env, seed=1)
        before = bind_plan(compiled.plan, compile_env.catalog)
        after = bind_plan(compiled.plan, runtime_env.catalog)
        from repro.plans.operators import ScanOp

        for op in compiled.plan.walk():
            if isinstance(op, ScanOp) and op.relation == "R0":
                assert before.site_of(op) in (0, 1)
                if op.annotation.value == "primary copy":
                    assert after.site_of(op) == 2
