"""Random plan generation tests."""

import random

import pytest

from repro.optimizer import PlanShape, random_plan
from repro.optimizer.random_plans import is_deep, random_join_tree
from repro.plans import JoinPredicate, Policy, Query, check_policy, validate_plan
from repro.plans.operators import JoinOp, ScanOp, SelectOp
from tests.conftest import make_chain


@pytest.fixture
def chain10():
    return make_chain(10)


class TestRandomPlan:
    @pytest.mark.parametrize("policy", list(Policy))
    def test_valid_and_policy_conformant(self, chain10, policy):
        for seed in range(10):
            plan = random_plan(chain10, policy, random.Random(seed))
            validate_plan(plan, chain10)
            check_policy(plan, policy)

    def test_avoids_cartesian_products_on_connected_graphs(self, chain10):
        rng = random.Random(0)
        for _ in range(20):
            plan = random_plan(chain10, Policy.HYBRID_SHIPPING, rng)
            for op in plan.walk():
                if isinstance(op, JoinOp):
                    crossing = chain10.predicates_between(
                        op.inner.relations(), op.outer.relations()
                    )
                    assert crossing, "random plan contains a Cartesian product"

    def test_deep_shape_constraint(self, chain10):
        rng = random.Random(1)
        for _ in range(10):
            plan = random_plan(chain10, Policy.HYBRID_SHIPPING, rng, PlanShape.DEEP)
            assert is_deep(plan.child)
            validate_plan(plan, chain10)

    def test_bushy_trees_occur_without_constraint(self, chain10):
        rng = random.Random(2)
        shapes = {is_deep(random_plan(chain10, Policy.HYBRID_SHIPPING, rng).child)
                  for _ in range(20)}
        assert False in shapes  # at least one bushy tree generated

    def test_single_relation_query(self):
        query = Query(("A",))
        plan = random_plan(query, Policy.DATA_SHIPPING, random.Random(0))
        validate_plan(plan, query)
        assert plan.count(JoinOp) == 0

    def test_selections_planned_above_scans(self):
        query = Query(
            ("A", "B"),
            (JoinPredicate("A", "B", 1e-4),),
            selections={"A": 0.3},
        )
        plan = random_plan(query, Policy.QUERY_SHIPPING, random.Random(0))
        selects = [op for op in plan.walk() if isinstance(op, SelectOp)]
        assert len(selects) == 1
        assert isinstance(selects[0].child, ScanOp)
        assert selects[0].child.relation == "A"
        assert selects[0].selectivity == 0.3

    def test_well_formed_despite_random_annotations(self, chain10):
        from repro.plans import is_well_formed

        rng = random.Random(3)
        for _ in range(50):
            assert is_well_formed(random_plan(chain10, Policy.HYBRID_SHIPPING, rng))

    def test_determinism(self, chain10):
        a = random_plan(chain10, Policy.HYBRID_SHIPPING, random.Random(7))
        b = random_plan(chain10, Policy.HYBRID_SHIPPING, random.Random(7))
        assert a == b


class TestRandomJoinTree:
    def test_all_relations_present(self, chain10):
        tree = random_join_tree(chain10, Policy.DATA_SHIPPING, random.Random(0))
        assert tree.relations() == frozenset(chain10.relations)

    def test_join_count(self, chain10):
        tree = random_join_tree(chain10, Policy.DATA_SHIPPING, random.Random(0))
        assert tree.count(JoinOp) == 9

    def test_disconnected_query_still_builds(self):
        query = Query(("A", "B", "C"), (JoinPredicate("A", "B", 1e-4),))
        tree = random_join_tree(query, Policy.DATA_SHIPPING, random.Random(0))
        assert tree.relations() == frozenset({"A", "B", "C"})
