"""Plan-cache fingerprints for SQL-planned queries.

Two guarantees: function-shipping features never alias in the cache (two
statements differing only in UDF placement or GROUP BY keys get distinct
fingerprints), and plain SPJ queries fingerprint exactly as they did
before the SQL frontend existed -- so the frontend cannot invalidate or
collide with the chain-join experiments' cached optimizations.
"""

from repro.config import OptimizerConfig
from repro.costmodel.model import Objective
from repro.optimizer.cache import PlanCache, plan_fingerprint
from repro.optimizer.random_plans import PlanShape
from repro.optimizer.two_phase import RandomizedOptimizer
from repro.plans.logical import JoinPredicate, Query
from repro.plans.policies import Policy
from repro.sql.scenario import sql_scenario


def fingerprint_of(sql: str) -> str:
    scenario = sql_scenario(sql, placement_seed=3)
    return plan_fingerprint(
        scenario.query,
        scenario.environment(),
        Policy.QUERY_SHIPPING,
        Objective.RESPONSE_TIME,
        OptimizerConfig.fast(),
        seed=3,
        shape=PlanShape.ANY,
        annotation_moves_only=False,
        forced_client_relations=frozenset(),
    )


class TestSqlFingerprints:
    def test_udf_placement_changes_the_key(self):
        template = "SELECT * FROM R0 WHERE f(R0) COST 20000{at}"
        prints = {
            fingerprint_of(template.format(at=at))
            for at in ("", " AT CLIENT", " AT SERVER")
        }
        assert len(prints) == 3

    def test_udf_cost_changes_the_key(self):
        assert fingerprint_of(
            "SELECT * FROM R0 WHERE f(R0) COST 0"
        ) != fingerprint_of("SELECT * FROM R0 WHERE f(R0) COST 20000")

    def test_group_by_keys_change_the_key(self):
        template = "SELECT {col}, COUNT(*) FROM R0 GROUP BY {col}"
        assert fingerprint_of(template.format(col="R0.a")) != fingerprint_of(
            template.format(col="R0.b")
        )

    def test_grouped_and_plain_statements_differ(self):
        assert fingerprint_of("SELECT COUNT(*) FROM R0") != fingerprint_of(
            "SELECT * FROM R0"
        )

    def test_semijoin_changes_the_key(self):
        template = "SELECT * FROM R0, R1 WHERE R0.k = R1.k SELECTIVITY 0.00002{semi}"
        assert fingerprint_of(template.format(semi="")) != fingerprint_of(
            template.format(semi=" SEMIJOIN")
        )

    def test_plain_spj_matches_a_hand_built_query(self):
        scenario = sql_scenario(
            "SELECT * FROM R0, R1 WHERE R0.k = R1.k SELECTIVITY 0.0001",
            placement_seed=3,
        )
        hand_built = Query(("R0", "R1"), (JoinPredicate("R0", "R1", 0.0001),))
        args = (
            scenario.environment(),
            Policy.QUERY_SHIPPING,
            Objective.RESPONSE_TIME,
            OptimizerConfig.fast(),
        )
        kwargs = dict(
            seed=3,
            shape=PlanShape.ANY,
            annotation_moves_only=False,
            forced_client_relations=frozenset(),
        )
        assert plan_fingerprint(scenario.query, *args, **kwargs) == plan_fingerprint(
            hand_built, *args, **kwargs
        )


class TestSqlPlanCaching:
    def test_cached_equals_uncached(self):
        sql = (
            "SELECT R0.k, COUNT(*) FROM R0, R1 "
            "WHERE R0.k = R1.k SELECTIVITY 0.00002 SEMIJOIN "
            "AND slow(R0) COST 20000 GROUP BY R0.k"
        )
        scenario = sql_scenario(sql, placement_seed=3)

        def optimize(plan_cache):
            optimizer = RandomizedOptimizer(
                scenario.query,
                scenario.environment(),
                policy=Policy.HYBRID_SHIPPING,
                seed=3,
                plan_cache=plan_cache,
            )
            return optimizer.optimize()

        uncached = optimize(None)
        cache = PlanCache()
        first = optimize(cache)
        second = optimize(cache)  # full-run hit
        assert cache.stats.hits > 0
        assert first.plan == uncached.plan == second.plan
        assert first.cost.response_time == uncached.cost.response_time
