"""Search-space move tests."""

import random

import pytest

from repro.optimizer import PlanShape, random_neighbor, random_plan
from repro.optimizer.random_plans import is_deep
from repro.optimizer.space import enumerate_candidates, has_cartesian_join
from repro.plans import (
    DisplayOp,
    JoinOp,
    Policy,
    ScanOp,
    check_policy,
    is_well_formed,
    validate_plan,
)
from repro.plans.annotations import Annotation
from tests.conftest import make_chain

A = Annotation


@pytest.fixture
def chain4():
    return make_chain(4)


def left_deep_plan(query, scan_annotation=A.CLIENT, join_annotation=A.CONSUMER):
    names = list(query.relations)
    tree = ScanOp(scan_annotation, names[0])
    for name in names[1:]:
        tree = JoinOp(join_annotation, inner=ScanOp(scan_annotation, name), outer=tree)
    return DisplayOp(A.CLIENT, child=tree)


class TestEnumerateCandidates:
    def test_data_shipping_has_only_reorder_moves(self, chain4):
        plan = left_deep_plan(chain4)
        candidates = enumerate_candidates(plan, Policy.DATA_SHIPPING)
        assert candidates
        assert all(kind == "reorder" for kind, _payload in candidates)

    def test_query_shipping_join_annotations_restricted(self, chain4):
        plan = left_deep_plan(chain4, A.PRIMARY_COPY, A.INNER_RELATION)
        candidates = enumerate_candidates(plan, Policy.QUERY_SHIPPING)
        annotations = {
            payload[1] for kind, payload in candidates if kind == "annotate"
        }
        # Never to the consumer's site (the paper's restriction of move 5).
        assert A.CONSUMER not in annotations
        assert A.OUTER_RELATION in annotations

    def test_annotation_moves_only_filter(self, chain4):
        plan = left_deep_plan(chain4, A.PRIMARY_COPY, A.INNER_RELATION)
        candidates = enumerate_candidates(
            plan, Policy.HYBRID_SHIPPING, annotation_moves_only=True
        )
        assert candidates
        assert all(kind == "annotate" for kind, _payload in candidates)

    def test_hybrid_has_both_kinds(self, chain4):
        plan = left_deep_plan(chain4)
        kinds = {kind for kind, _ in enumerate_candidates(plan, Policy.HYBRID_SHIPPING)}
        assert kinds == {"reorder", "annotate"}


class TestRandomNeighbor:
    @pytest.mark.parametrize("policy", list(Policy))
    def test_neighbors_stay_valid(self, chain4, policy):
        rng = random.Random(0)
        plan = random_plan(chain4, policy, rng)
        for _ in range(100):
            neighbor = random_neighbor(plan, chain4, policy, rng)
            if neighbor is None:
                continue
            validate_plan(neighbor, chain4)
            check_policy(neighbor, policy)
            assert is_well_formed(neighbor)
            plan = neighbor

    def test_reorder_moves_change_structure(self, chain4):
        rng = random.Random(1)
        plan = random_plan(chain4, Policy.DATA_SHIPPING, rng)
        structures = {plan.child}
        for _ in range(50):
            neighbor = random_neighbor(plan, chain4, Policy.DATA_SHIPPING, rng)
            if neighbor is not None:
                structures.add(neighbor.child)
                plan = neighbor
        assert len(structures) > 5  # the walk explores many join orders

    def test_deep_constraint_preserved(self, chain4):
        rng = random.Random(2)
        plan = random_plan(chain4, Policy.HYBRID_SHIPPING, rng, PlanShape.DEEP)
        for _ in range(100):
            neighbor = random_neighbor(
                plan, chain4, Policy.HYBRID_SHIPPING, rng, shape=PlanShape.DEEP
            )
            if neighbor is not None:
                assert is_deep(neighbor.child)
                plan = neighbor

    def test_never_introduces_cartesian(self, chain4):
        rng = random.Random(3)
        plan = random_plan(chain4, Policy.HYBRID_SHIPPING, rng)
        assert not has_cartesian_join(plan, chain4)
        for _ in range(200):
            neighbor = random_neighbor(plan, chain4, Policy.HYBRID_SHIPPING, rng)
            if neighbor is not None:
                assert not has_cartesian_join(neighbor, chain4)
                plan = neighbor

    def test_annotation_moves_preserve_join_order(self, chain4):
        def order_signature(root):
            return [
                (sorted(op.inner.relations()), sorted(op.outer.relations()))
                for op in root.walk()
                if isinstance(op, JoinOp)
            ]

        rng = random.Random(4)
        plan = random_plan(chain4, Policy.HYBRID_SHIPPING, rng)
        signature = order_signature(plan)
        for _ in range(50):
            neighbor = random_neighbor(
                plan, chain4, Policy.HYBRID_SHIPPING, rng, annotation_moves_only=True
            )
            if neighbor is not None:
                assert order_signature(neighbor) == signature
                plan = neighbor

    def test_two_way_ds_has_no_moves(self):
        query = make_chain(2)
        plan = left_deep_plan(query)
        assert random_neighbor(plan, query, Policy.DATA_SHIPPING, random.Random(0)) is None

    def test_original_plan_not_mutated(self, chain4):
        rng = random.Random(5)
        plan = random_plan(chain4, Policy.HYBRID_SHIPPING, rng)
        snapshot = plan
        for _ in range(20):
            random_neighbor(plan, chain4, Policy.HYBRID_SHIPPING, rng)
        assert plan == snapshot
