"""2PO optimizer tests, including validation against exhaustive search."""

import itertools

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.config import BufferAllocation, OptimizerConfig, SystemConfig
from repro.costmodel import CostModel, EnvironmentState, Objective
from repro.optimizer import RandomizedOptimizer, optimize
from repro.plans import (
    DisplayOp,
    JoinOp,
    Policy,
    ScanOp,
    check_policy,
    is_well_formed,
    validate_plan,
)
from repro.plans.annotations import Annotation
from tests.conftest import make_chain

A = Annotation


def environment(cache=None, num_servers=1, allocation=BufferAllocation.MINIMUM,
                num_relations=2, placement=None):
    config = SystemConfig(num_servers=num_servers, buffer_allocation=allocation)
    names = [f"R{i}" for i in range(num_relations)]
    placement = placement or {name: 1 + i % num_servers for i, name in enumerate(names)}
    catalog = Catalog(
        [Relation(name, 10_000) for name in names],
        Placement(placement),
        cache,
    )
    return EnvironmentState(catalog, config)


def exhaustive_two_way_optimum(query, env, objective):
    """Enumerate every 2-way plan in the hybrid space, return min metric."""
    model = CostModel(query, env)
    best = None
    names = query.relations
    for inner_name, outer_name in itertools.permutations(names, 2):
        for inner_ann in (A.CLIENT, A.PRIMARY_COPY):
            for outer_ann in (A.CLIENT, A.PRIMARY_COPY):
                for join_ann in (A.CONSUMER, A.INNER_RELATION, A.OUTER_RELATION):
                    join = JoinOp(
                        join_ann,
                        inner=ScanOp(inner_ann, inner_name),
                        outer=ScanOp(outer_ann, outer_name),
                    )
                    plan = DisplayOp(A.CLIENT, child=join)
                    if not is_well_formed(plan):
                        continue
                    metric = model.evaluate(plan).metric(objective)
                    if best is None or metric < best:
                        best = metric
    return best


class TestFindsOptimum:
    @pytest.mark.parametrize("objective", [Objective.RESPONSE_TIME, Objective.PAGES_SENT])
    @pytest.mark.parametrize("cache", [None, {"R0": 0.5, "R1": 0.5}, {"R0": 1.0, "R1": 1.0}])
    def test_two_way_matches_exhaustive(self, objective, cache):
        query = make_chain(2)
        env = environment(cache)
        best = exhaustive_two_way_optimum(query, env, objective)
        result = optimize(query, env, Policy.HYBRID_SHIPPING, objective,
                          OptimizerConfig.fast(), seed=11)
        assert result.cost.metric(objective)[0] == pytest.approx(best[0], rel=1e-9)


class TestPolicyConformance:
    @pytest.mark.parametrize("policy", list(Policy))
    def test_result_satisfies_policy(self, policy):
        query = make_chain(4)
        env = environment(num_servers=2, num_relations=4)
        result = optimize(query, env, policy, Objective.RESPONSE_TIME,
                          OptimizerConfig.fast(), seed=3)
        validate_plan(result.plan, query)
        check_policy(result.plan, policy)

    def test_ds_plan_runs_everything_at_client(self):
        query = make_chain(3)
        env = environment(num_servers=2, num_relations=3)
        result = optimize(query, env, Policy.DATA_SHIPPING, Objective.RESPONSE_TIME,
                          OptimizerConfig.fast(), seed=3)
        from repro.plans import bind_plan

        bound = bind_plan(result.plan, env.catalog)
        assert bound.sites_used() - {0} == set()  # only the client

    def test_qs_plan_never_uses_client_for_work(self):
        query = make_chain(3)
        env = environment(num_servers=2, num_relations=3)
        result = optimize(query, env, Policy.QUERY_SHIPPING, Objective.RESPONSE_TIME,
                          OptimizerConfig.fast(), seed=3)
        from repro.plans import bind_plan

        bound = bind_plan(result.plan, env.catalog)
        for op in result.plan.walk():
            if not isinstance(op, DisplayOp):
                assert bound.site_of(op) != 0


class TestHybridDominance:
    """Section 2.2.3: hybrid's space contains both pure spaces, so its
    optimized metric can never be worse than either pure policy's."""

    @pytest.mark.parametrize("objective", [Objective.RESPONSE_TIME, Objective.PAGES_SENT])
    @pytest.mark.parametrize("seed", [3, 7])
    def test_hybrid_at_least_matches_pure_policies(self, objective, seed):
        query = make_chain(5)
        env = environment(num_servers=3, num_relations=5)
        config = OptimizerConfig.fast()
        costs = {
            policy: optimize(query, env, policy, objective, config, seed=seed).cost
            for policy in Policy
        }
        hybrid = costs[Policy.HYBRID_SHIPPING].metric(objective)[0]
        assert hybrid <= costs[Policy.DATA_SHIPPING].metric(objective)[0] + 1e-9
        assert hybrid <= costs[Policy.QUERY_SHIPPING].metric(objective)[0] + 1e-9


class TestMechanics:
    def test_evaluations_counted(self):
        query = make_chain(3)
        env = environment(num_relations=3)
        optimizer = RandomizedOptimizer(query, env, config=OptimizerConfig.fast(), seed=1)
        result = optimizer.optimize()
        assert result.evaluations > 50
        assert result.evaluations == optimizer.evaluations

    def test_deterministic_for_seed(self):
        query = make_chain(4)
        env = environment(num_servers=2, num_relations=4)
        a = optimize(query, env, seed=9, config=OptimizerConfig.fast())
        b = optimize(query, env, seed=9, config=OptimizerConfig.fast())
        assert a.plan == b.plan
        assert a.cost == b.cost

    def test_initial_plan_respected(self):
        query = make_chain(2)
        env = environment()
        seed_plan = DisplayOp(
            A.CLIENT,
            child=JoinOp(
                A.CONSUMER, inner=ScanOp(A.CLIENT, "R0"), outer=ScanOp(A.CLIENT, "R1")
            ),
        )
        optimizer = RandomizedOptimizer(
            query, env, annotation_moves_only=True, initial_plan=seed_plan,
            config=OptimizerConfig.fast(), seed=1,
        )
        result = optimizer.optimize()
        # Join order is frozen; only annotations may differ.
        assert result.plan.child.inner.relation == "R0"
        assert result.plan.child.outer.relation == "R1"

    def test_single_relation_query(self):
        from repro.plans import Query

        query = Query(("R0",))
        env = environment(num_relations=1)
        result = optimize(query, env, config=OptimizerConfig.fast(), seed=1)
        validate_plan(result.plan, query)
