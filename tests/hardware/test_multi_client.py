"""Multi-client topologies: site ids, names, caches, catalog install."""

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.config import SystemConfig
from repro.errors import CatalogError, ConfigurationError
from repro.hardware import CLIENT_SITE_ID, Topology, client_site_id, is_client_site_id
from repro.hardware.site import SiteKind


@pytest.fixture
def catalog():
    return Catalog(
        [Relation("A", 10_000), Relation("B", 10_000)],
        Placement({"A": 1, "B": 1}),
        {"A": 0.5, "B": 0.5},
    )


class TestSiteIdScheme:
    def test_client_ordinals_map_to_non_positive_ids(self):
        assert client_site_id(0) == CLIENT_SITE_ID == 0
        assert client_site_id(1) == -1
        assert client_site_id(7) == -7

    def test_negative_ordinal_rejected(self):
        with pytest.raises(CatalogError):
            client_site_id(-1)

    def test_is_client_site_id(self):
        assert is_client_site_id(0)
        assert is_client_site_id(-3)
        assert not is_client_site_id(1)


class TestMultiClientTopology:
    def test_clients_and_servers(self, env):
        topology = Topology(env, SystemConfig(num_servers=2, num_clients=3), seed=1)
        assert [c.site_id for c in topology.clients] == [0, -1, -2]
        assert [s.site_id for s in topology.servers] == [1, 2]
        assert all(c.kind is SiteKind.CLIENT for c in topology.clients)

    def test_client_names(self, env):
        topology = Topology(env, SystemConfig(num_servers=1, num_clients=3), seed=1)
        assert [c.name for c in topology.clients] == ["client", "client1", "client2"]

    def test_client_property_is_first_client(self, env):
        topology = Topology(env, SystemConfig(num_servers=1, num_clients=2), seed=1)
        assert topology.client is topology.clients[0]

    def test_site_lookup_by_negative_id(self, env):
        topology = Topology(env, SystemConfig(num_servers=1, num_clients=2), seed=1)
        assert topology.site(-1) is topology.clients[1]
        assert topology.site(0) is topology.clients[0]
        assert topology.site(1) is topology.servers[0]

    def test_each_client_has_its_own_cache(self, env):
        topology = Topology(env, SystemConfig(num_servers=1, num_clients=2), seed=1)
        first, second = topology.clients
        assert first.cache is not None and second.cache is not None
        assert first.cache is not second.cache

    def test_sites_enumerates_clients_then_servers(self, env):
        topology = Topology(env, SystemConfig(num_servers=2, num_clients=2), seed=1)
        assert [s.site_id for s in topology.sites] == [0, -1, 1, 2]

    def test_single_client_default_unchanged(self, env):
        """num_clients defaults to 1 and keeps the historical site layout."""
        topology = Topology(env, SystemConfig(num_servers=3), seed=1)
        assert len(topology.clients) == 1
        assert topology.client.site_id == 0
        assert topology.client.name == "client"


class TestConfig:
    def test_zero_clients_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_clients=0)

    def test_with_clients(self):
        config = SystemConfig(num_servers=2).with_clients(4)
        assert config.num_clients == 4
        assert config.num_servers == 2


class TestCatalogInstall:
    def test_default_install_caches_every_client(self, env, catalog):
        topology = Topology(env, SystemConfig(num_servers=1, num_clients=2), seed=1)
        catalog.install(topology)
        for client in topology.clients:
            assert client.cache.cached_pages("A") > 0
            assert client.cache.cached_pages("B") > 0

    def test_per_client_cache_overrides(self, env, catalog):
        topology = Topology(env, SystemConfig(num_servers=1, num_clients=2), seed=1)
        catalog.install(topology, client_caches={-1: {"A": 1.0}})
        first, second = topology.clients
        # Client 0 keeps the catalog-level fractions.
        assert first.cache.cached_pages("A") > 0
        assert first.cache.cached_pages("B") > 0
        # Client -1 was overridden: all of A, none of B.
        entry = second.cache.lookup("A")
        assert entry is not None and entry.cached_pages == entry.total_pages
        assert second.cache.cached_pages("B") == 0

    def test_unknown_client_site_rejected(self, env, catalog):
        topology = Topology(env, SystemConfig(num_servers=1, num_clients=1), seed=1)
        with pytest.raises(CatalogError):
            catalog.install(topology, client_caches={-5: {"A": 1.0}})
