"""Multiple disks per site (the paper's NumDisks parameter)."""


from repro.catalog import Catalog, Placement, Relation
from repro.config import SystemConfig
from repro.engine import QueryExecutor
from repro.hardware import Topology
from repro.plans import DisplayOp, JoinOp, JoinPredicate, Query, ScanOp
from repro.plans.annotations import Annotation

A = Annotation


def test_relations_round_robin_across_disks(env):
    topology = Topology(env, SystemConfig(num_servers=1, num_disks=2), seed=1)
    server = topology.servers[0]
    server.store_relation("A", 250)
    server.store_relation("B", 250)
    disk_a, _ = server.relation_location("A")
    disk_b, _ = server.relation_location("B")
    assert {disk_a, disk_b} == {0, 1}


def test_two_disks_speed_up_colocated_scans():
    """Two relations on separate spindles scan in parallel."""
    query = Query(("A", "B"), (JoinPredicate("A", "B", 1e-4),))
    catalog = Catalog(
        [Relation("A", 10_000), Relation("B", 10_000)], Placement({"A": 1, "B": 1})
    )
    join = JoinOp(
        A.CONSUMER, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "B")
    )
    plan = DisplayOp(A.CLIENT, child=join)

    one = QueryExecutor(SystemConfig(num_servers=1, num_disks=1), catalog, query, seed=1)
    two = QueryExecutor(SystemConfig(num_servers=1, num_disks=2), catalog, query, seed=1)
    t_one = one.execute(plan).response_time
    t_two = two.execute(plan).response_time
    # The join (build then probe) serializes the two scans, so the benefit
    # is bounded; but the second spindle must not make things *worse*.
    assert t_two <= t_one * 1.02


def test_each_disk_has_own_allocator(env):
    topology = Topology(env, SystemConfig(num_servers=1, num_disks=2), seed=1)
    server = topology.servers[0]
    temp0 = server.allocate_temp(100, disk_index=0)
    temp1 = server.allocate_temp(100, disk_index=1)
    assert temp0.disk is server.disks[0]
    assert temp1.disk is server.disks[1]
    # Extents may overlap numerically; they live on different disks.
    temp0.release()
    temp1.release()
