"""Unit tests and calibration for the detailed disk model."""

import random

import pytest

from repro.config import DiskParams
from repro.hardware import Disk
from repro.sim import Environment


@pytest.fixture
def params() -> DiskParams:
    return DiskParams(sample_rotation=False)


def _read_pages(env, disk, pages):
    def reader():
        start = env.now
        for page in pages:
            yield disk.read(page)
        return env.now - start

    return env.run(until=env.process(reader()))


class TestGeometry:
    def test_cylinder_mapping(self, env, params):
        disk = Disk(env, params)
        per_cylinder = params.pages_per_cylinder
        assert disk.cylinder_of(0) == 0
        assert disk.cylinder_of(per_cylinder - 1) == 0
        assert disk.cylinder_of(per_cylinder) == 1

    def test_out_of_range_page_rejected(self, env, params):
        disk = Disk(env, params)
        with pytest.raises(ValueError):
            disk.read(params.capacity_pages)
        with pytest.raises(ValueError):
            disk.read(-1)

    def test_capacity(self, params):
        assert params.capacity_pages == (
            params.cylinders * params.tracks_per_cylinder * params.pages_per_track
        )


class TestServiceCosts:
    def test_sequential_cheaper_than_random(self, params):
        env1 = Environment()
        disk1 = Disk(env1, params, rng=random.Random(1))
        seq = _read_pages(env1, disk1, range(200)) / 200

        env2 = Environment()
        disk2 = Disk(env2, params, rng=random.Random(1))
        rng = random.Random(7)
        pages = [rng.randrange(params.capacity_pages) for _ in range(200)]
        rand = _read_pages(env2, disk2, pages) / 200
        assert rand > 2.5 * seq

    def test_controller_cache_hits_are_cheap(self, env, params):
        disk = Disk(env, params)

        def reader():
            yield disk.read(0)
            yield disk.read(1)  # sequential; prefetches rest of track
            before = env.now
            yield disk.read(2)  # prefetched -> cache hit
            return env.now - before

        hit_time = env.run(until=env.process(reader()))
        assert hit_time == pytest.approx(params.cache_hit_time)
        assert disk.cache_hits >= 1

    def test_write_refreshes_cache_copy(self, env, params):
        disk = Disk(env, params)

        def worker():
            yield disk.read(0)
            yield disk.read(1)
            yield disk.write(2)  # media updated; cache holds the new copy
            before = env.now
            yield disk.read(2)
            return env.now - before

        reread = env.run(until=env.process(worker()))
        assert reread == pytest.approx(params.cache_hit_time)

    def test_write_costs_media_time(self, env, params):
        disk = Disk(env, params)

        def worker():
            before = env.now
            yield disk.write(params.pages_per_cylinder * 500)
            return env.now - before

        elapsed = env.run(until=env.process(worker()))
        assert elapsed > params.transfer_time  # seek + rotation + transfer

    def test_interleaving_destroys_sequential_pattern(self, params):
        """Two interleaved scans cost far more than two back-to-back scans."""
        far = params.pages_per_cylinder * (params.cylinders // 2)

        def measure(pages):
            env = Environment()
            disk = Disk(env, params, rng=random.Random(3))
            return _read_pages(env, disk, pages)

        back_to_back = measure(list(range(100)) + list(range(far, far + 100)))
        interleaved_pages = [
            page for pair in zip(range(100), range(far, far + 100)) for page in pair
        ]
        interleaved = measure(interleaved_pages)
        assert interleaved > 2.0 * back_to_back


class TestElevator:
    def test_elevator_orders_by_cylinder(self, env, params):
        disk = Disk(env, params)
        order = []
        per_cyl = params.pages_per_cylinder
        # Current head is at cylinder 0; submit far, near, middle at once.
        for cylinder in (900, 10, 450):
            request = disk.submit("read", cylinder * per_cyl)
            request.done.callbacks.append(
                lambda _e, c=cylinder: order.append(c)
            )
        env.run()
        assert order == [10, 450, 900]

    def test_direction_reversal(self, env, params):
        disk = Disk(env, params)
        per_cyl = params.pages_per_cylinder
        served = []

        def submit_all():
            # Move the head up to cylinder 500 first.
            yield disk.read(500 * per_cyl)
            for cylinder in (600, 400, 700):
                request = disk.submit("read", cylinder * per_cyl)
                request.done.callbacks.append(
                    lambda _e, c=cylinder: served.append(c)
                )
            yield env.timeout(10.0)

        env.run(until=env.process(submit_all()))
        # Upward direction first (600, 700), then reverse to 400.
        assert served == [600, 700, 400]


class TestStatistics:
    def test_read_write_counters(self, env, params):
        disk = Disk(env, params)

        def worker():
            yield disk.read(0)
            yield disk.write(100)
            yield disk.write(101)

        env.run(until=env.process(worker()))
        assert disk.reads == 1
        assert disk.writes == 2

    def test_utilization_saturated(self, env, params):
        disk = Disk(env, params)

        def worker():
            for page in range(50):
                yield disk.read(page)

        env.run(until=env.process(worker()))
        assert disk.utilization() == pytest.approx(1.0, abs=0.01)


class TestCalibration:
    """The paper's disk averages: ~3.5 ms sequential, ~11.8 ms random."""

    def test_sequential_page_cost(self, params):
        env = Environment()
        disk = Disk(env, params, rng=random.Random(1))
        per_page = _read_pages(env, disk, range(250)) / 250
        assert per_page == pytest.approx(0.0035, rel=0.05)

    def test_random_page_cost(self):
        params = DiskParams(sample_rotation=True)
        env = Environment()
        disk = Disk(env, params, rng=random.Random(11))
        rng = random.Random(13)
        pages = [rng.randrange(params.capacity_pages) for _ in range(2000)]
        per_page = _read_pages(env, disk, pages) / 2000
        assert per_page == pytest.approx(0.0118, rel=0.05)
