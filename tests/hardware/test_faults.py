"""Fault hooks on the raw hardware models: disks, network, sites."""

import pytest

from repro.config import DiskParams, SystemConfig
from repro.errors import NetworkPartitionError, SiteUnavailableError
from repro.hardware import Disk
from repro.hardware.network import MAX_RETRANSMITS, Network
from repro.hardware.topology import Topology


@pytest.fixture
def disk(env):
    return Disk(env, DiskParams(sample_rotation=False))


class TestDiskPowerOff:
    def test_new_requests_fail_while_off(self, env, disk):
        disk.power_off(lambda: SiteUnavailableError("down"))
        request = disk.submit("read", 0)
        assert request.done.triggered and not request.done.ok
        assert disk.faulted_requests == 1

    def test_queued_requests_fail_on_power_off(self, env, disk):
        def reader():
            yield disk.read(0)

        def crasher():
            yield env.timeout(1e-4)  # mid-service of the first read
            disk.power_off(lambda: SiteUnavailableError("down"))

        process = env.process(reader())
        env.process(crasher())
        with pytest.raises(SiteUnavailableError):
            env.run(until=process)

    def test_power_on_serves_again(self, env, disk):
        disk.power_off()
        disk.power_on()

        def reader():
            yield disk.read(0)
            return env.now

        assert env.run(until=env.process(reader())) > 0.0

    def test_power_off_clears_controller_cache(self, env, disk):
        def reader(page):
            yield disk.read(page)

        env.run(until=env.process(reader(0)))
        assert disk._cache
        disk.power_off()
        assert not disk._cache
        assert disk._last_page is None

    def test_default_offline_error(self, env, disk):
        disk.power_off()
        request = disk.submit("read", 0)
        with pytest.raises(RuntimeError, match="powered off"):

            def waiter():
                yield request.done

            env.run(until=env.process(waiter()))

    def test_slow_factor_scales_service_time(self, env):
        def timed_read(disk):
            local_env = disk.env

            def reader():
                start = local_env.now
                yield disk.read(500)
                return local_env.now - start

            return local_env.run(until=local_env.process(reader()))

        from repro.sim import Environment

        normal = timed_read(Disk(Environment(), DiskParams(sample_rotation=False)))
        slow_disk = Disk(Environment(), DiskParams(sample_rotation=False))
        slow_disk.slow_factor = 5.0
        assert timed_read(slow_disk) == pytest.approx(5.0 * normal)


class TestNetworkFaults:
    @pytest.fixture
    def topology(self, env):
        return Topology(env, SystemConfig(num_servers=1))

    def test_send_fails_during_outage(self, env, topology):
        network = topology.network

        def sender():
            yield from network.send(topology.client, topology.site(1), 8192, data_pages=2)

        network.set_down()
        with pytest.raises(NetworkPartitionError, match="outage"):
            env.run(until=env.process(sender()))

    def test_send_fails_when_destination_crashed(self, env, topology):
        network = topology.network
        topology.site(1).crash()

        def sender():
            yield from network.send(topology.client, topology.site(1), 8192)

        with pytest.raises(SiteUnavailableError):
            env.run(until=env.process(sender()))

    def test_outage_mid_transfer_kills_in_flight_message(self, env, topology):
        network = topology.network

        def sender():
            yield from network.send(topology.client, topology.site(1), 4096, data_pages=1)

        def outage():
            yield env.timeout(1e-6)
            network.set_down()

        process = env.process(sender())
        env.process(outage())
        with pytest.raises(NetworkPartitionError):
            env.run(until=process)

    def test_degradation_multiplies_wire_time(self, env):
        def one_send(factor):
            from repro.sim import Environment

            local = Environment()
            topo = Topology(local, SystemConfig(num_servers=1))
            topo.network.degrade(factor)

            def sender():
                start = local.now
                yield from topo.network.send(topo.client, topo.site(1), 40960)
                return local.now - start

            return local.run(until=local.process(sender()))

        assert one_send(4.0) > 2.0 * one_send(1.0)

    def test_drops_retransmit_then_succeed(self, env, topology):
        network = topology.network

        class DropFirstTwo:
            def __init__(self):
                self.calls = 0

            def random(self):
                self.calls += 1
                return 0.0 if self.calls <= 2 else 1.0

        network.configure_drops(0.5, DropFirstTwo())

        def sender():
            yield from network.send(topology.client, topology.site(1), 4096, data_pages=1)

        env.run(until=env.process(sender()))
        assert network.messages_dropped == 2
        assert network.data_pages_sent == 1

    def test_always_dropping_link_gives_up(self, env, topology):
        network = topology.network

        class AlwaysDrop:
            def random(self):
                return 0.0

        network.configure_drops(0.99, AlwaysDrop())

        def sender():
            yield from network.send(topology.client, topology.site(1), 4096, data_pages=1)

        with pytest.raises(NetworkPartitionError, match="giving up"):
            env.run(until=env.process(sender()))
        assert network.messages_dropped == MAX_RETRANSMITS + 1


class TestSiteCrash:
    @pytest.fixture
    def topology(self, env):
        return Topology(env, SystemConfig(num_servers=1))

    def test_client_cannot_crash(self, env, topology):
        with pytest.raises(SiteUnavailableError, match="client"):
            topology.client.crash()

    def test_crash_and_restart_are_idempotent(self, env, topology):
        server = topology.site(1)
        server.restart()  # no-op while up
        server.crash()
        server.crash()  # no-op while down
        assert server.crash_count == 1
        server.restart()
        assert server.up

    def test_check_available_raises_with_site_id(self, env, topology):
        server = topology.site(1)
        server.crash()
        with pytest.raises(SiteUnavailableError) as excinfo:
            server.check_available()
        assert excinfo.value.site_id == 1
