"""Unit tests for sites and topology wiring."""

import pytest

from repro.config import SystemConfig
from repro.errors import CatalogError, ConfigurationError
from repro.hardware import SiteKind, Topology


@pytest.fixture
def topology(env):
    return Topology(env, SystemConfig(num_servers=3), seed=7)


class TestTopology:
    def test_one_client_n_servers(self, topology):
        assert topology.client.kind is SiteKind.CLIENT
        assert len(topology.servers) == 3
        assert all(s.kind is SiteKind.SERVER for s in topology.servers)

    def test_site_ids(self, topology):
        assert topology.client.site_id == 0
        assert [s.site_id for s in topology.servers] == [1, 2, 3]
        assert topology.site(0) is topology.client
        assert topology.site(2) is topology.servers[1]

    def test_unknown_site_rejected(self, topology):
        with pytest.raises(ConfigurationError):
            topology.site(99)

    def test_server_storing(self, topology):
        topology.servers[1].store_relation("R", 250)
        assert topology.server_storing("R") is topology.servers[1]
        with pytest.raises(ConfigurationError):
            topology.server_storing("missing")

    def test_disks_have_distinct_rngs(self, env):
        topology = Topology(env, SystemConfig(num_servers=2), seed=7)
        rngs = [site.disk.rng.random() for site in topology.sites]
        assert len(set(rngs)) == len(rngs)


class TestSiteStorage:
    def test_store_and_locate_relation(self, topology):
        server = topology.servers[0]
        extent = server.store_relation("A", 250)
        assert extent.pages == 250
        disk_index, located = server.relation_location("A")
        assert located == extent
        assert server.stores("A")
        assert server.stored_relations == ["A"]

    def test_client_cannot_store_primary(self, topology):
        with pytest.raises(CatalogError):
            topology.client.store_relation("A", 250)

    def test_duplicate_relation_rejected(self, topology):
        server = topology.servers[0]
        server.store_relation("A", 250)
        with pytest.raises(CatalogError):
            server.store_relation("A", 250)

    def test_unknown_relation_location(self, topology):
        with pytest.raises(CatalogError):
            topology.servers[0].relation_location("nope")

    def test_client_has_cache_servers_do_not(self, topology):
        assert topology.client.cache is not None
        assert all(server.cache is None for server in topology.servers)


class TestTempFiles:
    def test_allocate_and_release(self, topology):
        server = topology.servers[0]
        free_before = server.allocators[0].free_pages
        temp = server.allocate_temp(64)
        assert server.allocators[0].free_pages == free_before - 64
        temp.release()
        assert server.allocators[0].free_pages == free_before

    def test_release_is_idempotent(self, topology):
        temp = topology.client.allocate_temp(16)
        temp.release()
        temp.release()  # second release must not double-free

    def test_temp_page_addressing(self, topology):
        temp = topology.client.allocate_temp(8)
        assert temp.page(0) == temp.extent.start
        assert temp.page(7) == temp.extent.start + 7
        with pytest.raises(IndexError):
            temp.page(8)
