"""Unit tests for the network model."""

import pytest

from repro.config import SystemConfig
from repro.hardware import Topology


@pytest.fixture
def topology(env):
    return Topology(env, SystemConfig(num_servers=2), seed=1)


def test_page_wire_time(env, topology):
    network = topology.network
    config = topology.config

    def sender():
        yield from network.send_page(topology.servers[0], topology.client)

    env.run(until=env.process(sender()))
    wire = config.wire_time(config.page_size)
    cpu = 2 * config.instructions_time(config.message_cpu_instructions(config.page_size))
    assert env.now == pytest.approx(wire + cpu)


def test_page_counts_as_data(env, topology):
    network = topology.network

    def sender():
        yield from network.send_page(topology.servers[0], topology.client)
        yield from network.send_request(topology.client, topology.servers[1])

    env.run(until=env.process(sender()))
    assert network.data_pages_sent == 1
    assert network.control_messages_sent == 1
    assert network.bytes_sent == topology.config.page_size + topology.config.request_message_bytes


def test_local_sends_are_free(env, topology):
    network = topology.network

    def sender():
        yield from network.send_page(topology.client, topology.client)

    env.run(until=env.process(sender()))
    assert env.now == 0.0
    assert network.data_pages_sent == 0


def test_wire_is_fifo_shared(env, topology):
    network = topology.network
    finish = []

    def sender(name):
        yield from network.send_page(topology.servers[0], topology.client)
        finish.append((name, env.now))

    env.process(sender("a"))
    env.process(sender("b"))
    env.run()
    # Second message's wire time queues behind the first (plus CPU FIFO).
    assert finish[0][1] < finish[1][1]


def test_reset_counters(env, topology):
    network = topology.network

    def sender():
        yield from network.send_page(topology.servers[0], topology.client)

    env.run(until=env.process(sender()))
    network.reset_counters()
    assert network.data_pages_sent == 0
    assert network.bytes_sent == 0


def test_utilization(env, topology):
    network = topology.network
    config = topology.config

    def sender():
        for _ in range(3):
            yield from network.send_page(topology.servers[0], topology.client)

    env.run(until=env.process(sender()))
    wire_total = 3 * config.wire_time(config.page_size)
    assert network.utilization() == pytest.approx(wire_total / env.now)
