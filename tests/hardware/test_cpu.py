"""Unit tests for the CPU model."""

import pytest

from repro.hardware import CPU
from repro.sim import Environment


def test_instruction_timing(env):
    cpu = CPU(env, mips=50.0)

    def worker():
        yield from cpu.execute(5000)  # DiskInst at 50 MIPS = 0.1 ms

    env.run(until=env.process(worker()))
    assert env.now == pytest.approx(1e-4)


def test_fifo_queueing(env):
    cpu = CPU(env, mips=1.0)  # 1 instruction per microsecond
    finish = {}

    def worker(name, instructions):
        yield from cpu.execute(instructions)
        finish[name] = env.now

    env.process(worker("a", 1_000_000))  # 1 s
    env.process(worker("b", 2_000_000))  # 2 s, queued behind a
    env.run()
    assert finish["a"] == pytest.approx(1.0)
    assert finish["b"] == pytest.approx(3.0)


def test_zero_instructions_free(env):
    cpu = CPU(env, mips=50.0)

    def worker():
        yield from cpu.execute(0)

    env.run(until=env.process(worker()))
    assert env.now == 0.0


def test_negative_instructions_rejected(env):
    cpu = CPU(env, mips=50.0)

    def worker():
        yield from cpu.execute(-1)

    with pytest.raises(ValueError):
        env.run(until=env.process(worker()))


def test_invalid_mips():
    with pytest.raises(ValueError):
        CPU(Environment(), mips=0.0)


def test_utilization_and_counter(env):
    cpu = CPU(env, mips=1.0)

    def worker():
        yield from cpu.execute(1_000_000)
        yield env.timeout(1.0)

    env.run(until=env.process(worker()))
    assert cpu.utilization() == pytest.approx(0.5)
    assert cpu.instructions_executed == 1_000_000
