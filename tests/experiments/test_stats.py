"""Statistics helper tests."""

import math

import pytest

from repro.experiments.stats import PointEstimate, summarize, t_quantile_90


class TestTQuantile:
    def test_table_values(self):
        assert t_quantile_90(1) == pytest.approx(6.314)
        assert t_quantile_90(4) == pytest.approx(2.132)
        assert t_quantile_90(30) == pytest.approx(1.697)

    def test_interpolation(self):
        value = t_quantile_90(22)
        assert t_quantile_90(25) < value < t_quantile_90(20)

    def test_large_df_approaches_normal(self):
        assert t_quantile_90(10_000) == pytest.approx(1.645)

    def test_invalid_df(self):
        with pytest.raises(ValueError):
            t_quantile_90(0)


class TestSummarize:
    def test_single_value(self):
        estimate = summarize([5.0])
        assert estimate.mean == 5.0
        assert estimate.ci_half_width == 0.0
        assert estimate.count == 1

    def test_known_interval(self):
        values = [10.0, 12.0, 14.0]
        estimate = summarize(values)
        assert estimate.mean == pytest.approx(12.0)
        stderr = math.sqrt(4.0 / 3.0)  # var=4 (n-1), n=3
        assert estimate.ci_half_width == pytest.approx(2.920 * stderr)
        assert estimate.minimum == 10.0
        assert estimate.maximum == 14.0

    def test_identical_values_zero_width(self):
        estimate = summarize([3.0, 3.0, 3.0, 3.0])
        assert estimate.ci_half_width == 0.0

    def test_relative_ci(self):
        estimate = PointEstimate(100.0, 4.0, 5, 95.0, 105.0)
        assert estimate.relative_ci == pytest.approx(0.04)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_zero_mean_relative_ci(self):
        assert summarize([0.0, 0.0]).relative_ci == 0.0
