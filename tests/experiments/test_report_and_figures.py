"""Figure result containers, rendering, and the definitional tables."""


from repro.experiments import (
    FigureResult,
    PointEstimate,
    SeriesPoint,
    render_figure,
    table1,
    table2,
)


def _estimate(mean, half=0.0, n=3):
    return PointEstimate(mean, half, n, mean - half, mean + half)


class TestFigureResult:
    def test_add_and_values(self):
        result = FigureResult("f", "t", "x", "y")
        result.add("DS", 0.0, _estimate(500))
        result.add("DS", 50.0, _estimate(250))
        assert result.values("DS") == [(0.0, 500), (50.0, 250)]
        assert result.series_means("DS") == {0.0: 500, 50.0: 250}

    def test_series_point_y(self):
        point = SeriesPoint(1.0, _estimate(42.0))
        assert point.y == 42.0


class TestRenderFigure:
    def _figure(self):
        result = FigureResult("figure9x", "A Title", "servers", "seconds")
        result.add("DS", 1, _estimate(10.0, 0.5))
        result.add("DS", 2, _estimate(9.0, 0.4))
        result.add("QS", 1, _estimate(20.0, 1.0))
        result.notes = "a note"
        return result

    def test_contains_everything(self):
        text = render_figure(self._figure())
        assert "figure9x: A Title" in text
        assert "y = seconds" in text
        assert "DS" in text and "QS" in text
        assert "note: a note" in text

    def test_missing_points_dash(self):
        text = render_figure(self._figure())
        row_for_2 = [line for line in text.splitlines() if line.strip().startswith("2")][0]
        assert "-" in row_for_2  # QS has no x=2 point

    def test_ci_shown_and_hidden(self):
        with_ci = render_figure(self._figure(), show_ci=True)
        without = render_figure(self._figure(), show_ci=False)
        assert "+/-" in with_ci
        assert "+/-" not in without

    def test_single_run_no_ci(self):
        result = FigureResult("f", "t", "x", "y")
        result.add("DS", 1, PointEstimate(5.0, 0.0, 1, 5.0, 5.0))
        assert "+/-" not in render_figure(result)


class TestTables:
    def test_table1_matches_paper(self):
        text = table1()
        assert "data-shipping" in text
        assert "hybrid-shipping" in text
        rows = {line.split()[0]: line for line in text.splitlines()[2:]}
        assert set(rows) == {"display", "join", "select", "scan"}
        # DS column: everything at the client.
        assert rows["scan"].count("client") >= 2  # DS and HY columns

    def test_table2_defaults(self):
        text = table2()
        assert "50" in text and "4096" in text and "20000" in text

    def test_table2_custom_config(self):
        from repro.config import SystemConfig

        text = table2(SystemConfig(mips=25.0))
        assert "25" in text.splitlines()[2]


class TestRunSettings:
    def test_quick_reduces_seeds(self):
        from repro.experiments.runner import RunSettings

        settings = RunSettings(seeds=(1, 2, 3, 4, 5))
        assert settings.quick().seeds == (1, 2, 3)

    def test_defaults(self):
        from repro.experiments.runner import RunSettings

        settings = RunSettings()
        assert len(settings.seeds) >= 3
