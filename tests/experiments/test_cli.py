"""CLI tests (fast paths only; figure sweeps are exercised in benchmarks)."""

import pytest

from repro.experiments.cli import main


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "hybrid-shipping" in out


def test_table2(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "PageSize" in out


def test_figure_with_tiny_sweep(capsys):
    code = main(["fig2", "--seeds", "3", "--cache", "0", "1.0"])
    assert code == 0
    out = capsys.readouterr().out
    assert "figure2" in out
    assert "regenerated in" in out


def test_server_figure_with_tiny_sweep(capsys):
    code = main(["fig6", "--seeds", "3", "--servers", "1", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "figure6" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_qs_load(capsys):
    code = main(["qs-load", "--seeds", "3"])
    assert code == 0
    assert "QS" in capsys.readouterr().out


def test_throughput_sweep_with_tiny_sweep(capsys):
    code = main(["throughput-sweep", "--seeds", "3", "--clients", "1", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput-sweep" in out
    assert "p95" in out


def test_list_enumerates_every_experiment(capsys):
    assert main(["--list"]) == 0
    names = capsys.readouterr().out.split()
    assert "table1" in names
    assert "table2" in names
    assert "fig2" in names
    assert "write-mix" in names
    assert names == sorted(names[:2]) + sorted(names[2:])  # tables then figures


def test_list_needs_no_experiment_argument(capsys):
    # --list alongside a name still just lists.
    assert main(["fig2", "--list"]) == 0
    assert "write-mix" in capsys.readouterr().out


def test_missing_experiment_without_list_errors():
    with pytest.raises(SystemExit):
        main([])


def test_write_mix_with_tiny_sweep(capsys):
    code = main(
        [
            "write-mix",
            "--seeds",
            "3",
            "--write-fractions",
            "0",
            "0.5",
            "--clients",
            "2",
            "--queries",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "write-mix" in out
    assert "invalidation" in out
    assert "detection" in out
