"""Parallel sweep execution: ordering, serial fallback, figure equality."""

import os

from repro.experiments.figures import figure2
from repro.experiments.parallel import parallel_map
from repro.experiments.runner import RunSettings


def _square(x):
    return x * x


def _identify(x):
    return (x, os.getpid())


class TestParallelMap:
    def test_preserves_input_order(self):
        assert parallel_map(_square, range(8), jobs=4) == [x * x for x in range(8)]

    def test_serial_when_jobs_is_one(self):
        items, parent = range(3), os.getpid()
        assert parallel_map(_identify, items, jobs=1) == [(x, parent) for x in items]

    def test_serial_when_single_item(self):
        assert parallel_map(_identify, [5], jobs=4) == [(5, os.getpid())]

    def test_uses_worker_processes(self):
        pids = {pid for _, pid in parallel_map(_identify, range(4), jobs=2)}
        assert os.getpid() not in pids

    def test_consumes_any_iterable(self):
        assert parallel_map(_square, iter([1, 2, 3]), jobs=2) == [1, 4, 9]


class TestFigureEquality:
    def test_parallel_figure_matches_serial(self):
        """jobs=2 must reproduce the serial sweep byte for byte."""
        settings = RunSettings(seeds=(1, 2))
        serial = figure2(settings=settings, cache_fractions=(0.0, 0.5))
        parallel = figure2(settings=settings, cache_fractions=(0.0, 0.5), jobs=2)
        assert parallel.series == serial.series
