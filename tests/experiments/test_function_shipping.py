"""The function-shipping sweep: CLI registration and sweep shape."""

from repro.experiments.cli import main
from repro.experiments.figures import function_shipping
from repro.experiments.runner import RunSettings

TINY_COSTS = (0.0, 128_000.0)


def test_listed_in_the_cli(capsys):
    assert main(["--list"]) == 0
    assert "function-shipping" in capsys.readouterr().out.split()


def test_cli_run_with_tiny_sweep(capsys):
    code = main(["function-shipping", "--seeds", "3", "--udf-costs", "0", "128000"])
    assert code == 0
    out = capsys.readouterr().out
    assert "function-shipping" in out
    assert "optimizer-chosen" in out


def test_sweep_shape():
    settings = RunSettings(seeds=(3,))
    result = function_shipping(settings, udf_costs=TINY_COSTS)
    times = {
        arm: result.series_means(arm)
        for arm in ("client-eval", "server-eval", "optimizer-chosen")
    }
    pages = {
        arm: result.series_means(f"pages {arm}")
        for arm in ("client-eval", "server-eval", "optimizer-chosen")
    }
    # Server evaluation halves the shipped volume at every cost.
    for cost in TINY_COSTS:
        assert pages["server-eval"][cost] < pages["client-eval"][cost]
    # The pinned arms cross as the UDF gets expensive...
    assert times["server-eval"][0.0] < times["client-eval"][0.0]
    assert times["client-eval"][128_000.0] < times["server-eval"][128_000.0]
    # ...and the optimizer-chosen arm tracks the lower envelope: the
    # placement demonstrably flips from server to client.
    assert times["optimizer-chosen"][0.0] == times["server-eval"][0.0]
    assert times["optimizer-chosen"][128_000.0] == times["client-eval"][128_000.0]
    assert pages["optimizer-chosen"][0.0] == pages["server-eval"][0.0]
    assert pages["optimizer-chosen"][128_000.0] == pages["client-eval"][128_000.0]
