"""Multi-client memory contention: broker arbitration under a shared pool."""

from repro.config import BufferAllocation, MemoryConfig, SystemConfig
from repro.faults.recovery import RecoveryPolicy
from repro.plans.policies import Policy
from repro.workload import StreamConfig, WorkloadRunner
from repro.workloads.scenarios import chain_scenario


def _run(mode, num_clients=4, server_memory_pages=400, seed=3):
    scenario = chain_scenario(
        num_relations=2,
        num_servers=1,
        allocation=BufferAllocation.MAXIMUM,
        placement_seed=seed,
        config=SystemConfig(
            server_memory_pages=server_memory_pages,
            memory=MemoryConfig(mode=mode),
        ),
    )
    runner = WorkloadRunner(
        scenario,
        Policy.QUERY_SHIPPING,
        num_clients=num_clients,
        stream=StreamConfig(arrival="closed", think_time=0.25, queries_per_client=2),
        seed=seed,
        recovery=RecoveryPolicy.none(),
        cache="static",
    )
    return runner.run(), runner


class TestDynamicContention:
    def test_tight_memory_completes_every_query(self):
        result, runner = _run("dynamic")
        assert result.shed == 0
        assert result.failed == 0
        assert result.completed == result.submitted
        # Contention was real: the broker spilled and clawed pages back
        # from running joins (tiny minimums mean requests rarely queue
        # outright -- reclaim satisfies late arrivals synchronously).
        profile = result.profile
        assert profile["site.server1.memory.spill_pages"] > 0
        assert profile["site.server1.memory.reclaims"] > 0
        # Every grant was returned; nobody is left queued.
        for site in runner.last_topology.sites:
            assert site.memory.allocated_pages == 0
            assert site.memory.waiting == 0

    def test_static_allocation_sheds_under_same_pressure(self):
        result, _ = _run("static")
        assert result.shed > 0
        assert result.completed < result.submitted
        assert result.profile["site.server1.memory.spill_pages"] == 0

    def test_dynamic_outcompletes_static(self):
        dynamic, _ = _run("dynamic")
        static, _ = _run("static")
        assert dynamic.completed > static.completed


class TestBrokerDeterminism:
    """Satellite: same seed and workload => byte-identical broker history."""

    def test_repeat_run_replays_grant_reclaim_spill_sequence(self):
        first, first_runner = _run("dynamic")
        second, second_runner = _run("dynamic")
        assert first.makespan == second.makespan
        assert first.throughput == second.throughput
        assert [s.response_time for s in first.sessions] == [
            s.response_time for s in second.sessions
        ]
        assert first.profile == second.profile
        for site_a, site_b in zip(
            first_runner.last_topology.sites, second_runner.last_topology.sites
        ):
            assert site_a.memory.log == site_b.memory.log

    def test_seed_changes_broker_history(self):
        first, first_runner = _run("dynamic", seed=3)
        second, second_runner = _run("dynamic", seed=7)
        server_log_a = first_runner.last_topology.servers[0].memory.log
        server_log_b = second_runner.last_topology.servers[0].memory.log
        assert server_log_a != server_log_b
