"""Admission controller unit tests (slots, queueing, shedding)."""

import pytest

from repro.errors import ConfigurationError, QueryShedError
from repro.workload import AdmissionConfig, AdmissionController, AdmissionPolicy


def run_admit(env, controller, name):
    """Spawn a process that admits and parks; returns (process, ticket box)."""
    box = {}

    def admit():
        box["ticket"] = yield from controller.admit(name)

    return env.process(admit(), name=name), box


class TestConfig:
    def test_defaults_are_wait(self):
        config = AdmissionConfig()
        assert config.policy is AdmissionPolicy.WAIT

    def test_invalid_max_concurrent(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(max_concurrent=0)

    def test_invalid_queue_limit(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(queue_limit=-1)


class TestWaitPolicy:
    def test_admits_up_to_capacity_without_delay(self, env):
        controller = AdmissionController(env, 1, AdmissionConfig(max_concurrent=2))
        _, a = run_admit(env, controller, "a")
        _, b = run_admit(env, controller, "b")
        env.run()
        assert "ticket" in a and "ticket" in b
        assert controller.running == 2
        assert controller.waiting == 0

    def test_overflow_waits_until_release(self, env):
        controller = AdmissionController(env, 1, AdmissionConfig(max_concurrent=1))
        _, a = run_admit(env, controller, "a")
        _, b = run_admit(env, controller, "b")
        env.run()
        assert "ticket" in a and "ticket" not in b
        assert controller.waiting == 1
        a["ticket"].release()
        env.run()
        assert "ticket" in b
        assert controller.waiting == 0

    def test_sheds_beyond_queue_limit(self, env):
        controller = AdmissionController(
            env, 1, AdmissionConfig(max_concurrent=1, queue_limit=1)
        )
        run_admit(env, controller, "a")
        run_admit(env, controller, "b")
        env.run()

        def third():
            with pytest.raises(QueryShedError) as excinfo:
                yield from controller.admit("c")
            assert excinfo.value.server_id == 1

        env.run(until=env.process(third(), name="c"))
        assert controller.shed == 1

    def test_queue_delay_accounted(self, env):
        controller = AdmissionController(env, 1, AdmissionConfig(max_concurrent=1))
        _, a = run_admit(env, controller, "a")
        run_admit(env, controller, "b")
        env.run()

        def release_later():
            yield env.timeout(3.0)
            a["ticket"].release()

        env.process(release_later(), name="releaser")
        env.run()
        assert controller.total_queue_delay == pytest.approx(3.0)
        assert controller.max_queue_length == 1


class TestShedPolicy:
    def test_sheds_immediately_at_capacity(self, env):
        controller = AdmissionController(
            env,
            2,
            AdmissionConfig(max_concurrent=1, policy=AdmissionPolicy.SHED),
        )
        run_admit(env, controller, "a")
        env.run()

        def second():
            with pytest.raises(QueryShedError):
                yield from controller.admit("b")

        env.run(until=env.process(second(), name="b"))
        assert controller.shed == 1
        assert controller.waiting == 0


class TestTicket:
    def test_release_is_idempotent(self, env):
        controller = AdmissionController(env, 1, AdmissionConfig(max_concurrent=1))
        _, a = run_admit(env, controller, "a")
        env.run()
        a["ticket"].release()
        a["ticket"].release()
        assert controller.running == 0

    def test_snapshot_counters(self, env):
        controller = AdmissionController(env, 3, AdmissionConfig(max_concurrent=1))
        _, a = run_admit(env, controller, "a")
        env.run()
        a["ticket"].release()
        snap = controller.snapshot()
        assert snap.server_id == 3
        assert snap.admitted == 1
        assert snap.completed == 1
        assert snap.shed == 0
        assert snap.mean_queue_delay == 0.0
