"""End-to-end workload runner tests on the real engine."""

import pytest

from repro import api
from repro.errors import ConfigurationError
from repro.plans.policies import Policy
from repro.workload import (
    AdmissionConfig,
    AdmissionPolicy,
    StreamConfig,
    WorkloadRunner,
)
from repro.workloads.scenarios import chain_scenario


def run_workload(policy, num_clients, **kwargs):
    scenario = chain_scenario(
        num_relations=2,
        num_servers=1,
        cached_fraction=kwargs.pop("cached_fraction", 0.75),
        placement_seed=3,
    )
    defaults = dict(
        stream=StreamConfig(arrival="closed", think_time=0.0, queries_per_client=2),
        admission=AdmissionConfig(max_concurrent=4, queue_limit=64),
        seed=3,
        # The shape margins below were tuned for the paper's static prefix
        # model; dynamic-cache behaviour has its own tests in tests/caching.
        cache="static",
    )
    defaults.update(kwargs)
    return WorkloadRunner(scenario, policy, num_clients=num_clients, **defaults).run()


class TestThroughputShape:
    """The headline experiment: DS scales with cached clients, QS saturates."""

    def test_data_shipping_scales_with_clients(self):
        one = run_workload(Policy.DATA_SHIPPING, 1)
        four = run_workload(Policy.DATA_SHIPPING, 4)
        assert four.throughput > 2.5 * one.throughput

    def test_query_shipping_saturates_server_disk(self):
        one = run_workload(Policy.QUERY_SHIPPING, 1)
        four = run_workload(Policy.QUERY_SHIPPING, 4)
        assert four.throughput < 1.5 * one.throughput
        # The tail pays for the contention.
        assert four.p95_response_time > 2.0 * one.p95_response_time

    def test_all_sessions_accounted(self):
        result = run_workload(Policy.HYBRID_SHIPPING, 3)
        assert result.submitted == 6
        assert result.completed + result.shed + result.failed == result.submitted
        assert len(result.sessions) == result.submitted


class TestAdmission:
    def test_shed_policy_rejects_overflow(self):
        result = run_workload(
            Policy.QUERY_SHIPPING,
            4,
            admission=AdmissionConfig(max_concurrent=1, policy=AdmissionPolicy.SHED),
            stream=StreamConfig(arrival="open", rate=2.0, queries_per_client=2),
        )
        assert result.shed > 0
        assert result.admission[0].shed == result.shed
        shed_sessions = [s for s in result.sessions if s.status == "shed"]
        assert all(s.result_tuples == 0 for s in shed_sessions)

    def test_wait_policy_queues_and_accounts_delay(self):
        result = run_workload(
            Policy.QUERY_SHIPPING,
            4,
            admission=AdmissionConfig(max_concurrent=1, queue_limit=64),
        )
        assert result.shed == 0
        assert result.completed == result.submitted
        assert result.mean_queue_delay > 0.0
        assert result.admission[0].max_queue_length > 0

    def test_no_admission_control(self):
        result = run_workload(Policy.DATA_SHIPPING, 2, admission=None)
        assert result.admission == ()
        assert result.shed == 0

    def test_queue_delay_is_part_of_response_time(self):
        result = run_workload(
            Policy.QUERY_SHIPPING,
            3,
            admission=AdmissionConfig(max_concurrent=1, queue_limit=64),
        )
        for session in result.sessions:
            if session.status == "completed":
                assert session.response_time >= session.queue_delay


class TestSingleClientParity:
    def test_closed_zero_think_matches_run_query(self):
        workload = api.run_workload(
            policy="ds",
            num_clients=1,
            arrival="closed",
            think_time=0.0,
            queries_per_client=1,
            cached_fraction=0.5,
            admission=None,
            seed=3,
            cache="static",  # run_query simulates the static prefix model
        )
        single = api.run_query(policy="ds", cached_fraction=0.5, seed=3)
        assert workload.completed == 1
        assert workload.sessions[0].response_time == pytest.approx(
            single.result.response_time
        )


class TestPerClientCaches:
    def test_override_changes_a_clients_execution(self):
        scenario = chain_scenario(
            num_relations=2, num_servers=1, cached_fraction=0.0, placement_seed=3
        )
        fully_cached = {name: 1.0 for name in scenario.catalog.relation_names}
        result = WorkloadRunner(
            scenario,
            Policy.DATA_SHIPPING,
            num_clients=2,
            stream=StreamConfig(arrival="closed", queries_per_client=1),
            seed=3,
            client_caches={1: fully_cached},
            cache="static",
        ).run()
        by_client = {s.client_site: s.response_time for s in result.sessions}
        # Client -1 reads its own cached copies; client 0 faults every page
        # from the server.  Different data paths, clearly different times
        # (per Figure 3, faulting can actually be the *faster* of the two).
        assert abs(by_client[-1] - by_client[0]) > 1.0

    def test_identically_cached_clients_behave_identically(self):
        """Fully cached DS clients never share a resource, so their
        concurrently-run sessions finish in exactly the same time."""
        scenario = chain_scenario(
            num_relations=2, num_servers=1, cached_fraction=0.0, placement_seed=3
        )
        fully_cached = {name: 1.0 for name in scenario.catalog.relation_names}
        result = WorkloadRunner(
            scenario,
            Policy.DATA_SHIPPING,
            num_clients=2,
            stream=StreamConfig(arrival="closed", queries_per_client=1),
            seed=3,
            client_caches={0: fully_cached, 1: fully_cached},
            cache="static",
        ).run()
        times = [s.response_time for s in result.sessions]
        # Not exactly equal: each client's disk has its own randomized
        # geometry state, so "identical" means within a fraction of a percent.
        assert times[0] == pytest.approx(times[1], rel=0.02)

    def test_unknown_ordinal_rejected(self):
        scenario = chain_scenario(num_relations=2, num_servers=1)
        with pytest.raises(ConfigurationError):
            WorkloadRunner(
                scenario, Policy.DATA_SHIPPING, num_clients=2, client_caches={5: {}}
            )

    def test_zero_clients_rejected(self):
        scenario = chain_scenario(num_relations=2, num_servers=1)
        with pytest.raises(ConfigurationError):
            WorkloadRunner(scenario, Policy.DATA_SHIPPING, num_clients=0)


class TestApiSurface:
    def test_run_workload_returns_percentiles(self):
        result = api.run_workload(
            policy="hybrid",
            num_clients=2,
            arrival="open",
            rate=1.0,
            queries_per_client=2,
            cached_fraction=0.75,
            seed=3,
        )
        assert result.throughput > 0.0
        assert (
            result.p50_response_time
            <= result.p95_response_time
            <= result.p99_response_time
        )
        assert result.arrival == "open"
        assert result.num_clients == 2

    def test_admission_off_string(self):
        result = api.run_workload(
            policy="ds", num_clients=1, queries_per_client=1, admission="off", seed=3
        )
        assert result.admission == ()

    def test_utilizations_reported(self):
        result = api.run_workload(
            policy="qs", num_clients=2, queries_per_client=1, seed=3
        )
        assert any(v > 0.0 for v in result.disk_utilizations.values())
        assert any(v > 0.0 for v in result.cpu_utilizations.values())
