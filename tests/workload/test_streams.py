"""Client stream tests, driven with stub sessions of known durations."""

import pytest

from repro.errors import ConfigurationError
from repro.workload import ClientStream, StreamConfig


class StubSession:
    """A fake QuerySession that runs for a fixed simulated duration."""

    def __init__(self, env, ordinal, index, duration, log):
        self.env = env
        self.ordinal = ordinal
        self.index = index
        self.duration = duration
        self.log = log

    def run(self):
        self.log.append(("start", self.ordinal, self.index, self.env.now))
        yield self.env.timeout(self.duration)
        self.log.append(("end", self.ordinal, self.index, self.env.now))
        return (self.ordinal, self.index, self.env.now)


def make_launch(env, log, duration=2.0):
    def launch(ordinal, index):
        return StubSession(env, ordinal, index, duration, log)

    return launch


class TestConfig:
    def test_unknown_arrival(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(arrival="bursty")

    def test_open_needs_positive_rate(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(arrival="open", rate=0.0)

    def test_negative_think_time(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(think_time=-1.0)

    def test_at_least_one_query(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(queries_per_client=0)


class TestClosedStream:
    def test_zero_think_time_runs_back_to_back(self, env):
        log = []
        config = StreamConfig(arrival="closed", think_time=0.0, queries_per_client=3)
        stream = ClientStream(env, 0, config, seed=1, launch=make_launch(env, log))
        env.run(until=env.process(stream.run()))
        # Strictly serial: each query starts exactly when the previous ends.
        starts = [t for kind, _, _, t in log if kind == "start"]
        assert starts == [0.0, 2.0, 4.0]
        assert [r[1] for r in stream.results] == [0, 1, 2]

    def test_think_time_spaces_queries(self, env):
        log = []
        config = StreamConfig(arrival="closed", think_time=5.0, queries_per_client=3)
        stream = ClientStream(env, 0, config, seed=1, launch=make_launch(env, log))
        env.run(until=env.process(stream.run()))
        starts = [t for kind, _, _, t in log if kind == "start"]
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert all(gap > 2.0 for gap in gaps)  # 2.0 service + nonzero think

    def test_at_most_one_in_flight(self, env):
        log = []
        config = StreamConfig(arrival="closed", queries_per_client=4)
        stream = ClientStream(env, 0, config, seed=1, launch=make_launch(env, log))
        env.run(until=env.process(stream.run()))
        in_flight = 0
        for kind, *_ in log:
            in_flight += 1 if kind == "start" else -1
            assert 0 <= in_flight <= 1


class TestOpenStream:
    def test_arrivals_overlap_when_service_exceeds_gap(self, env):
        log = []
        # Mean interarrival 1/5 s << 2 s service: sessions must overlap.
        config = StreamConfig(arrival="open", rate=5.0, queries_per_client=5)
        stream = ClientStream(env, 0, config, seed=1, launch=make_launch(env, log))
        env.run(until=env.process(stream.run()))
        peak = in_flight = 0
        for kind, *_ in sorted(log, key=lambda entry: (entry[3], entry[0] == "start")):
            in_flight += 1 if kind == "start" else -1
            peak = max(peak, in_flight)
        assert peak >= 2
        assert len(stream.results) == 5

    def test_results_in_submission_order(self, env):
        log = []
        config = StreamConfig(arrival="open", rate=5.0, queries_per_client=4)
        stream = ClientStream(env, 0, config, seed=1, launch=make_launch(env, log))
        env.run(until=env.process(stream.run()))
        assert [r[1] for r in stream.results] == [0, 1, 2, 3]


class TestDeterminism:
    def arrivals(self, env_factory, ordinal, seed):
        from repro.sim import Environment

        env = Environment()
        log = []
        config = StreamConfig(arrival="open", rate=1.0, queries_per_client=4)
        stream = ClientStream(env, ordinal, config, seed=seed, launch=make_launch(env, log))
        env.run(until=env.process(stream.run()))
        return [t for kind, _, _, t in log if kind == "start"]

    def test_same_seed_same_arrivals(self):
        assert self.arrivals(None, 0, seed=9) == self.arrivals(None, 0, seed=9)

    def test_clients_have_independent_streams(self):
        assert self.arrivals(None, 0, seed=9) != self.arrivals(None, 1, seed=9)

    def test_seed_changes_arrivals(self):
        assert self.arrivals(None, 0, seed=9) != self.arrivals(None, 0, seed=10)
