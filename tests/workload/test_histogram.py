"""Log-bucketed streaming histogram: accuracy, boundaries, memory."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.histogram import StreamingHistogram
from repro.workload.results import percentile


class TestBuckets:
    def test_bucket_representatives_are_exact_fixed_points(self):
        """Recording a bucket representative reports it back exactly.

        The representative is the geometric mean of the bucket bounds; it
        falls inside its own bucket, so the sketch round-trips it with zero
        error -- the bucket-boundary exactness guarantee.
        """
        histogram = StreamingHistogram(relative_error=0.01)
        representatives = sorted(
            {histogram.representative(v) for v in (0.001, 0.05, 1.0, 3.7, 120.0)}
        )
        for value in representatives:
            assert histogram.representative(value) == value
        for value in representatives:
            solo = StreamingHistogram(relative_error=0.01)
            solo.record(value)
            assert solo.quantile(50.0) == value
            assert solo.quantile(99.0) == value

    def test_boundary_values_land_deterministically(self):
        """Values exactly on a bucket boundary always pick the same bucket."""
        histogram = StreamingHistogram(relative_error=0.01)
        gamma = (1.0 + 0.01) / (1.0 - 0.01)
        for i in (-5, 0, 1, 17):
            boundary = gamma**i
            assert histogram._bucket_of(boundary) == i

    def test_relative_error_bound_vs_exact_percentile(self):
        rng = random.Random(7)
        values = [rng.uniform(0.01, 40.0) for _ in range(5000)]
        histogram = StreamingHistogram(relative_error=0.01)
        histogram.record_all(values)
        for q in (10.0, 50.0, 90.0, 95.0, 99.0):
            exact = percentile(values, q)
            sketch = histogram.quantile(q)
            # Nearest-rank vs interpolation differ by at most one
            # observation; with 5000 samples the bound below holds easily.
            assert abs(sketch - exact) / exact < 0.05

    def test_quantiles_are_monotone(self):
        rng = random.Random(11)
        histogram = StreamingHistogram()
        histogram.record_all(rng.expovariate(1.0) + 0.01 for _ in range(1000))
        p50 = histogram.quantile(50.0)
        p95 = histogram.quantile(95.0)
        p99 = histogram.quantile(99.0)
        assert p50 <= p95 <= p99
        assert histogram.quantile(0.0) <= p50
        assert p99 <= histogram.quantile(100.0)

    def test_underflow_bucket_reports_zero(self):
        histogram = StreamingHistogram()
        histogram.record_all([0.0, 0.0, 0.0, 5.0])
        assert histogram.quantile(50.0) == 0.0
        assert histogram.quantile(99.0) == pytest.approx(5.0, rel=0.01)
        assert histogram.representative(0.0) == 0.0


class TestMemory:
    def test_bucket_count_independent_of_observation_count(self):
        """O(1) memory: n grows 1000x, occupied buckets stay identical."""
        values = [0.01 * (i + 1) for i in range(100)]
        small = StreamingHistogram()
        small.record_all(values)
        large = StreamingHistogram()
        for _ in range(1000):
            large.record_all(values)
        assert large.bucket_count == small.bucket_count
        assert len(large) == 1000 * len(small)

    def test_bucket_count_scales_with_value_range_only(self):
        histogram = StreamingHistogram(relative_error=0.01)
        histogram.record_all([1.0 + 1e-6 * i for i in range(10_000)])
        # A hundredth of a decade of range needs only a handful of
        # gamma-spaced buckets no matter how many samples land in it.
        assert histogram.bucket_count <= 3


class TestMerge:
    def test_merge_equals_recording_everything_in_one(self):
        rng = random.Random(3)
        left_values = [rng.uniform(0.1, 10.0) for _ in range(500)]
        right_values = [rng.uniform(0.1, 10.0) for _ in range(500)]
        left = StreamingHistogram()
        left.record_all(left_values)
        right = StreamingHistogram()
        right.record_all(right_values)
        combined = StreamingHistogram()
        combined.record_all(left_values + right_values)
        left.merge(right)
        assert len(left) == len(combined)
        for q in (50.0, 95.0, 99.0):
            assert left.quantile(q) == combined.quantile(q)

    def test_merge_rejects_mismatched_parameters(self):
        left = StreamingHistogram(relative_error=0.01)
        with pytest.raises(ConfigurationError):
            left.merge(StreamingHistogram(relative_error=0.02))
        with pytest.raises(ConfigurationError):
            left.merge(StreamingHistogram(min_value=1e-6))


class TestValidation:
    def test_constructor_rejects_bad_parameters(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                StreamingHistogram(relative_error=bad)
        with pytest.raises(ConfigurationError):
            StreamingHistogram(min_value=0.0)

    def test_record_rejects_nan_and_inf(self):
        histogram = StreamingHistogram()
        with pytest.raises(ConfigurationError):
            histogram.record(float("nan"))
        with pytest.raises(ConfigurationError):
            histogram.record(float("inf"))

    def test_quantile_of_empty_histogram_raises(self):
        with pytest.raises(ConfigurationError):
            StreamingHistogram().quantile(50.0)

    def test_quantile_rejects_out_of_range_percentile(self):
        histogram = StreamingHistogram()
        histogram.record(1.0)
        with pytest.raises(ConfigurationError):
            histogram.quantile(101.0)
        with pytest.raises(ConfigurationError):
            histogram.quantile(-1.0)
