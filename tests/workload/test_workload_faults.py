"""Workloads composed with the fault subsystem (PR 1 integration).

A server crash under concurrent load must only fail or replan the sessions
that actually touch the crashed server; the rest of the workload proceeds
untouched, and session failures never tear down the environment.
"""


from repro.faults.recovery import RecoveryPolicy
from repro.faults.schedule import FaultSchedule
from repro.plans.policies import Policy
from repro.workload import StreamConfig, WorkloadRunner
from repro.workloads.scenarios import chain_scenario


def run_with_crash(policy, cached_fraction, at=1.0, duration=4.0, **kwargs):
    scenario = chain_scenario(
        num_relations=2,
        num_servers=1,
        cached_fraction=cached_fraction,
        placement_seed=3,
    )
    defaults = dict(
        num_clients=3,
        stream=StreamConfig(arrival="closed", think_time=0.0, queries_per_client=2),
        seed=3,
        faults=FaultSchedule.server_crash(1, at=at, duration=duration),
        recovery=RecoveryPolicy(max_attempts=5, base_backoff=0.5, query_timeout=300.0),
    )
    defaults.update(kwargs)
    return WorkloadRunner(scenario, policy, **defaults).run()


class TestCrashContainment:
    def test_fully_cached_ds_is_immune(self):
        """DS plans over a fully cached relation set never touch the server,
        so the crash costs nothing: no retries, everything completes."""
        result = run_with_crash(Policy.DATA_SHIPPING, cached_fraction=1.0)
        assert result.completed == result.submitted
        assert result.total_retries == 0
        assert all(s.servers_used == () for s in result.sessions)

    def test_query_shipping_pays_for_the_crash(self):
        """The same crash forces QS sessions through the recovery loop."""
        result = run_with_crash(Policy.QUERY_SHIPPING, cached_fraction=1.0)
        assert result.total_retries > 0
        # The workload still finishes: retries + the healed server.
        assert result.completed == result.submitted

    def test_only_overlapping_sessions_retry(self):
        """Sessions that run entirely outside the crash window see no fault."""
        result = run_with_crash(
            Policy.QUERY_SHIPPING, cached_fraction=1.0, at=1.0, duration=2.0
        )
        clean = [
            s
            for s in result.sessions
            if s.status == "completed" and (s.completed < 1.0 or s.submitted > 3.0)
        ]
        assert clean, "expected some sessions clear of the crash window"
        assert all(s.retries == 0 for s in clean)

    def test_unrecoverable_sessions_fail_without_crashing_the_workload(self):
        """With no retry budget, affected sessions fail; the rest complete."""
        result = run_with_crash(
            Policy.QUERY_SHIPPING,
            cached_fraction=1.0,
            at=60.0,
            duration=1000.0,
            recovery=RecoveryPolicy(max_attempts=1, query_timeout=500.0),
        )
        assert result.failed > 0
        assert result.completed > 0
        assert result.completed + result.failed == result.submitted
        failed = [s for s in result.sessions if s.status == "failed"]
        assert all(s.error for s in failed)


class TestReplanningUnderLoad:
    def test_hybrid_replans_onto_client_caches(self):
        """Hybrid sessions re-optimize around the crashed server and fall
        back to the clients' cached copies instead of waiting out the
        restart window."""
        result = run_with_crash(
            Policy.HYBRID_SHIPPING,
            cached_fraction=1.0,
            duration=100.0,
            recovery=RecoveryPolicy(
                max_attempts=4, base_backoff=0.5, query_timeout=300.0, replan=True
            ),
        )
        assert result.completed == result.submitted
        assert result.total_replans > 0
