"""High-level API tests."""

import pytest

from repro import api
from repro.config import BufferAllocation
from repro.errors import ConfigurationError
from repro.plans import Policy


def test_run_query_end_to_end():
    outcome = api.run_query(policy="hybrid", num_relations=2, seed=1)
    assert outcome.result.result_tuples == 10_000
    assert outcome.result.response_time > 0
    assert outcome.predicted.response_time > 0
    assert outcome.policy is Policy.HYBRID_SHIPPING


@pytest.mark.parametrize("name,policy", [
    ("ds", Policy.DATA_SHIPPING),
    ("data", Policy.DATA_SHIPPING),
    ("qs", Policy.QUERY_SHIPPING),
    ("query-shipping", Policy.QUERY_SHIPPING),
    ("HY", Policy.HYBRID_SHIPPING),
])
def test_policy_aliases(name, policy):
    outcome = api.run_query(policy=name, num_relations=2, seed=1)
    assert outcome.policy is policy


def test_unknown_policy_rejected():
    with pytest.raises(ConfigurationError):
        api.run_query(policy="teleportation")


def test_unknown_objective_rejected():
    with pytest.raises(ConfigurationError):
        api.run_query(objective="vibes")


def test_objective_aliases():
    outcome = api.run_query(objective="communication", num_relations=2, seed=1)
    assert outcome.result.result_tuples == 10_000


def test_allocation_string():
    outcome = api.run_query(allocation="max", num_relations=2, seed=1)
    assert outcome.scenario.config.buffer_allocation is BufferAllocation.MAXIMUM


def test_compare_policies_table():
    table = api.compare_policies(num_relations=2, cached_fraction=0.5, seed=1)
    assert "data-shipping" in table
    assert "query-shipping" in table
    assert "hybrid-shipping" in table
    assert len(table.splitlines()) == 4


def test_explain_renders_bound_plan():
    outcome = api.run_query(policy="qs", num_relations=2, seed=1)
    text = api.explain(outcome.plan, outcome.scenario)
    assert "@server1" in text
    assert "display [client] @client" in text


def test_hisel_selectivity():
    outcome = api.run_query(selectivity="hisel", num_relations=2, seed=1)
    assert outcome.result.result_tuples == pytest.approx(2000, abs=2)
