"""Well-formedness and structural validation tests."""

import pytest

from repro.errors import IllFormedPlanError, PlanError
from repro.plans import (
    DisplayOp,
    JoinOp,
    JoinPredicate,
    Query,
    ScanOp,
    SelectOp,
    is_well_formed,
    validate_plan,
)
from repro.plans.annotations import Annotation
from repro.plans.validate import find_annotation_cycles

A = Annotation


def scan(name, annotation=A.PRIMARY_COPY):
    return ScanOp(annotation, name)


def two_way_plan(join_annotation=A.CONSUMER):
    join = JoinOp(join_annotation, inner=scan("A"), outer=scan("B"))
    return DisplayOp(A.CLIENT, child=join)


class TestWellFormedness:
    def test_simple_plans_are_well_formed(self):
        assert is_well_formed(two_way_plan())
        assert is_well_formed(two_way_plan(A.INNER_RELATION))

    def test_join_cycle_detected(self):
        """Section 2.2.3's example: A produces for B; A says consumer, B
        says producer-side -- neither site can be resolved."""
        lower = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("B"))
        upper = JoinOp(A.INNER_RELATION, inner=lower, outer=scan("C"))
        plan = DisplayOp(A.CLIENT, child=upper)
        assert not is_well_formed(plan)
        cycles = find_annotation_cycles(plan)
        assert len(cycles) == 1
        assert cycles[0] == (upper, lower)

    def test_outer_relation_cycle(self):
        lower = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("B"))
        upper = JoinOp(A.OUTER_RELATION, inner=scan("C"), outer=lower)
        assert not is_well_formed(DisplayOp(A.CLIENT, child=upper))

    def test_select_producer_over_consumer_join(self):
        join = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("B"))
        select = SelectOp(A.PRODUCER, child=join, selectivity=0.5)
        assert not is_well_formed(DisplayOp(A.CLIENT, child=select))

    def test_consumer_chain_is_fine(self):
        lower = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("B"))
        upper = JoinOp(A.CONSUMER, inner=lower, outer=scan("C"))
        assert is_well_formed(DisplayOp(A.CLIENT, child=upper))

    def test_downward_chain_is_fine(self):
        lower = JoinOp(A.INNER_RELATION, inner=scan("A"), outer=scan("B"))
        upper = JoinOp(A.INNER_RELATION, inner=lower, outer=scan("C"))
        assert is_well_formed(DisplayOp(A.CLIENT, child=upper))

    def test_consumer_pointing_at_non_target_child_is_fine(self):
        """A consumer child is only a cycle if the parent points AT it."""
        lower = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("B"))
        upper = JoinOp(A.OUTER_RELATION, inner=lower, outer=scan("C"))
        assert is_well_formed(DisplayOp(A.CLIENT, child=upper))


class TestValidatePlan:
    def _query(self):
        return Query(("A", "B"), (JoinPredicate("A", "B", 1e-4),))

    def test_valid_plan_passes(self):
        validate_plan(two_way_plan(), self._query())

    def test_root_must_be_display(self):
        join = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("B"))
        with pytest.raises(PlanError):
            validate_plan(join)  # type: ignore[arg-type]

    def test_missing_relation_detected(self):
        query = Query(
            ("A", "B", "C"),
            (JoinPredicate("A", "B", 1e-4), JoinPredicate("B", "C", 1e-4)),
        )
        with pytest.raises(PlanError, match="query needs"):
            validate_plan(two_way_plan(), query)

    def test_duplicate_scan_detected(self):
        join = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("A"))
        with pytest.raises(PlanError):
            validate_plan(DisplayOp(A.CLIENT, child=join))

    def test_shared_node_object_detected(self):
        shared = scan("A")
        join = JoinOp(A.CONSUMER, inner=shared, outer=shared)
        with pytest.raises(PlanError):
            validate_plan(DisplayOp(A.CLIENT, child=join))

    def test_ill_formed_plan_raises(self):
        lower = JoinOp(A.CONSUMER, inner=scan("A"), outer=scan("B"))
        upper = JoinOp(A.INNER_RELATION, inner=lower, outer=scan("C"))
        with pytest.raises(IllFormedPlanError):
            validate_plan(DisplayOp(A.CLIENT, child=upper))
