"""Plan rendering tests."""

from repro.catalog import Catalog, Placement, Relation
from repro.plans import DisplayOp, JoinOp, ScanOp, bind_plan, render_plan
from repro.plans.annotations import Annotation

A = Annotation


def _plan():
    join = JoinOp(
        A.CONSUMER, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.CLIENT, "B")
    )
    return DisplayOp(A.CLIENT, child=join)


def test_render_unbound():
    text = render_plan(_plan())
    lines = text.splitlines()
    assert lines[0] == "display [client]"
    assert "join [consumer]" in lines[1]
    assert "scan(A) [primary copy]" in text
    assert "scan(B) [client]" in text
    # No site bindings shown for an unbound plan.
    assert "@" not in text


def test_render_bound():
    catalog = Catalog(
        [Relation("A", 10_000), Relation("B", 10_000)],
        Placement({"A": 1, "B": 2}),
    )
    text = render_plan(bind_plan(_plan(), catalog))
    assert "display [client] @client" in text
    assert "scan(A) [primary copy] @server1" in text
    assert "scan(B) [client] @client" in text


def test_tree_connectors():
    text = render_plan(_plan())
    assert "|--" in text
    assert "'--" in text


def test_deep_tree_indentation():
    lower = JoinOp(
        A.CONSUMER, inner=ScanOp(A.CLIENT, "A"), outer=ScanOp(A.CLIENT, "B")
    )
    upper = JoinOp(A.CONSUMER, inner=lower, outer=ScanOp(A.CLIENT, "C"))
    text = render_plan(DisplayOp(A.CLIENT, child=upper))
    # Leaf scans of the lower join are indented two levels.
    assert "    |   |-- scan(A) [client]" in text
