"""Unit tests for logical queries."""

import pytest

from repro.errors import PlanError
from repro.plans import JoinPredicate, Query


class TestJoinPredicate:
    def test_connects(self):
        predicate = JoinPredicate("A", "B", 1e-4)
        assert predicate.connects(frozenset({"A"}), frozenset({"B"}))
        assert predicate.connects(frozenset({"B"}), frozenset({"A"}))
        assert not predicate.connects(frozenset({"A"}), frozenset({"C"}))
        assert not predicate.connects(frozenset({"A", "B"}), frozenset({"C"}))

    def test_self_join_rejected(self):
        with pytest.raises(PlanError):
            JoinPredicate("A", "A", 0.5)

    def test_nonpositive_selectivity_rejected(self):
        with pytest.raises(PlanError):
            JoinPredicate("A", "B", 0.0)


class TestQuery:
    def test_chain_is_connected(self):
        query = Query(
            ("A", "B", "C"),
            (JoinPredicate("A", "B", 1e-4), JoinPredicate("B", "C", 1e-4)),
        )
        assert query.is_connected()
        assert query.num_joins == 2
        assert query.join_graph_edges() == [("A", "B"), ("B", "C")]

    def test_disconnected_graph(self):
        query = Query(("A", "B", "C"), (JoinPredicate("A", "B", 1e-4),))
        assert not query.is_connected()

    def test_single_relation_connected(self):
        assert Query(("A",)).is_connected()

    def test_predicates_between(self):
        ab = JoinPredicate("A", "B", 1e-4)
        bc = JoinPredicate("B", "C", 1e-4)
        query = Query(("A", "B", "C"), (ab, bc))
        crossing = query.predicates_between(frozenset({"A", "B"}), frozenset({"C"}))
        assert crossing == [bc]
        assert query.predicates_between(frozenset({"A"}), frozenset({"C"})) == []

    def test_selection_lookup(self):
        query = Query(("A",), selections={"A": 0.3})
        assert query.selection_on("A") == 0.3
        query_none = Query(("A",), selections={"A": 1.0})
        assert query_none.selection_on("A") is None

    def test_duplicate_relation_rejected(self):
        with pytest.raises(PlanError):
            Query(("A", "A"))

    def test_predicate_on_unknown_relation_rejected(self):
        with pytest.raises(PlanError):
            Query(("A", "B"), (JoinPredicate("A", "C", 1e-4),))

    def test_selection_on_unknown_relation_rejected(self):
        with pytest.raises(PlanError):
            Query(("A",), selections={"B": 0.5})

    def test_bad_selection_value(self):
        with pytest.raises(PlanError):
            Query(("A",), selections={"A": 0.0})

    def test_empty_query_rejected(self):
        with pytest.raises(PlanError):
            Query(())

    def test_duplicate_edge_detection(self):
        query = Query(
            ("A", "B"),
            (JoinPredicate("A", "B", 1e-4), JoinPredicate("B", "A", 1e-3)),
        )
        with pytest.raises(PlanError):
            query.validate_unique_edges()
