"""Table 1: the policies as annotation restrictions."""

import pytest

from repro.errors import PolicyViolationError
from repro.plans import DisplayOp, JoinOp, Policy, ScanOp, SelectOp, check_policy
from repro.plans.annotations import Annotation
from repro.plans.policies import allowed_annotations

A = Annotation


class TestTable1:
    """Each cell of the paper's Table 1, verbatim."""

    def test_display_always_client(self):
        for policy in Policy:
            assert allowed_annotations(policy, "display") == {A.CLIENT}

    def test_join_row(self):
        assert allowed_annotations(Policy.DATA_SHIPPING, "join") == {A.CONSUMER}
        assert allowed_annotations(Policy.QUERY_SHIPPING, "join") == {
            A.INNER_RELATION,
            A.OUTER_RELATION,
        }
        assert allowed_annotations(Policy.HYBRID_SHIPPING, "join") == {
            A.CONSUMER,
            A.INNER_RELATION,
            A.OUTER_RELATION,
        }

    def test_select_row(self):
        assert allowed_annotations(Policy.DATA_SHIPPING, "select") == {A.CONSUMER}
        assert allowed_annotations(Policy.QUERY_SHIPPING, "select") == {A.PRODUCER}
        assert allowed_annotations(Policy.HYBRID_SHIPPING, "select") == {
            A.CONSUMER,
            A.PRODUCER,
        }

    def test_scan_row(self):
        assert allowed_annotations(Policy.DATA_SHIPPING, "scan") == {A.CLIENT}
        assert allowed_annotations(Policy.QUERY_SHIPPING, "scan") == {A.PRIMARY_COPY}
        assert allowed_annotations(Policy.HYBRID_SHIPPING, "scan") == {
            A.CLIENT,
            A.PRIMARY_COPY,
        }

    def test_hybrid_is_union_of_pure_policies(self):
        """Section 2.2.3: hybrid allows anything DS or QS allows."""
        for kind in ("display", "join", "select", "scan"):
            union = allowed_annotations(Policy.DATA_SHIPPING, kind) | allowed_annotations(
                Policy.QUERY_SHIPPING, kind
            )
            assert allowed_annotations(Policy.HYBRID_SHIPPING, kind) == union


class TestLookupForms:
    def test_by_instance_class_and_name(self):
        scan = ScanOp(A.CLIENT, "R")
        by_instance = allowed_annotations(Policy.DATA_SHIPPING, scan)
        by_class = allowed_annotations(Policy.DATA_SHIPPING, ScanOp)
        by_name = allowed_annotations(Policy.DATA_SHIPPING, "scan")
        assert by_instance == by_class == by_name

    def test_unknown_kind_rejected(self):
        with pytest.raises(PolicyViolationError):
            allowed_annotations(Policy.DATA_SHIPPING, "sort")


class TestCheckPolicy:
    def _ds_plan(self):
        join = JoinOp(A.CONSUMER, inner=ScanOp(A.CLIENT, "A"), outer=ScanOp(A.CLIENT, "B"))
        return DisplayOp(A.CLIENT, child=join)

    def _qs_plan(self):
        join = JoinOp(
            A.INNER_RELATION,
            inner=ScanOp(A.PRIMARY_COPY, "A"),
            outer=ScanOp(A.PRIMARY_COPY, "B"),
        )
        return DisplayOp(A.CLIENT, child=join)

    def test_pure_plans_satisfy_their_policies(self):
        check_policy(self._ds_plan(), Policy.DATA_SHIPPING)
        check_policy(self._qs_plan(), Policy.QUERY_SHIPPING)

    def test_pure_plans_are_valid_hybrid_plans(self):
        check_policy(self._ds_plan(), Policy.HYBRID_SHIPPING)
        check_policy(self._qs_plan(), Policy.HYBRID_SHIPPING)

    def test_cross_policy_violations(self):
        with pytest.raises(PolicyViolationError):
            check_policy(self._qs_plan(), Policy.DATA_SHIPPING)
        with pytest.raises(PolicyViolationError):
            check_policy(self._ds_plan(), Policy.QUERY_SHIPPING)

    def test_mixed_plan_only_hybrid(self):
        join = JoinOp(
            A.CONSUMER, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.CLIENT, "B")
        )
        plan = DisplayOp(A.CLIENT, child=join)
        check_policy(plan, Policy.HYBRID_SHIPPING)
        with pytest.raises(PolicyViolationError):
            check_policy(plan, Policy.DATA_SHIPPING)
        with pytest.raises(PolicyViolationError):
            check_policy(plan, Policy.QUERY_SHIPPING)

    def test_select_annotations(self):
        select = SelectOp(A.PRODUCER, child=ScanOp(A.PRIMARY_COPY, "A"), selectivity=0.5)
        plan = DisplayOp(A.CLIENT, child=select)
        check_policy(plan, Policy.QUERY_SHIPPING)
        with pytest.raises(PolicyViolationError):
            check_policy(plan, Policy.DATA_SHIPPING)

    def test_short_names(self):
        assert Policy.DATA_SHIPPING.short_name == "DS"
        assert Policy.QUERY_SHIPPING.short_name == "QS"
        assert Policy.HYBRID_SHIPPING.short_name == "HY"
