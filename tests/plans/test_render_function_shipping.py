"""Rendering of the function-shipping operators, unbound and bound."""

from repro.catalog import Catalog, Placement, Relation
from repro.plans import DisplayOp, JoinOp, ScanOp, bind_plan, render_plan
from repro.plans.annotations import Annotation
from repro.plans.logical import SemiJoinReduction, UdfPredicate
from repro.plans.operators import AggregateOp, SemiJoinOp, UdfFilterOp

A = Annotation


def _plan():
    left = SemiJoinOp(
        A.PRODUCER,
        child=ScanOp(A.PRIMARY_COPY, "R0"),
        reduction=SemiJoinReduction("R0", "R1", 0.2),
    )
    right = UdfFilterOp(
        A.CLIENT,
        child=ScanOp(A.PRIMARY_COPY, "R1"),
        udf=UdfPredicate("slow", "R1", 20_000.0),
    )
    join = JoinOp(A.CONSUMER, inner=left, outer=right)
    agg = AggregateOp(
        A.CONSUMER,
        child=join,
        group_by=("R0.k",),
        aggregates=("COUNT(*)",),
        groups=100.0,
    )
    return DisplayOp(A.CLIENT, child=agg)


def test_render_unbound_labels():
    text = render_plan(_plan())
    assert "aggregate(group by R0.k) [consumer]" in text
    assert "semijoin(R0 << R1) [producer]" in text
    assert "udf-filter(slow(R1) cost=20000) [client]" in text


def test_render_bound_shows_chosen_sites():
    catalog = Catalog(
        [Relation("R0", 10_000), Relation("R1", 10_000)],
        Placement({"R0": 1, "R1": 2}),
    )
    text = render_plan(bind_plan(_plan(), catalog))
    assert "semijoin(R0 << R1) [producer] @server1" in text
    assert "udf-filter(slow(R1) cost=20000) [client] @client" in text
    assert "aggregate(group by R0.k) [consumer] @client" in text


def test_scalar_aggregate_renders_all_marker():
    agg = AggregateOp(
        A.CONSUMER,
        child=ScanOp(A.CLIENT, "R0"),
        group_by=(),
        aggregates=("COUNT(*)",),
        groups=1.0,
    )
    text = render_plan(DisplayOp(A.CLIENT, child=agg))
    assert "aggregate(group by <all>) [consumer]" in text
