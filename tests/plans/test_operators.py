"""Unit tests for plan operators and annotations."""

import pytest

from repro.errors import PlanError
from repro.plans import DisplayOp, JoinOp, ScanOp, SelectOp
from repro.plans.annotations import Annotation


def scan(name, annotation=Annotation.PRIMARY_COPY):
    return ScanOp(annotation, name)


class TestAnnotations:
    def test_direction_flags(self):
        assert Annotation.CONSUMER.points_up
        assert not Annotation.CONSUMER.points_down
        for a in (Annotation.PRODUCER, Annotation.INNER_RELATION, Annotation.OUTER_RELATION):
            assert a.points_down
            assert not a.points_up
        for a in (Annotation.CLIENT, Annotation.PRIMARY_COPY):
            assert not a.points_up and not a.points_down


class TestScan:
    def test_valid_annotations(self):
        ScanOp(Annotation.CLIENT, "A")
        ScanOp(Annotation.PRIMARY_COPY, "A")

    def test_invalid_annotation(self):
        with pytest.raises(PlanError):
            ScanOp(Annotation.CONSUMER, "A")

    def test_requires_relation(self):
        with pytest.raises(PlanError):
            ScanOp(Annotation.CLIENT, "")

    def test_kind(self):
        assert scan("A").kind == "scan"


class TestSelect:
    def test_valid(self):
        select = SelectOp(Annotation.PRODUCER, child=scan("A"), selectivity=0.5)
        assert select.children == (select.child,)

    def test_invalid_annotation(self):
        with pytest.raises(PlanError):
            SelectOp(Annotation.CLIENT, child=scan("A"), selectivity=0.5)

    def test_invalid_selectivity(self):
        with pytest.raises(PlanError):
            SelectOp(Annotation.PRODUCER, child=scan("A"), selectivity=0.0)

    def test_requires_child(self):
        with pytest.raises(PlanError):
            SelectOp(Annotation.PRODUCER, child=None)


class TestJoin:
    def test_children_order_inner_then_outer(self):
        join = JoinOp(Annotation.CONSUMER, inner=scan("A"), outer=scan("B"))
        assert join.children[0].relation == "A"
        assert join.children[1].relation == "B"

    def test_annotation_target(self):
        a, b = scan("A"), scan("B")
        inner_join = JoinOp(Annotation.INNER_RELATION, inner=a, outer=b)
        outer_join = JoinOp(Annotation.OUTER_RELATION, inner=a, outer=b)
        consumer_join = JoinOp(Annotation.CONSUMER, inner=a, outer=b)
        assert inner_join.annotation_target() is a
        assert outer_join.annotation_target() is b
        assert consumer_join.annotation_target() is None

    def test_invalid_annotation(self):
        with pytest.raises(PlanError):
            JoinOp(Annotation.CLIENT, inner=scan("A"), outer=scan("B"))

    def test_with_children_preserves_annotation(self):
        join = JoinOp(Annotation.CONSUMER, inner=scan("A"), outer=scan("B"))
        rebuilt = join.with_children(scan("C"), scan("D"))
        assert rebuilt.annotation is Annotation.CONSUMER
        assert rebuilt.relations() == frozenset({"C", "D"})


class TestDisplay:
    def test_must_be_client(self):
        with pytest.raises(PlanError):
            DisplayOp(Annotation.CONSUMER, child=scan("A"))

    def test_walk_preorder(self):
        join = JoinOp(Annotation.CONSUMER, inner=scan("A"), outer=scan("B"))
        root = DisplayOp(Annotation.CLIENT, child=join)
        kinds = [op.kind for op in root.walk()]
        assert kinds == ["display", "join", "scan", "scan"]

    def test_relations(self):
        join = JoinOp(Annotation.CONSUMER, inner=scan("A"), outer=scan("B"))
        root = DisplayOp(Annotation.CLIENT, child=join)
        assert root.relations() == frozenset({"A", "B"})

    def test_count(self):
        join = JoinOp(Annotation.CONSUMER, inner=scan("A"), outer=scan("B"))
        root = DisplayOp(Annotation.CLIENT, child=join)
        assert root.count(ScanOp) == 2
        assert root.count(JoinOp) == 1


class TestImmutability:
    def test_with_annotation_returns_copy(self):
        original = scan("A")
        changed = original.with_annotation(Annotation.CLIENT)
        assert original.annotation is Annotation.PRIMARY_COPY
        assert changed.annotation is Annotation.CLIENT
        assert changed.relation == "A"

    def test_nodes_are_frozen(self):
        node = scan("A")
        with pytest.raises(Exception):
            node.relation = "B"  # type: ignore[misc]

    def test_structural_equality(self):
        a1 = JoinOp(Annotation.CONSUMER, inner=scan("A"), outer=scan("B"))
        a2 = JoinOp(Annotation.CONSUMER, inner=scan("A"), outer=scan("B"))
        assert a1 == a2
        assert a1 is not a2
