"""Run-time binding of logical annotations to physical sites."""

import pytest

from repro.catalog import Catalog, Placement, Relation
from repro.errors import BindingError
from repro.plans import DisplayOp, JoinOp, ScanOp, SelectOp, bind_plan
from repro.plans.annotations import Annotation

A = Annotation


@pytest.fixture
def catalog():
    return Catalog(
        [Relation("A", 10_000), Relation("B", 10_000), Relation("C", 10_000)],
        Placement({"A": 1, "B": 1, "C": 2}),
        {"C": 0.5},
    )


def test_fixed_operators(catalog):
    join = JoinOp(
        A.CONSUMER, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.CLIENT, "C")
    )
    plan = DisplayOp(A.CLIENT, child=join)
    bound = bind_plan(plan, catalog)
    assert bound.site_of(plan) == 0
    assert bound.site_of(join.inner) == 1  # primary copy of A
    assert bound.site_of(join.outer) == 0  # client scan


def test_consumer_follows_parent(catalog):
    join = JoinOp(
        A.CONSUMER, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "B")
    )
    plan = DisplayOp(A.CLIENT, child=join)
    bound = bind_plan(plan, catalog)
    assert bound.site_of(join) == 0  # display's site


def test_inner_outer_follow_children(catalog):
    scan_a = ScanOp(A.PRIMARY_COPY, "A")
    scan_c = ScanOp(A.PRIMARY_COPY, "C")
    inner_join = JoinOp(A.INNER_RELATION, inner=scan_a, outer=scan_c)
    outer_join = JoinOp(A.OUTER_RELATION, inner=scan_a, outer=scan_c)
    assert bind_plan(DisplayOp(A.CLIENT, child=inner_join), catalog).site_of(inner_join) == 1
    assert bind_plan(DisplayOp(A.CLIENT, child=outer_join), catalog).site_of(outer_join) == 2


def test_chained_resolution(catalog):
    """A consumer chain resolves through multiple hops."""
    lower = JoinOp(
        A.INNER_RELATION, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "B")
    )
    select = SelectOp(A.CONSUMER, child=ScanOp(A.PRIMARY_COPY, "C"), selectivity=0.5)
    upper = JoinOp(A.INNER_RELATION, inner=lower, outer=select)
    plan = DisplayOp(A.CLIENT, child=upper)
    bound = bind_plan(plan, catalog)
    assert bound.site_of(lower) == 1
    assert bound.site_of(upper) == 1  # follows lower
    assert bound.site_of(select) == 1  # consumer -> upper -> lower -> scan A


def test_binding_adapts_to_migration(catalog):
    """The same annotated plan binds differently after data moves."""
    scan_a = ScanOp(A.PRIMARY_COPY, "A")
    join = JoinOp(A.INNER_RELATION, inner=scan_a, outer=ScanOp(A.PRIMARY_COPY, "C"))
    plan = DisplayOp(A.CLIENT, child=join)
    before = bind_plan(plan, catalog)
    moved = catalog.with_placement(Placement({"A": 2, "B": 1, "C": 2}))
    after = bind_plan(plan, moved)
    assert before.site_of(join) == 1
    assert after.site_of(join) == 2


def test_ill_formed_plan_fails_binding(catalog):
    lower = JoinOp(
        A.CONSUMER, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "B")
    )
    upper = JoinOp(A.INNER_RELATION, inner=lower, outer=ScanOp(A.PRIMARY_COPY, "C"))
    with pytest.raises(BindingError):
        bind_plan(DisplayOp(A.CLIENT, child=upper), catalog)


def test_crossing_edges(catalog):
    join = JoinOp(
        A.CONSUMER, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "C")
    )
    plan = DisplayOp(A.CLIENT, child=join)
    bound = bind_plan(plan, catalog)
    crossing = bound.crossing_edges()
    # Both scans ship to the client join; the display edge is local.
    assert len(crossing) == 2
    assert bound.sites_used() == {0, 1, 2}


def test_operators_at(catalog):
    join = JoinOp(
        A.INNER_RELATION, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "B")
    )
    plan = DisplayOp(A.CLIENT, child=join)
    bound = bind_plan(plan, catalog)
    assert len(bound.operators_at(1)) == 3  # join + both scans
    assert len(bound.operators_at(0)) == 1  # display


def test_site_of_foreign_operator_rejected(catalog):
    plan = DisplayOp(
        A.CLIENT,
        child=JoinOp(
            A.CONSUMER, inner=ScanOp(A.PRIMARY_COPY, "A"), outer=ScanOp(A.PRIMARY_COPY, "B")
        ),
    )
    bound = bind_plan(plan, catalog)
    stranger = ScanOp(A.CLIENT, "C")
    with pytest.raises(BindingError):
        bound.site_of(stranger)
