"""Validation of the function-shipping logical nodes: errors name names."""

import pytest

from repro.errors import PlanError
from repro.plans.logical import (
    Aggregation,
    JoinPredicate,
    Query,
    SemiJoinReduction,
    UdfPredicate,
)

EDGE = JoinPredicate("A", "B", 1e-4)


class TestUdfPredicate:
    def test_negative_cost_names_the_udf(self):
        with pytest.raises(PlanError, match=r"UDF 'f' on 'A'.*-1"):
            UdfPredicate("f", "A", -1.0)

    def test_bad_selectivity_names_the_udf(self):
        with pytest.raises(PlanError, match=r"UDF 'f' on 'A'.*selectivity"):
            UdfPredicate("f", "A", 10.0, selectivity=0.0)

    def test_bad_site_lists_the_legal_values(self):
        with pytest.raises(PlanError, match=r"'auto', 'client', 'server'"):
            UdfPredicate("f", "A", 10.0, site="moon")

    def test_query_rejects_udf_on_unknown_relation(self):
        with pytest.raises(PlanError, match=r"UDF 'f' applies to unknown relation 'C'"):
            Query(("A", "B"), (EDGE,), udfs=(UdfPredicate("f", "C", 10.0),))


class TestSemiJoinReduction:
    def test_self_digest_rejected(self):
        with pytest.raises(PlanError, match=r"'A' cannot take a digest of itself"):
            SemiJoinReduction("A", "A", 0.5)

    def test_bad_survivor_fraction(self):
        with pytest.raises(PlanError, match=r"semi-join on 'A'.*survivor"):
            SemiJoinReduction("A", "B", 0.0)

    def test_query_rejects_reducer_on_unknown_relation(self):
        with pytest.raises(PlanError, match=r"unknown relation 'C'"):
            Query(("A", "B"), (EDGE,), semi_joins=(SemiJoinReduction("C", "A", 0.5),))

    def test_query_rejects_digest_of_unknown_relation(self):
        with pytest.raises(PlanError, match=r"digest of unknown relation 'C'"):
            Query(("A", "B"), (EDGE,), semi_joins=(SemiJoinReduction("A", "C", 0.5),))

    def test_query_rejects_two_reducers_per_relation(self):
        with pytest.raises(PlanError, match=r"'A' has more than one semi-join"):
            Query(
                ("A", "B"),
                (EDGE,),
                semi_joins=(
                    SemiJoinReduction("A", "B", 0.5),
                    SemiJoinReduction("A", "B", 0.2),
                ),
            )


class TestAggregation:
    def test_needs_columns_or_aggregates(self):
        with pytest.raises(PlanError, match="group-by columns or aggregates"):
            Aggregation()

    def test_group_estimate_below_one_rejected(self):
        with pytest.raises(PlanError, match=r"at least one"):
            Aggregation(group_by=("A.k",), groups=0.5)


class TestQueryLookups:
    def test_udfs_on_preserves_declaration_order(self):
        first = UdfPredicate("f", "A", 10.0)
        second = UdfPredicate("g", "A", 20.0)
        query = Query(("A", "B"), (EDGE,), udfs=(first, second))
        assert query.udfs_on("A") == (first, second)
        assert query.udfs_on("B") == ()

    def test_semi_join_on(self):
        reduction = SemiJoinReduction("A", "B", 0.5)
        query = Query(("A", "B"), (EDGE,), semi_joins=(reduction,))
        assert query.semi_join_on("A") is reduction
        assert query.semi_join_on("B") is None
