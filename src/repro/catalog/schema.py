"""Relation schemas and size arithmetic.

The benchmark relations have 10,000 tuples of 100 bytes (section 3.3); with
4096-byte pages and no tuple spanning that is 40 tuples per page and 250
pages per relation, matching the page counts the paper reports (e.g. a
250-page join result in Figure 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.errors import CatalogError

__all__ = ["Relation"]


@dataclass(frozen=True)
class Relation:
    """A base relation: name, cardinality, and tuple width in bytes."""

    name: str
    tuples: int
    tuple_bytes: int = 100

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("relation name must be non-empty")
        if self.tuples < 0:
            raise CatalogError(f"negative cardinality for {self.name!r}")
        if self.tuple_bytes <= 0:
            raise CatalogError(f"non-positive tuple size for {self.name!r}")

    def tuples_per_page(self, config: SystemConfig) -> int:
        return config.tuples_per_page(self.tuple_bytes)

    def pages(self, config: SystemConfig) -> int:
        """Number of pages occupied (whole tuples only, no spanning)."""
        if self.tuples == 0:
            return 0
        return math.ceil(self.tuples / self.tuples_per_page(config))

    def bytes_total(self) -> int:
        return self.tuples * self.tuple_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
