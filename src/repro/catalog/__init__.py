"""Catalog: relation schemas, statistics, and physical data placement."""

from repro.catalog.schema import Relation
from repro.catalog.placement import Placement, random_placement
from repro.catalog.catalog import Catalog

__all__ = ["Catalog", "Placement", "Relation", "random_placement"]
