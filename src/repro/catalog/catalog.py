"""The catalog ties schemas, placement, and client caching together."""

from __future__ import annotations

from repro.catalog.placement import Placement
from repro.catalog.schema import Relation
from repro.config import SystemConfig
from repro.errors import CatalogError
from repro.hardware.topology import Topology

__all__ = ["Catalog"]


class Catalog:
    """All metadata an optimizer or executor needs about the database.

    A catalog is *logical* until :meth:`install` materialises it on a
    :class:`~repro.hardware.topology.Topology`: primary copies get disk
    extents on their servers and cached prefixes get extents on the client
    disk.  The optimizer reads the same catalog, so an optimizer can be
    handed a *different* (wrong) catalog to model stale compile-time
    knowledge, as in the paper's 2-step experiments (section 5).
    """

    def __init__(
        self,
        relations: list[Relation],
        placement: Placement,
        cache_fractions: dict[str, float] | None = None,
    ) -> None:
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            if relation.name in self._relations:
                raise CatalogError(f"duplicate relation {relation.name!r}")
            self._relations[relation.name] = relation
        for name in placement.assignments:
            if name not in self._relations:
                raise CatalogError(f"placement references unknown relation {name!r}")
        for name in self._relations:
            if name not in placement:
                raise CatalogError(f"relation {name!r} has no placement")
        self.placement = placement
        self.cache_fractions = dict(cache_fractions or {})
        for name, fraction in self.cache_fractions.items():
            if name not in self._relations:
                raise CatalogError(f"cache entry references unknown relation {name!r}")
            if not 0.0 <= fraction <= 1.0:
                raise CatalogError(f"cache fraction for {name!r} must be in [0, 1]")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(f"unknown relation {name!r}") from None

    @property
    def relation_names(self) -> list[str]:
        return sorted(self._relations)

    def server_of(self, name: str) -> int:
        """Id of the server holding the primary copy of ``name``."""
        self.relation(name)
        return self.placement.server_of(name)

    def pages_of(self, name: str, config: SystemConfig) -> int:
        return self.relation(name).pages(config)

    def cached_fraction(self, name: str) -> float:
        self.relation(name)
        return self.cache_fractions.get(name, 0.0)

    def cached_pages_of(self, name: str, config: SystemConfig) -> int:
        """Pages of ``name`` in the client disk cache (contiguous prefix)."""
        return round(self.pages_of(name, config) * self.cached_fraction(name))

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def install(
        self,
        topology: Topology,
        client_caches: "dict[int, dict[str, float]] | None" = None,
    ) -> None:
        """Create primary copies on servers and cached prefixes at the clients.

        Every client site receives this catalog's ``cache_fractions`` by
        default; ``client_caches`` overrides the per-relation fractions for
        individual clients (keyed by client *site id*: 0, -1, -2, ...), so
        multi-client workloads can give each client its own cache contents.
        """
        config = topology.config
        for name in self.relation_names:
            server_id = self.placement.server_of(name)
            if server_id > len(topology.servers):
                raise CatalogError(
                    f"relation {name!r} placed on server {server_id} but the "
                    f"topology has only {len(topology.servers)} servers"
                )
            topology.site(server_id).store_relation(name, self.pages_of(name, config))
        overrides = client_caches or {}
        for unknown in set(overrides) - {site.site_id for site in topology.clients}:
            raise CatalogError(f"cache override for unknown client site {unknown}")
        for client in topology.clients:
            cache = client.cache
            assert cache is not None
            fractions = overrides.get(client.site_id)
            for name in self.relation_names:
                if fractions is None:
                    fraction = self.cached_fraction(name)
                else:
                    fraction = fractions.get(name, 0.0)
                if fraction > 0.0:
                    cache.install(name, self.pages_of(name, config), fraction)

    def with_placement(self, placement: Placement) -> "Catalog":
        """Copy of this catalog under a different placement (for 2-step)."""
        return Catalog(list(self._relations.values()), placement, self.cache_fractions)

    def with_cache(self, cache_fractions: dict[str, float]) -> "Catalog":
        """Copy of this catalog with different client-cache contents."""
        return Catalog(list(self._relations.values()), self.placement, cache_fractions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Catalog relations={len(self._relations)}>"
