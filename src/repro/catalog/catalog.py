"""The catalog ties schemas, placement, and client caching together."""

from __future__ import annotations

import typing

from repro.caching.buffer import BufferCache
from repro.catalog.placement import Placement
from repro.catalog.schema import Relation
from repro.config import SystemConfig
from repro.errors import CatalogError
from repro.hardware.topology import Topology

__all__ = ["Catalog"]


class Catalog:
    """All metadata an optimizer or executor needs about the database.

    A catalog is *logical* until :meth:`install` materialises it on a
    :class:`~repro.hardware.topology.Topology`: primary copies get disk
    extents on their servers and cached prefixes get extents on the client
    disk.  The optimizer reads the same catalog, so an optimizer can be
    handed a *different* (wrong) catalog to model stale compile-time
    knowledge, as in the paper's 2-step experiments (section 5).
    """

    def __init__(
        self,
        relations: list[Relation],
        placement: Placement,
        cache_fractions: dict[str, float] | None = None,
    ) -> None:
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            if relation.name in self._relations:
                raise CatalogError(f"duplicate relation {relation.name!r}")
            self._relations[relation.name] = relation
        for name in placement.assignments:
            if name not in self._relations:
                raise CatalogError(f"placement references unknown relation {name!r}")
        for name in self._relations:
            if name not in placement:
                raise CatalogError(f"relation {name!r} has no placement")
        self.placement = placement
        self.cache_fractions = dict(cache_fractions or {})
        for name, fraction in self.cache_fractions.items():
            if name not in self._relations:
                raise CatalogError(f"cache entry references unknown relation {name!r}")
            if not 0.0 <= fraction <= 1.0:
                raise CatalogError(f"cache fraction for {name!r} must be in [0, 1]")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(f"unknown relation {name!r}") from None

    @property
    def relation_names(self) -> list[str]:
        return sorted(self._relations)

    def server_of(self, name: str) -> int:
        """Id of the server holding the primary copy of ``name``."""
        self.relation(name)
        return self.placement.server_of(name)

    def servers_of(self, name: str) -> tuple[int, ...]:
        """All servers holding a copy of ``name`` (primary first)."""
        self.relation(name)
        return self.placement.servers_of(name)

    def pages_of(self, name: str, config: SystemConfig) -> int:
        return self.relation(name).pages(config)

    def cached_fraction(self, name: str) -> float:
        self.relation(name)
        return self.cache_fractions.get(name, 0.0)

    def cached_pages_of(self, name: str, config: SystemConfig) -> int:
        """Pages of ``name`` in the client disk cache (contiguous prefix)."""
        return round(self.pages_of(name, config) * self.cached_fraction(name))

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def install(
        self,
        topology: Topology,
        client_caches: "dict[int, dict[str, float]] | None" = None,
    ) -> None:
        """Create primary copies on servers and cached prefixes at the clients.

        Every client site receives this catalog's ``cache_fractions`` by
        default; ``client_caches`` overrides the per-relation fractions for
        individual clients (keyed by client *site id*: 0, -1, -2, ...), so
        multi-client workloads can give each client its own cache contents.
        """
        config = topology.config
        for name in self.relation_names:
            for server_id in self.placement.servers_of(name):
                if server_id > len(topology.servers):
                    raise CatalogError(
                        f"relation {name!r} placed on server {server_id} but the "
                        f"topology has only {len(topology.servers)} servers"
                    )
                topology.site(server_id).store_relation(
                    name, self.pages_of(name, config)
                )
        overrides = client_caches or {}
        for unknown in set(overrides) - {site.site_id for site in topology.clients}:
            raise CatalogError(f"cache override for unknown client site {unknown}")
        for client in topology.clients:
            fractions = overrides.get(client.site_id)
            if config.cache.is_dynamic:
                self._install_dynamic(client, config, fractions)
                continue
            cache = client.cache
            assert cache is not None
            for name in self.relation_names:
                if fractions is None:
                    fraction = self.cached_fraction(name)
                else:
                    fraction = fractions.get(name, 0.0)
                if fraction > 0.0:
                    cache.install(name, self.pages_of(name, config), fraction)

    def _install_dynamic(
        self,
        client: "typing.Any",
        config: SystemConfig,
        fractions: dict[str, float] | None,
    ) -> None:
        """Create (or keep) a client's dynamic buffer cache, seeding prefixes.

        The catalog's cache fractions (or the per-client override) become
        *seeded* resident pages -- like the static model, seeded data is
        assumed resident before any query runs, so no I/O is simulated for
        it.  An existing buffer cache is kept as-is: its contents are the
        whole point of persisting across installs.
        """
        if client.buffer_cache is not None:
            return
        total_pages = sum(self.pages_of(name, config) for name in self.relation_names)
        capacity = config.cache.capacity_pages
        if capacity is None:
            capacity = total_pages
        client.buffer_cache = BufferCache(
            client.allocators[0],
            capacity,
            policy=config.cache.policy,
            admit_on_fault=config.cache.admit_on_fault,
        )
        for name in self.relation_names:
            if fractions is None:
                fraction = self.cached_fraction(name)
            else:
                fraction = fractions.get(name, 0.0)
            pages = round(self.pages_of(name, config) * fraction)
            if pages > 0:
                client.buffer_cache.seed(name, pages)

    def with_placement(self, placement: Placement) -> "Catalog":
        """Copy of this catalog under a different placement (for 2-step)."""
        return Catalog(list(self._relations.values()), placement, self.cache_fractions)

    def with_cache(self, cache_fractions: dict[str, float]) -> "Catalog":
        """Copy of this catalog with different client-cache contents."""
        return Catalog(list(self._relations.values()), self.placement, cache_fractions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Catalog relations={len(self._relations)}>"
