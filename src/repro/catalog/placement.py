"""Physical placement of primary copies on servers.

Each relation's primary copy resides on exactly one server (no declustering,
no replication; section 3.2.1).  The 10-way-join experiments place the ten
base relations randomly among the servers "ensuring that each server has at
least one base relation" (section 4.3); :func:`random_placement` implements
exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import CatalogError

__all__ = ["Placement", "random_placement"]


@dataclass(frozen=True)
class Placement:
    """Mapping of relation name to the id of the server storing it."""

    assignments: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for relation, server_id in self.assignments.items():
            if server_id < 1:
                raise CatalogError(
                    f"relation {relation!r} assigned to site {server_id}; "
                    "primary copies live on servers (ids >= 1)"
                )

    def server_of(self, relation: str) -> int:
        try:
            return self.assignments[relation]
        except KeyError:
            raise CatalogError(f"relation {relation!r} has no placement") from None

    def relations_on(self, server_id: int) -> list[str]:
        return sorted(r for r, s in self.assignments.items() if s == server_id)

    @property
    def servers_used(self) -> set[int]:
        return set(self.assignments.values())

    def __contains__(self, relation: str) -> bool:
        return relation in self.assignments

    def __len__(self) -> int:
        return len(self.assignments)


def random_placement(
    relations: list[str],
    num_servers: int,
    rng: random.Random,
) -> Placement:
    """Assign relations to servers uniformly, each server getting >= 1.

    Raises if there are more servers than relations (some server would
    necessarily be empty).
    """
    if num_servers < 1:
        raise CatalogError("need at least one server")
    if len(relations) < num_servers:
        raise CatalogError(
            f"cannot give each of {num_servers} servers at least one of "
            f"{len(relations)} relations"
        )
    shuffled = list(relations)
    rng.shuffle(shuffled)
    assignments: dict[str, int] = {}
    # One guaranteed relation per server, then uniform for the rest.
    for server_index, relation in enumerate(shuffled[:num_servers]):
        assignments[relation] = server_index + 1
    for relation in shuffled[num_servers:]:
        assignments[relation] = rng.randint(1, num_servers)
    return Placement(assignments)
