"""Physical placement of primary and replica copies on servers.

Each relation's *primary* copy resides on exactly one server (no
declustering; section 3.2.1 -- the paper itself has no replication).  The
10-way-join experiments place the ten base relations randomly among the
servers "ensuring that each server has at least one base relation"
(section 4.3); :func:`random_placement` implements exactly that.

Beyond the paper, a placement may additionally list *replica* copies:
extra servers holding a full secondary copy of a relation.  Writes go
through the primary and propagate to every replica (primary-copy
write-through); reads may be served by any copy, which gives the
optimizer a site-selection choice and the fault path a failover target.
A placement with no replicas behaves exactly as before.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import CatalogError

__all__ = ["Placement", "random_placement", "replicate_placement"]


@dataclass(frozen=True)
class Placement:
    """Mapping of relation name to the server(s) storing it.

    ``assignments`` maps each relation to its primary server;
    ``replicas`` optionally maps a relation to extra servers holding
    secondary copies (the primary is never listed there).
    """

    assignments: dict[str, int] = field(default_factory=dict)
    replicas: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for relation, server_id in self.assignments.items():
            if server_id < 1:
                raise CatalogError(
                    f"relation {relation!r} assigned to site {server_id}; "
                    "primary copies live on servers (ids >= 1)"
                )
        for relation, servers in self.replicas.items():
            if relation not in self.assignments:
                raise CatalogError(
                    f"replicas listed for unknown relation {relation!r}"
                )
            primary = self.assignments[relation]
            if len(set(servers)) != len(servers):
                raise CatalogError(
                    f"relation {relation!r} lists a replica server twice"
                )
            for server_id in servers:
                if server_id < 1:
                    raise CatalogError(
                        f"relation {relation!r} replicated to site {server_id}; "
                        "replicas live on servers (ids >= 1)"
                    )
                if server_id == primary:
                    raise CatalogError(
                        f"relation {relation!r} lists its primary server "
                        f"{primary} as a replica"
                    )

    def server_of(self, relation: str) -> int:
        try:
            return self.assignments[relation]
        except KeyError:
            raise CatalogError(f"relation {relation!r} has no placement") from None

    def servers_of(self, relation: str) -> tuple[int, ...]:
        """All servers holding a copy: the primary first, then replicas."""
        return (self.server_of(relation), *self.replicas.get(relation, ()))

    def relations_on(self, server_id: int) -> list[str]:
        """All relations with a copy (primary or replica) on a server."""
        return sorted(
            r for r in self.assignments if server_id in self.servers_of(r)
        )

    @property
    def servers_used(self) -> set[int]:
        used = set(self.assignments.values())
        for servers in self.replicas.values():
            used.update(servers)
        return used

    @property
    def is_replicated(self) -> bool:
        return any(self.replicas.values())

    def __contains__(self, relation: str) -> bool:
        return relation in self.assignments

    def __len__(self) -> int:
        return len(self.assignments)


def random_placement(
    relations: list[str],
    num_servers: int,
    rng: random.Random,
) -> Placement:
    """Assign relations to servers uniformly, each server getting >= 1.

    Raises if there are more servers than relations (some server would
    necessarily be empty).
    """
    if num_servers < 1:
        raise CatalogError("need at least one server")
    if len(relations) < num_servers:
        raise CatalogError(
            f"cannot give each of {num_servers} servers at least one of "
            f"{len(relations)} relations"
        )
    shuffled = list(relations)
    rng.shuffle(shuffled)
    assignments: dict[str, int] = {}
    # One guaranteed relation per server, then uniform for the rest.
    for server_index, relation in enumerate(shuffled[:num_servers]):
        assignments[relation] = server_index + 1
    for relation in shuffled[num_servers:]:
        assignments[relation] = rng.randint(1, num_servers)
    return Placement(assignments)


def replicate_placement(
    placement: Placement,
    factor: int,
    num_servers: int,
    rng: random.Random,
) -> Placement:
    """N-way replicate every relation of a placement across the servers.

    Each relation keeps its primary and gains ``factor - 1`` replica
    copies on distinct servers drawn uniformly (via ``rng.sample`` over
    the non-primary servers, in sorted relation order -- deterministic
    for a given rng seed).  ``factor=1`` returns the placement unchanged,
    so the read-only experiments are untouched.
    """
    if factor < 1:
        raise CatalogError(f"replication factor must be >= 1, got {factor}")
    if factor > num_servers:
        raise CatalogError(
            f"cannot place {factor} distinct copies on {num_servers} servers"
        )
    if factor == 1:
        return placement
    replicas: dict[str, tuple[int, ...]] = {}
    for relation in sorted(placement.assignments):
        primary = placement.server_of(relation)
        others = [s for s in range(1, num_servers + 1) if s != primary]
        replicas[relation] = tuple(sorted(rng.sample(others, factor - 1)))
    return Placement(dict(placement.assignments), replicas)
