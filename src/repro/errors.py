"""Exception hierarchy for the repro package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CatalogError",
    "PlanError",
    "IllFormedPlanError",
    "PolicyViolationError",
    "BindingError",
    "ExecutionError",
    "OptimizationError",
]


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """Invalid system, workload, or optimizer configuration."""


class CatalogError(ReproError):
    """Unknown relation, bad placement, or inconsistent statistics."""


class PlanError(ReproError):
    """Structurally invalid query plan."""


class IllFormedPlanError(PlanError):
    """Plan whose site annotations contain a cycle (section 2.2.3)."""


class PolicyViolationError(PlanError):
    """Annotation outside the policy's allowed set (Table 1)."""


class BindingError(PlanError):
    """Logical annotations could not be resolved to physical sites."""


class ExecutionError(ReproError):
    """Failure inside the simulated execution engine."""


class OptimizationError(ReproError):
    """Optimizer failed to produce a plan."""
