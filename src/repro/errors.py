"""Exception hierarchy for the repro package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CatalogError",
    "PlanError",
    "IllFormedPlanError",
    "PolicyViolationError",
    "BindingError",
    "ExecutionError",
    "OptimizationError",
    "SimulationError",
    "SqlError",
    "QueryShedError",
    "MemoryExhaustedError",
    "TransientFaultError",
    "SiteUnavailableError",
    "NetworkPartitionError",
    "QueryTimeoutError",
    "NoReachableReplicaError",
]


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """Invalid system, workload, or optimizer configuration."""


class CatalogError(ReproError):
    """Unknown relation, bad placement, or inconsistent statistics."""


class PlanError(ReproError):
    """Structurally invalid query plan."""


class IllFormedPlanError(PlanError):
    """Plan whose site annotations contain a cycle (section 2.2.3)."""


class PolicyViolationError(PlanError):
    """Annotation outside the policy's allowed set (Table 1)."""


class BindingError(PlanError):
    """Logical annotations could not be resolved to physical sites."""


class SqlError(ReproError):
    """Invalid SQL text: lexing, parsing, or name-resolution failure.

    ``line`` and ``column`` (both 1-based) locate the offending token in
    the original statement text; they are ``None`` only for errors that
    have no single source position (e.g. a whole-query semantic check).
    """

    def __init__(
        self, message: str, line: int | None = None, column: int | None = None
    ) -> None:
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class ExecutionError(ReproError):
    """Failure inside the simulated execution engine."""


class OptimizationError(ReproError):
    """Optimizer failed to produce a plan."""


class SimulationError(ReproError, RuntimeError):
    """Invalid use of the simulation kernel (double trigger, deadlock, ...).

    Subclasses :class:`RuntimeError` for backwards compatibility with code
    written against the kernel before it joined the :class:`ReproError`
    hierarchy.
    """


class QueryShedError(ExecutionError):
    """A server's admission controller rejected the query (queue full).

    Deliberately *not* a :class:`TransientFaultError`: shedding is an
    explicit load-control decision, not a fault, so the recovery loop does
    not retry it -- the workload layer records the query as shed instead.
    """

    def __init__(self, message: str, server_id: int | None = None) -> None:
        super().__init__(message)
        self.server_id = server_id


class MemoryExhaustedError(QueryShedError):
    """A join's buffer request cannot be satisfied by its site's memory pool.

    Raised by the *static* allocation path, whose plan-time grant sizes
    never queue: under concurrency the query is shed -- an explicit
    load-control outcome, exactly like an admission-queue rejection -- and
    never retried.  The dynamic memory broker raises this only for requests
    whose minimum exceeds the pool's total capacity (which no amount of
    waiting could fix); every other request queues instead.
    """

    def __init__(self, message: str, site_id: int | None = None) -> None:
        super().__init__(message, server_id=site_id)
        self.site_id = site_id


class TransientFaultError(ExecutionError):
    """A potentially recoverable runtime fault (crash, partition, timeout).

    The recovery loop in :class:`~repro.engine.executor.QueryExecutor`
    catches this branch of the hierarchy, aborts the running attempt, and
    retries (possibly after re-optimization); any other error still aborts
    the whole simulation.
    """


class SiteUnavailableError(TransientFaultError):
    """An operation touched a site that is currently crashed."""

    def __init__(self, message: str, site_id: int | None = None) -> None:
        super().__init__(message)
        self.site_id = site_id


class NetworkPartitionError(TransientFaultError):
    """A message could not be delivered: the network is down or too lossy."""


class QueryTimeoutError(TransientFaultError):
    """A query exceeded its per-query timeout (including all retries)."""


class NoReachableReplicaError(TransientFaultError):
    """A write found no reachable copy: primary and every replica are down.

    Transient because a restart schedule may bring a copy back; the
    recovery loop's bounded retries decide whether to wait it out.
    """

    def __init__(
        self,
        message: str,
        relation: str | None = None,
        servers: tuple[int, ...] = (),
    ) -> None:
        super().__init__(message)
        self.relation = relation
        self.servers = servers
