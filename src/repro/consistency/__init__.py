"""Cache consistency: page versions, protocols, and per-site counters.

The paper's world is read-only, so PR 5's dynamic client buffer cache can
never go stale.  This package opens the write axis: a global
:class:`VersionTable` stamps every committed page write, and a pluggable
:class:`ConsistencyManager` decides how client caches find out --
**invalidation callbacks** (the server broadcasts invalidations at commit)
or **detection on access** (clients validate versions against the server
on every cache hit).  Both guarantee that a stale page is never served to
a query; they differ only in where the traffic lands (write path vs read
path), which is exactly the tradeoff the read/write-mix sweep measures.
"""

from repro.consistency.config import PROTOCOL_NAMES, ConsistencyConfig
from repro.consistency.protocol import (
    ConsistencyManager,
    DetectionProtocol,
    InvalidationProtocol,
    make_protocol,
)
from repro.consistency.stats import ConsistencyStats
from repro.consistency.versions import VersionTable

__all__ = [
    "PROTOCOL_NAMES",
    "ConsistencyConfig",
    "ConsistencyManager",
    "ConsistencyStats",
    "DetectionProtocol",
    "InvalidationProtocol",
    "VersionTable",
    "make_protocol",
]
