"""The global page version table.

One logical version number per ``(relation, page index)``, bumped by every
committed write to that page.  Pages never written sit at version 0, which
is also what :class:`~repro.caching.buffer.BufferCache` stamps on pages
admitted outside any consistency protocol -- so read-only runs never see a
version mismatch.

This is *simulation bookkeeping*, not a simulated data structure: reading
it costs no simulated time.  The protocols decide what version traffic
(callbacks, validation round trips) actually goes on the wire.
"""

from __future__ import annotations

__all__ = ["VersionTable"]


class VersionTable:
    """Monotonic per-page versions, keyed ``(relation, page index)``."""

    def __init__(self) -> None:
        self._versions: dict[tuple[str, int], int] = {}
        #: Total bumps across all pages (diagnostic).
        self.total_writes = 0

    def version(self, relation: str, page_index: int) -> int:
        return self._versions.get((relation, page_index), 0)

    def bump(self, relation: str, page_index: int) -> int:
        """Commit one write to a page; returns the new version."""
        key = (relation, page_index)
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        self.total_writes += 1
        return version

    def __len__(self) -> int:
        return len(self._versions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VersionTable pages={len(self)} writes={self.total_writes}>"
