"""Cache-consistency protocols: invalidation callbacks vs detection on access.

A :class:`ConsistencyManager` sits on the topology (``topology.consistency``,
None in read-only runs) and owns the global :class:`VersionTable`.  Writes
call :meth:`ConsistencyManager.commit_write`; client scans call
:meth:`ConsistencyManager.validate_hit` before serving a cached page.

The invariant both protocols uphold -- asserted by the consistency tests --
is that a stale page is **never served**: ``validate_hit`` compares the
cached version stamp against the version table on every hit, so even a
page that a callback has not reached yet (the callback messages are real
simulated traffic and take wire time) is detected locally, counted as a
``stale_hit``, dropped from the cache, and re-faulted from the server.
``stale_served`` exists only to prove the negative: nothing ever
increments it on a correct protocol.
"""

from __future__ import annotations

import typing

from repro.consistency.config import ConsistencyConfig
from repro.consistency.versions import VersionTable
from repro.errors import ConfigurationError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.site import Site
    from repro.hardware.topology import Topology

__all__ = [
    "ConsistencyManager",
    "InvalidationProtocol",
    "DetectionProtocol",
    "make_protocol",
]


class ConsistencyManager:
    """Base protocol: version bookkeeping plus the two hook points."""

    name = "?"

    def __init__(self, topology: "Topology") -> None:
        self.topology = topology
        self.versions = VersionTable()
        #: Stale pages returned to a query.  Must stay 0; the read/write
        #: tests assert it (the protocols detect staleness instead).
        self.stale_served = 0
        #: Monotonic commit counter, bumped once per :meth:`commit_write`.
        #: The session memoizer folds it into its memo key so any committed
        #: write (which may have shifted version stamps or cache contents
        #: anywhere) conservatively invalidates every recorded tape.
        self.epoch = 0

    def current_version(self, relation: str, page_index: int) -> int:
        return self.versions.version(relation, page_index)

    # ------------------------------------------------------------------
    # Hook points
    # ------------------------------------------------------------------
    def commit_write(
        self, primary: "Site", relation: str, page_indexes: typing.Sequence[int]
    ) -> typing.Generator:
        """Commit written pages at the acting primary (simulation process)."""
        raise NotImplementedError

    def validate_hit(
        self, client: "Site", home: "Site", relation: str, page_index: int
    ) -> typing.Generator:
        """Decide whether a cache hit may be served (returns bool).

        A False return means the cached copy was stale: the page has been
        invalidated and counted, and the caller must fall through to the
        demand-paging fault path.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _check_freshness(
        self, client: "Site", relation: str, page_index: int
    ) -> bool:
        """Local version compare; drops and counts a stale copy."""
        cache = client.buffer_cache
        assert cache is not None
        cached = cache.version_of(relation, page_index)
        if cached == self.versions.version(relation, page_index):
            return True
        client.consistency.stale_hits += 1
        cache.invalidate(relation, page_index)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} versions={len(self.versions)}>"


class InvalidationProtocol(ConsistencyManager):
    """Server-initiated callbacks: commit broadcasts invalidations.

    Commit order matters: versions are bumped *first*, then the callbacks
    go out.  A client that faults the page mid-broadcast therefore admits
    it at the new version (fresh); a client the callback has not reached
    yet fails the local version compare on its next hit and re-faults.
    Either way no stale page is served.
    """

    name = "invalidation"

    def commit_write(
        self, primary: "Site", relation: str, page_indexes: typing.Sequence[int]
    ) -> typing.Generator:
        network = self.topology.network
        tracer = self.topology.env.tracer
        self.epoch += 1
        for index in page_indexes:
            self.versions.bump(relation, index)
        span = None
        if tracer is not None:
            span = tracer.begin(
                f"invalidate[{relation}]",
                cat="consistency",
                args={"relation": relation, "pages": len(page_indexes)},
            )
        try:
            for index in page_indexes:
                for client in self.topology.clients:
                    cache = client.buffer_cache
                    if cache is None or not cache.contains(relation, index):
                        continue
                    yield from network.send_request(primary, client)
                    if cache.invalidate(relation, index):
                        client.consistency.invalidations += 1
        finally:
            if tracer is not None:
                tracer.end(span)

    def validate_hit(
        self, client: "Site", home: "Site", relation: str, page_index: int
    ) -> typing.Generator:
        # Callbacks keep caches clean, so hits are free; the local compare
        # only catches the callback-in-flight window.
        return self._check_freshness(client, relation, page_index)
        yield  # pragma: no cover - generator protocol


class DetectionProtocol(ConsistencyManager):
    """Client-initiated validation: every cache hit checks with the server.

    Commit is cheap (version bumps only); the read path pays one control
    round trip per hit to ask the owning server whether its cached version
    is still current.
    """

    name = "detection"

    def commit_write(
        self, primary: "Site", relation: str, page_indexes: typing.Sequence[int]
    ) -> typing.Generator:
        self.epoch += 1
        for index in page_indexes:
            self.versions.bump(relation, index)
        return
        yield  # pragma: no cover - generator protocol

    def validate_hit(
        self, client: "Site", home: "Site", relation: str, page_index: int
    ) -> typing.Generator:
        network = self.topology.network
        tracer = self.topology.env.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                f"validate[{relation}#{page_index}]",
                cat="consistency",
                args={"relation": relation, "page": page_index},
            )
        try:
            yield from network.send_request(client, home)
            yield from network.send_request(home, client)
        finally:
            if tracer is not None:
                tracer.end(span)
        client.consistency.validations += 1
        return self._check_freshness(client, relation, page_index)


def make_protocol(
    config: "ConsistencyConfig | str", topology: "Topology"
) -> ConsistencyManager:
    """Instantiate the configured protocol for one topology."""
    if isinstance(config, str):
        config = ConsistencyConfig(protocol=config)
    if config.protocol == "invalidation":
        return InvalidationProtocol(topology)
    if config.protocol == "detection":
        return DetectionProtocol(topology)
    raise ConfigurationError(
        f"unknown consistency protocol {config.protocol!r}"
    )  # pragma: no cover - ConsistencyConfig already validates
