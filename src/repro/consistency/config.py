"""Configuration of the cache-consistency protocol."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ConsistencyConfig", "PROTOCOL_NAMES"]

PROTOCOL_NAMES = ("invalidation", "detection")


@dataclass(frozen=True)
class ConsistencyConfig:
    """How client caches learn about server-side writes.

    ``invalidation``: the server broadcasts invalidation callbacks to every
    client caching a written page at commit time -- cache hits then cost
    nothing extra, writes pay one control message per remote cached copy.

    ``detection``: clients validate the version of every cached page
    against the owning server on access -- writes are cheap, every cache
    hit pays a validation round trip.
    """

    protocol: str = "invalidation"

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOL_NAMES:
            raise ConfigurationError(
                f"unknown consistency protocol {self.protocol!r}; "
                f"choose from {PROTOCOL_NAMES}"
            )
