"""Per-site consistency counters.

Every site carries one :class:`ConsistencyStats` (always present, all
zeros in read-only runs) so the metrics registry can expose
``site.<name>.consistency.*`` gauges unconditionally -- the same pattern
the buffer-cache gauges use.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConsistencyStats"]


@dataclass
class ConsistencyStats:
    """Counters for one site's share of the consistency protocol.

    Clients count ``invalidations`` (callback messages that dropped one of
    their cached pages), ``validations`` (version checks against the
    server on cache hits), and ``stale_hits`` (hits whose cached version
    was behind -- detected, dropped, and re-faulted, never served).
    Servers count ``write_pages`` (pages physically written to their copy,
    primary or replica).
    """

    invalidations: int = 0
    validations: int = 0
    stale_hits: int = 0
    write_pages: int = 0
