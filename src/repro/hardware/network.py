"""Network model: a single FIFO queue with a configured bandwidth.

As in the paper (section 3.2.2), "the network is modeled simply as a FIFO
queue with a specified bandwidth; the details of a particular technology
(i.e., Ethernet, ATM, etc.) are not modeled."  The cost of a message is the
time-on-the-wire (size / bandwidth) plus fixed and size-dependent CPU costs
at both endpoints (``MsgInst`` and ``PerSizeMI``).

The network also keeps the study's first metric: the number of *data pages*
sent during a query (control messages are counted separately).
"""

from __future__ import annotations

import typing

from repro.config import SystemConfig
from repro.sim import Environment, Resource

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.site import Site

__all__ = ["Network"]


class Network:
    """The shared interconnect between the client and all servers."""

    def __init__(self, env: Environment, config: SystemConfig) -> None:
        self.env = env
        self.config = config
        self._wire = Resource(env, capacity=1, name="network")
        self.data_pages_sent = 0
        self.control_messages_sent = 0
        self.bytes_sent = 0

    def send(
        self,
        source: "Site",
        destination: "Site",
        num_bytes: int,
        data_pages: int = 0,
    ) -> typing.Generator:
        """Ship one message from ``source`` to ``destination``.

        Charges the sender CPU, holds the wire for the time-on-the-wire, then
        charges the receiver CPU.  ``data_pages`` is the number of full data
        pages carried (for the pages-sent metric); pass 0 for control
        messages.
        """
        if source is destination:
            # Local hand-off: no message costs at all.
            return
        cpu_instr = self.config.message_cpu_instructions(num_bytes)
        yield from source.cpu.execute(cpu_instr)
        yield from self._wire.serve(self.config.wire_time(num_bytes))
        yield from destination.cpu.execute(cpu_instr)
        self.bytes_sent += num_bytes
        if data_pages:
            self.data_pages_sent += data_pages
        else:
            self.control_messages_sent += 1

    def send_page(self, source: "Site", destination: "Site") -> typing.Generator:
        """Ship one full data page."""
        yield from self.send(source, destination, self.config.page_size, data_pages=1)

    def send_request(self, source: "Site", destination: "Site") -> typing.Generator:
        """Ship one small control message (e.g. a page-fault request)."""
        yield from self.send(source, destination, self.config.request_message_bytes)

    def utilization(self) -> float:
        """Busy fraction of the wire since time zero."""
        return self._wire.utilization()

    def reset_counters(self) -> None:
        """Zero the traffic counters (used between benchmark repetitions)."""
        self.data_pages_sent = 0
        self.control_messages_sent = 0
        self.bytes_sent = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Network pages_sent={self.data_pages_sent}>"
