"""Network model: a single FIFO queue with a configured bandwidth.

As in the paper (section 3.2.2), "the network is modeled simply as a FIFO
queue with a specified bandwidth; the details of a particular technology
(i.e., Ethernet, ATM, etc.) are not modeled."  The cost of a message is the
time-on-the-wire (size / bandwidth) plus fixed and size-dependent CPU costs
at both endpoints (``MsgInst`` and ``PerSizeMI``).

The network also keeps the study's first metric: the number of *data pages*
sent during a query (control messages are counted separately).
"""

from __future__ import annotations

import random
import typing

from repro.config import SystemConfig
from repro.errors import NetworkPartitionError
from repro.sim import Environment, Resource

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.site import Site

__all__ = ["Network"]

#: Consecutive retransmissions of one message before the link is declared
#: partitioned (the sender gives up, as a transport layer eventually would).
MAX_RETRANSMITS = 8


class Network:
    """The shared interconnect between the client and all servers."""

    def __init__(self, env: Environment, config: SystemConfig) -> None:
        self.env = env
        self.config = config
        self._wire = Resource(env, capacity=1, name="network")
        self._wire.trace_cat = "net"
        self.data_pages_sent = 0
        self.control_messages_sent = 0
        self.bytes_sent = 0
        # Per-message-size (cpu instructions, raw wire seconds) pairs; the
        # config is immutable, degradation multiplies on top per send.
        self._cost_cache: dict[int, tuple[float, float]] = {}
        # Fault state (driven by the fault injector; healthy by default).
        self.up = True
        self.degradation_factor = 1.0
        self.drop_probability = 0.0
        self.drop_rng: random.Random | None = None
        self.outage_count = 0
        self.messages_dropped = 0

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def set_down(self) -> None:
        """Begin a network outage: new and in-flight messages fail."""
        if self.up:
            self.up = False
            self.outage_count += 1

    def set_up(self) -> None:
        self.up = True

    def degrade(self, factor: float) -> None:
        """Divide effective bandwidth by ``factor`` (1.0 restores it)."""
        self.degradation_factor = factor

    def configure_drops(self, probability: float, rng: random.Random) -> None:
        """Drop each page-sized transmission with ``probability`` (seeded)."""
        self.drop_probability = probability
        self.drop_rng = rng

    def check_available(self) -> None:
        """Raise :class:`NetworkPartitionError` during an outage."""
        if not self.up:
            raise NetworkPartitionError(
                f"network outage at t={self.env.now:.6f}: message undeliverable"
            )

    def send(
        self,
        source: "Site",
        destination: "Site",
        num_bytes: int,
        data_pages: int = 0,
    ) -> typing.Generator:
        """Ship one message from ``source`` to ``destination``.

        Charges the sender CPU, holds the wire for the time-on-the-wire, then
        charges the receiver CPU.  ``data_pages`` is the number of full data
        pages carried (for the pages-sent metric); pass 0 for control
        messages.

        Faults: an outage (or a crash of either endpoint) before or during
        the transfer raises the matching :class:`TransientFaultError`; a
        lossy link retransmits (re-charging the wire) up to
        :data:`MAX_RETRANSMITS` times before giving up.
        """
        if source is destination:
            # Local hand-off: no message costs at all.
            return
        recorder = self.env.recorder
        token = None
        if recorder is not None:
            # Record the whole message as ONE op (the replay re-issues the
            # full send); the token suppresses the nested endpoint-CPU
            # recordings that would otherwise double-charge on replay.
            token = recorder.record_net(source, destination, num_bytes, data_pages)
        try:
            self.check_available()
            source.check_available()
            destination.check_available()
            cpu_instr = self.config.message_cpu_instructions(num_bytes)
            yield from source.cpu.execute(cpu_instr)
            transmissions = 0
            while True:
                transmissions += 1
                yield from self._wire.serve(
                    self.config.wire_time(num_bytes) * self.degradation_factor
                )
                # The wire time has been spent even if the message is lost.
                self.check_available()
                source.check_available()
                destination.check_available()
                if not self._dropped():
                    break
                self.messages_dropped += 1
                if transmissions > MAX_RETRANSMITS:
                    raise NetworkPartitionError(
                        f"message dropped {transmissions} times in a row "
                        f"(drop probability {self.drop_probability:g}); giving up"
                    )
            yield from destination.cpu.execute(cpu_instr)
            self.bytes_sent += num_bytes
            if data_pages:
                self.data_pages_sent += data_pages
            else:
                self.control_messages_sent += 1
        finally:
            if token is not None:
                recorder.end_net(token)

    def _dropped(self) -> bool:
        return (
            self.drop_probability > 0.0
            and self.drop_rng is not None
            and self.drop_rng.random() < self.drop_probability
        )

    def send_flat(
        self,
        source: "Site",
        destination: "Site",
        num_bytes: int,
        data_pages: int = 0,
    ) -> typing.Generator:
        """One-frame equivalent of :meth:`send` -- the batched-transfer path.

        The hot shipping paths (page faults, exchange pipelines,
        write-through replication) run page streams through here: the
        sender-CPU / wire / receiver-CPU hops of a message are flattened
        into a single generator frame, each uncontended hop booked on its
        resource's virtual clock.  The event sequence, grant instants,
        counters, and monitor float arithmetic are identical to
        :meth:`send` (the equivalence tests diff whole figure runs);
        anything the flat frame cannot reproduce exactly -- fastpath off,
        tracing, an outage in progress, a lossy link -- delegates.
        """
        env = self.env
        if (
            not env.fastpath
            or env.tracer is not None
            or not self.up
            or self.drop_probability > 0.0
        ):
            yield from self.send(source, destination, num_bytes, data_pages)
            return
        if source is destination:
            return
        recorder = env.recorder
        token = None
        if recorder is not None:
            token = recorder.record_net(source, destination, num_bytes, data_pages)
        try:
            # Availability can only be False once the fault injector has
            # acted, and the first fault sets env.fault_aware for good --
            # so the healthy steady state skips all six checks per message.
            # (Re-read at the post-wire checkpoint: an outage can begin
            # while this message is mid-flight.)
            if env.fault_aware:
                self.check_available()
                source.check_available()
                destination.check_available()
            costs = self._cost_cache.get(num_bytes)
            if costs is None:
                costs = (
                    self.config.message_cpu_instructions(num_bytes),
                    self.config.wire_time(num_bytes),
                )
                self._cost_cache[num_bytes] = costs
            cpu_instr, wire_raw = costs
            if cpu_instr:
                cpu = source.cpu
                cpu.instructions_executed += cpu_instr
                res = cpu._resource
                if res.capacity == 1 and not res._in_service and not res._queue:
                    # seconds_for() inlined: two endpoint hops per message.
                    end = res._book(cpu_instr / (cpu.mips * 1e6))
                    try:
                        yield end - env._now
                    finally:
                        res._settle()
                else:
                    yield from res.serve(cpu.seconds_for(cpu_instr))
            wire = self._wire
            duration = wire_raw * self.degradation_factor
            if wire.capacity == 1 and not wire._in_service and not wire._queue:
                end = wire._book(duration)
                try:
                    yield end - env._now
                finally:
                    wire._settle()
            else:
                yield from wire.serve(duration)
            if env.fault_aware:
                self.check_available()
                source.check_available()
                destination.check_available()
            if cpu_instr:
                cpu = destination.cpu
                cpu.instructions_executed += cpu_instr
                res = cpu._resource
                if res.capacity == 1 and not res._in_service and not res._queue:
                    # seconds_for() inlined: two endpoint hops per message.
                    end = res._book(cpu_instr / (cpu.mips * 1e6))
                    try:
                        yield end - env._now
                    finally:
                        res._settle()
                else:
                    yield from res.serve(cpu.seconds_for(cpu_instr))
            self.bytes_sent += num_bytes
            if data_pages:
                self.data_pages_sent += data_pages
            else:
                self.control_messages_sent += 1
        finally:
            if token is not None:
                recorder.end_net(token)

    def send_page(self, source: "Site", destination: "Site") -> typing.Generator:
        """Ship one full data page."""
        yield from self.send_flat(source, destination, self.config.page_size, data_pages=1)

    def send_request(self, source: "Site", destination: "Site") -> typing.Generator:
        """Ship one small control message (e.g. a page-fault request)."""
        yield from self.send_flat(source, destination, self.config.request_message_bytes)

    def utilization(self) -> float:
        """Busy fraction of the wire since time zero."""
        return self._wire.utilization()

    @property
    def busy_time(self) -> float:
        """Accumulated busy time of the wire (for interval utilization)."""
        return self._wire.busy_time

    def reset_counters(self) -> None:
        """Zero the traffic counters (used between benchmark repetitions)."""
        self.data_pages_sent = 0
        self.control_messages_sent = 0
        self.bytes_sent = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Network pages_sent={self.data_pages_sent}>"
