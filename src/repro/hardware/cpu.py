"""CPU model: a FIFO queue serving instruction bursts at a MIPS rating."""

from __future__ import annotations

import typing

from repro.sim import Environment, Resource

__all__ = ["CPU"]


class CPU:
    """A site CPU, modelled (as in the paper) as a FIFO queue.

    Work is expressed in instructions; the MIPS rating converts instructions
    to simulated seconds.  ``yield from cpu.execute(n)`` runs ``n``
    instructions, queueing FIFO behind other bursts.
    """

    def __init__(self, env: Environment, mips: float, name: str = "cpu") -> None:
        if mips <= 0:
            raise ValueError(f"mips must be positive, got {mips}")
        self.env = env
        self.mips = mips
        self.name = name
        self._resource = Resource(env, capacity=1, name=name)
        self._resource.trace_cat = "cpu"
        self.instructions_executed = 0.0

    def seconds_for(self, instructions: float) -> float:
        """Convert an instruction count to CPU-seconds."""
        return instructions / (self.mips * 1e6)

    def execute(self, instructions: float) -> typing.Generator:
        """Run ``instructions`` instructions on this CPU (FIFO queueing)."""
        if instructions < 0:
            raise ValueError(f"negative instruction count: {instructions}")
        if instructions == 0:
            return
        recorder = self.env.recorder
        if recorder is not None:
            recorder.record_cpu(self, instructions)
        self.instructions_executed += instructions
        yield from self._resource.serve(self.seconds_for(instructions))

    def utilization(self) -> float:
        """Fraction of simulated time this CPU has been busy."""
        return self._resource.utilization()

    @property
    def busy_time(self) -> float:
        """Accumulated busy CPU-seconds (including an open busy interval)."""
        return self._resource.busy_time

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CPU {self.name!r} {self.mips} MIPS>"
