"""Simulated hardware: CPUs, disks, the network, and site/topology wiring.

These map one-to-one onto the resources of the paper's simulator (section
3.2.2): a FIFO CPU per site rated in MIPS, one or more disks per site with a
detailed seek/rotation/transfer model (elevator scheduling, controller cache,
read-ahead), and a single shared FIFO network of configurable bandwidth.
"""

from repro.hardware.cpu import CPU
from repro.hardware.disk import Disk, DiskRequest
from repro.hardware.network import Network
from repro.hardware.site import (
    CLIENT_SITE_ID,
    Site,
    SiteKind,
    client_site_id,
    is_client_site_id,
)
from repro.hardware.topology import Topology

__all__ = [
    "CLIENT_SITE_ID",
    "CPU",
    "Disk",
    "DiskRequest",
    "Network",
    "Site",
    "SiteKind",
    "Topology",
    "client_site_id",
    "is_client_site_id",
]
