"""Topology: one or more clients plus one or more servers on a shared network.

The paper configures its simulator as "a client-server system consisting of
a single client and one or more servers" (section 3.2.1) and models other
clients only as extra load on server resources (see
:mod:`repro.engine.loadgen`).  This reproduction goes further: a topology
instantiates ``config.num_clients`` full client sites -- each with its own
CPU, disk, buffer memory, and disk cache -- so that concurrent query
streams genuinely contend on the shared servers and network (see
:mod:`repro.workload`).

Site ids: the first client is :data:`~repro.hardware.site.CLIENT_SITE_ID`
(0), additional clients occupy -1, -2, ...; servers are 1..num_servers.
"""

from __future__ import annotations

import random
import typing

from repro.config import SystemConfig
from repro.errors import ConfigurationError
from repro.hardware.network import Network
from repro.hardware.site import Site, SiteKind, client_site_id
from repro.obs.metrics import MetricsRegistry, register_topology_metrics
from repro.sim import Environment

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.consistency.protocol import ConsistencyManager

__all__ = ["Topology"]


class Topology:
    """The simulated machines of one experiment run."""

    def __init__(self, env: Environment, config: SystemConfig, seed: int = 0) -> None:
        self.env = env
        self.config = config
        self.rng = random.Random(seed)
        self.network = Network(env, config)
        self.clients = [
            Site(env, config, client_site_id(ordinal), SiteKind.CLIENT, self.rng)
            for ordinal in range(config.num_clients)
        ]
        self.servers = [
            Site(env, config, server_id, SiteKind.SERVER, self.rng)
            for server_id in range(1, config.num_servers + 1)
        ]
        self._sites = {site.site_id: site for site in [*self.clients, *self.servers]}
        # Cache-consistency manager; None in read-only runs (the workload
        # layer attaches one when a write mix is configured), so pure-read
        # executions are event-for-event identical to the pre-write engine.
        self.consistency: "ConsistencyManager | None" = None
        # Every hardware statistic, exposed under hierarchical dotted names
        # (site.server1.disk0.pages_read, network.bytes_sent, ...); results
        # snapshot this registry into their `profile` field.
        self.metrics = MetricsRegistry()
        register_topology_metrics(self.metrics, self)

    @property
    def client(self) -> Site:
        """The first client site (the only one in single-client runs)."""
        return self.clients[0]

    @property
    def sites(self) -> list[Site]:
        """All sites, clients first."""
        return [*self.clients, *self.servers]

    def site(self, site_id: int) -> Site:
        """Look a site up by id (0, -1, -2, ... are clients)."""
        try:
            return self._sites[site_id]
        except KeyError:
            raise ConfigurationError(f"unknown site id {site_id}") from None

    def server_storing(self, relation: str) -> Site:
        """The server holding the primary copy of ``relation``."""
        for server in self.servers:
            if server.stores(relation):
                return server
        raise ConfigurationError(f"no server stores relation {relation!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Topology clients={len(self.clients)} servers={len(self.servers)}>"
