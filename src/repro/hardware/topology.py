"""Topology: one client plus one or more servers on a shared network.

The paper configures its simulator as "a client-server system consisting of
a single client and one or more servers" (section 3.2.1); multiple clients
are modelled by adding load to server resources (see
:mod:`repro.engine.loadgen`).
"""

from __future__ import annotations

import random

from repro.config import SystemConfig
from repro.errors import ConfigurationError
from repro.hardware.network import Network
from repro.hardware.site import CLIENT_SITE_ID, Site, SiteKind
from repro.sim import Environment

__all__ = ["Topology"]


class Topology:
    """The simulated machines of one experiment run."""

    def __init__(self, env: Environment, config: SystemConfig, seed: int = 0) -> None:
        self.env = env
        self.config = config
        self.rng = random.Random(seed)
        self.network = Network(env, config)
        self.client = Site(env, config, CLIENT_SITE_ID, SiteKind.CLIENT, self.rng)
        self.servers = [
            Site(env, config, server_id, SiteKind.SERVER, self.rng)
            for server_id in range(1, config.num_servers + 1)
        ]
        self._sites = {site.site_id: site for site in [self.client, *self.servers]}

    @property
    def sites(self) -> list[Site]:
        """All sites, client first."""
        return [self.client, *self.servers]

    def site(self, site_id: int) -> Site:
        """Look a site up by id (0 is the client)."""
        try:
            return self._sites[site_id]
        except KeyError:
            raise ConfigurationError(f"unknown site id {site_id}") from None

    def server_storing(self, relation: str) -> Site:
        """The server holding the primary copy of ``relation``."""
        for server in self.servers:
            if server.stores(relation):
                return server
        raise ConfigurationError(f"no server stores relation {relation!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Topology servers={len(self.servers)}>"
