"""Sites: client and server machines.

Clients and servers "are similar in that they both have memory, CPU, disk
resources, a buffer manager, and a query execution engine" (section 3.2.1),
but differ in role: queries are submitted and displayed at the client, whose
disk holds only cached copies and temporary join storage; servers manage the
primary copies of relations (each on exactly one server -- no declustering,
no replication) and also use their disks for join temp space.
"""

from __future__ import annotations

import enum
import random
import typing

from repro.config import SystemConfig
from repro.consistency.stats import ConsistencyStats
from repro.errors import CatalogError, SiteUnavailableError
from repro.hardware.cpu import CPU
from repro.hardware.disk import Disk
from repro.sim import Environment
from repro.storage.cache import ClientDiskCache
from repro.storage.layout import Extent, ExtentAllocator
from repro.storage.memory import MemoryBroker

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.caching.buffer import BufferCache

__all__ = [
    "Site",
    "SiteKind",
    "TempFile",
    "CLIENT_SITE_ID",
    "client_site_id",
    "is_client_site_id",
    "site_name",
]

#: Site id of the first (and, in single-client runs, only) client.
CLIENT_SITE_ID = 0


def client_site_id(ordinal: int) -> int:
    """Site id of client number ``ordinal`` (0-based).

    Clients occupy the non-positive ids (0, -1, -2, ...) so that server ids
    stay 1..num_servers regardless of how many clients are simulated.
    """
    if ordinal < 0:
        raise CatalogError(f"client ordinal must be >= 0, got {ordinal}")
    return -ordinal


def is_client_site_id(site_id: int) -> bool:
    """True for ids in the client range (servers are strictly positive)."""
    return site_id <= 0


def site_name(site_id: int) -> str:
    """Canonical display name of a site id (shared with :class:`Site`).

    Used wherever a site must be named without a live topology -- e.g.
    operator labels generated while planning (``scan[RelA]@server1``).
    """
    if site_id > 0:
        return f"server{site_id}"
    return "client" if site_id == CLIENT_SITE_ID else f"client{-site_id}"


class SiteKind(enum.Enum):
    CLIENT = "client"
    SERVER = "server"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class TempFile:
    """A temporary disk extent (e.g. one hybrid-hash partition file)."""

    __slots__ = ("site", "disk_index", "extent", "_released", "pages_written")

    def __init__(self, site: "Site", disk_index: int, extent: Extent) -> None:
        self.site = site
        self.disk_index = disk_index
        self.extent = extent
        self._released = False
        self.pages_written = 0

    @property
    def disk(self) -> Disk:
        return self.site.disks[self.disk_index]

    def page(self, index: int) -> int:
        return self.extent.page(index)

    def release(self) -> None:
        """Free the extent (idempotent)."""
        if not self._released:
            recorder = self.site.env.recorder
            if recorder is not None:
                recorder.record_tfree(self)
            self.site.allocators[self.disk_index].free(self.extent)
            self._released = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TempFile site={self.site.site_id} pages={self.extent.pages}>"


class Site:
    """One machine: CPU, disk(s), buffer memory, and stored relations."""

    def __init__(
        self,
        env: Environment,
        config: SystemConfig,
        site_id: int,
        kind: SiteKind,
        rng: random.Random,
    ) -> None:
        self.env = env
        self.config = config
        self.site_id = site_id
        self.kind = kind
        # Client ordinal i has id -i; the first client keeps the
        # historical bare name "client".
        self.name = site_name(site_id)
        self.cpu = CPU(env, config.mips, name=f"{self.name}.cpu")
        self.disks = [
            Disk(
                env,
                config.disk,
                name=f"{self.name}.disk{d}",
                rng=random.Random(rng.randrange(2**62)),
            )
            for d in range(config.num_disks)
        ]
        self.allocators = [ExtentAllocator(config.disk.capacity_pages) for _ in self.disks]
        memory_pages = (
            config.client_memory_pages if kind is SiteKind.CLIENT else config.server_memory_pages
        )
        # Always a broker: static-mode joins use the legacy allocate/release
        # surface it inherits, dynamic-mode joins the grant/queue surface.
        self.memory = MemoryBroker(
            env,
            memory_pages,
            name=f"{self.name}.memory",
            reclaim_enabled=config.memory.reclaim,
        )
        env.debug_dumpers.append(self.memory.describe_pressure)
        # Primary copies stored at this site: relation -> (disk index, extent).
        self._relations: dict[str, tuple[int, Extent]] = {}
        self._next_disk = 0
        # Client-only disk cache (servers do no inter-query caching, 3.2.1).
        self.cache = ClientDiskCache(self.allocators[0]) if kind is SiteKind.CLIENT else None
        # Dynamic buffer cache (client-only); created by Catalog.install when
        # the config's cache mode is "dynamic".  When set, it supersedes the
        # static prefix cache for this client's scans.
        self.buffer_cache: "BufferCache | None" = None
        # Consistency-protocol counters (all zero in read-only runs):
        # clients count invalidations/validations/stale hits, servers
        # count pages written to their copy.
        self.consistency = ConsistencyStats()
        # Availability (driven by the fault injector; always up by default).
        self.up = True
        self.crash_count = 0
        self.total_downtime = 0.0
        self._down_since: float | None = None

    @property
    def is_client(self) -> bool:
        return self.kind is SiteKind.CLIENT

    # ------------------------------------------------------------------
    # Availability
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Take the site down; every in-flight disk request fails.

        Volatile state (CPU queue, controller caches) is conceptually lost;
        at the page granularity the engine models, failing outstanding I/O
        and refusing new work until :meth:`restart` captures that.
        """
        if self.is_client:
            raise SiteUnavailableError("the client site cannot crash", self.site_id)
        if not self.up:
            return
        self.up = False
        self.crash_count += 1
        self._down_since = self.env.now
        for disk in self.disks:
            disk.power_off(self.unavailable_error)

    def restart(self) -> None:
        """Bring a crashed site back up (primary copies survive on disk)."""
        if self.up:
            return
        self.up = True
        if self._down_since is not None:
            self.total_downtime += self.env.now - self._down_since
            self._down_since = None
        for disk in self.disks:
            disk.power_on()

    def unavailable_error(self) -> SiteUnavailableError:
        return SiteUnavailableError(
            f"site {self.name!r} is down (crashed at t={self._down_since})",
            self.site_id,
        )

    def check_available(self) -> None:
        """Raise :class:`SiteUnavailableError` if this site is crashed."""
        if not self.up:
            raise self.unavailable_error()

    @property
    def disk(self) -> Disk:
        """The site's first (usually only) disk."""
        return self.disks[0]

    # ------------------------------------------------------------------
    # Primary copies
    # ------------------------------------------------------------------
    def store_relation(self, relation: str, pages: int) -> Extent:
        """Allocate disk space for a copy (primary or replica) of ``relation``."""
        if self.is_client:
            raise CatalogError("no primary copies are stored at the client (section 3.2.1)")
        if relation in self._relations:
            raise CatalogError(f"relation {relation!r} already stored at {self.name}")
        disk_index = self._next_disk
        self._next_disk = (self._next_disk + 1) % len(self.disks)
        extent = self.allocators[disk_index].allocate(pages)
        self._relations[relation] = (disk_index, extent)
        return extent

    def relation_location(self, relation: str) -> tuple[int, Extent]:
        """Disk index and extent of a relation's primary copy at this site."""
        try:
            return self._relations[relation]
        except KeyError:
            raise CatalogError(f"relation {relation!r} is not stored at {self.name}") from None

    def stores(self, relation: str) -> bool:
        return relation in self._relations

    @property
    def stored_relations(self) -> list[str]:
        return sorted(self._relations)

    # ------------------------------------------------------------------
    # Temporary storage
    # ------------------------------------------------------------------
    def allocate_temp(self, pages: int, disk_index: int = 0) -> TempFile:
        """Carve a temp file (join partition, spooled stream) on a disk."""
        extent = self.allocators[disk_index].allocate(pages)
        temp = TempFile(self, disk_index, extent)
        recorder = self.env.recorder
        if recorder is not None:
            recorder.record_temp(self, temp, pages, disk_index)
        return temp

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Site {self.name!r}>"
