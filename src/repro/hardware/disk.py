"""Detailed disk model: elevator scheduling, controller cache, read-ahead.

Adapted, like the paper's simulator, from the ZetaSim disk model [Bro92]:

- geometry of cylinders, tracks and pages (pages are the unit of I/O);
- seek time as a base cost plus a per-cylinder travel cost;
- rotational latency, skipped when a request continues a sequential stream
  (the head is already positioned just past the previous page);
- a controller cache holding recently read and prefetched pages;
- track read-ahead: after a sequential read the controller keeps reading the
  rest of the track into its cache;
- elevator (SCAN) scheduling over pending requests.

"The important aspect of the disk model is that it captures the cost
differences between sequential and random I/Os" (section 3.2.2).  The
defaults in :class:`repro.config.DiskParams` are calibrated so that the
measured averages match the paper: about 3.5 ms per page sequential and
11.8 ms per page random.
"""

from __future__ import annotations

import random
import typing
from collections import OrderedDict

from repro.config import DiskParams
from repro.sim import Environment, Event, RequestPool, UtilizationMonitor

__all__ = ["Disk", "DiskRequest"]


class DiskRequest:
    """One page read or write, with an event that fires on completion."""

    __slots__ = ("kind", "page", "done", "submitted_at", "op")

    def __init__(self, env: Environment, kind: str, page: int) -> None:
        if kind not in ("read", "write"):
            raise ValueError(f"unknown disk request kind: {kind!r}")
        self.kind = kind
        self.page = page
        self.done = Event(env)
        self.submitted_at = env._now
        # Label of the operator the request runs on behalf of; stamped at
        # submit time (requests are served by the disk's own process, which
        # would otherwise lose the attribution).
        self.op: str | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DiskRequest {self.kind} page={self.page}>"


class Disk:
    """A single simulated disk drive with its own scheduling process."""

    def __init__(
        self,
        env: Environment,
        params: DiskParams,
        name: str = "disk",
        rng: random.Random | None = None,
    ) -> None:
        self.env = env
        self.params = params
        self.name = name
        self.rng = rng or random.Random(0)
        # DiskParams derives these via properties; the geometry is immutable
        # and they sit on every request's hot path, so cache them flat.
        self._pages_per_cylinder = params.pages_per_cylinder
        self._capacity_pages = params.capacity_pages
        self._transfer_time = params.transfer_time
        self._pool = RequestPool(env, name=f"{name}.queue")
        # Head state.
        self._cylinder = 0
        self._direction = 1  # elevator direction: +1 up, -1 down
        self._last_page: int | None = None  # last physical page under the head
        # Controller cache: page -> True, LRU order.
        self._cache: OrderedDict[int, bool] = OrderedDict()
        # Fault state (driven by the fault injector; healthy by default).
        self.slow_factor = 1.0
        self._off = False
        self._offline_error: typing.Callable[[], Exception] | None = None
        self._current: DiskRequest | None = None
        # Statistics.
        self.reads = 0
        self.writes = 0
        self.cache_hits = 0
        self.sequential_ios = 0
        self.random_ios = 0
        self.faulted_requests = 0
        self.monitor = UtilizationMonitor(env, name=name)
        # End of the last *collapsed* service window (see _serve_loop): the
        # loop may have already completed a request analytically out to this
        # time; a newly arriving request must not start service before it.
        self._virtual_busy_until = 0.0
        self._virtual_request: DiskRequest | None = None
        self._server = env.process(self._serve_loop(), name=f"{name}.server")

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def read(self, page: int) -> Event:
        """Submit a one-page read; the returned event fires when done."""
        request = self.submit("read", page)
        recorder = self.env.recorder
        if recorder is not None:
            # read()/write() callers yield the completion immediately, so
            # the submit+wait pair is recorded here as one logical step.
            recorder.record_dwait(request)
        return request.done

    def write(self, page: int) -> Event:
        """Submit a one-page write; the returned event fires when done."""
        request = self.submit("write", page)
        recorder = self.env.recorder
        if recorder is not None:
            recorder.record_dwait(request)
        return request.done

    def submit(self, kind: str, page: int) -> DiskRequest:
        """Queue a request without waiting for it."""
        env = self.env
        if not 0 <= page < self._capacity_pages:
            self._check_page(page)  # raises with the full description
        request = DiskRequest(env, kind, page)
        tracer = env.tracer
        if tracer is not None:
            request.op = tracer.current_op()
        recorder = env.recorder
        if recorder is not None:
            recorder.record_dsub(self, kind, page, request)
        if self._off:
            self.faulted_requests += 1
            request.done.fail(self._make_offline_error())
            return request
        self._pool.put(request)
        return request

    # ------------------------------------------------------------------
    # Fault hooks (driven by the fault injector through the owning site)
    # ------------------------------------------------------------------
    def power_off(self, error_factory: typing.Callable[[], Exception] | None = None) -> None:
        """Fail every in-flight request and reject new ones until power-on."""
        if self._off:
            return
        self._off = True
        # Faults are now in play: the serve loop stops collapsing service
        # windows so power state is honoured at every event boundary.
        self.env.fault_aware = True
        self._offline_error = error_factory
        # Queued but unserved requests fail immediately.
        for request in self._pool.clear():
            self.faulted_requests += 1
            request.done.fail(self._make_offline_error())
        # The request being serviced loses its result: fail its completion
        # now; the serve loop notices the event already fired and moves on.
        current = self._current
        if current is not None and not current.done.triggered:
            self.faulted_requests += 1
            current.done.fail(self._make_offline_error())
        # A request completed analytically by the fast path has its success
        # sitting in the heap at the window's end; revoke it by rewriting
        # the event to a failure and scheduling it now -- callbacks run on
        # the first (failing) pass, so the later heap entry is a no-op and
        # the waiter observes the crash at power-off time, as modelled.
        virtual = self._virtual_request
        if (
            virtual is not None
            and self.env.now < self._virtual_busy_until
            and not virtual.done._processed
        ):
            self.faulted_requests += 1
            done = virtual.done
            done._exception = self._make_offline_error()
            done._value = None
            self.env.schedule(done, 0.0)
            self._virtual_request = None
        # A crash empties the volatile controller cache.
        self._cache.clear()
        self._last_page = None

    def power_on(self) -> None:
        """Accept requests again (head position is arbitrary but harmless)."""
        self._off = False
        self._offline_error = None

    @property
    def is_off(self) -> bool:
        return self._off

    def _make_offline_error(self) -> Exception:
        if self._offline_error is not None:
            return self._offline_error()
        return RuntimeError(f"disk {self.name!r} is powered off")

    @property
    def queue_length(self) -> int:
        return len(self._pool)

    def utilization(self) -> float:
        """Busy fraction of this disk since time zero."""
        return self.monitor.utilization()

    def queue_utilization(self) -> float:
        """Fraction of time at least one request was queued (not in service)."""
        return self._pool.utilization()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def cylinder_of(self, page: int) -> int:
        return page // self._pages_per_cylinder

    def track_of(self, page: int) -> int:
        return (page % self.params.pages_per_cylinder) // self.params.pages_per_track

    def _offset_in_track(self, page: int) -> int:
        return page % self.params.pages_per_track

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self._capacity_pages:
            raise ValueError(
                f"page {page} outside disk {self.name!r} "
                f"(capacity {self.params.capacity_pages} pages)"
            )

    # ------------------------------------------------------------------
    # Scheduling and service
    # ------------------------------------------------------------------
    def _serve_loop(self) -> typing.Generator:
        env = self.env
        pool = self._pool
        while True:
            if not pool.items or self._virtual_busy_until <= env._now:
                # With requests already queued *and* a virtual window still
                # playing out, the wait below would be a zero-sleep followed
                # immediately by the window sleep -- two scheduler passes
                # where one suffices -- so that case skips straight to the
                # window sleep.  The zero-sleep is kept when the window has
                # expired: it is what lets same-instant sibling submits join
                # the pool before the next elevator choice.
                yield pool.wait_for_item()
            busy_until = self._virtual_busy_until
            if busy_until > env._now:
                # The previous request was completed analytically; its
                # service window is still "on the platter".  Sleep it out so
                # the next request starts (and the elevator chooses among
                # everything queued by then) exactly when the un-collapsed
                # loop would have finished its timeout.
                yield busy_until - env._now
                if not pool.items:
                    # A power-off cleared the queue while the virtual window
                    # played out; go back to waiting.
                    continue
            if env.fastpath and env.tracer is None and not env.fault_aware and not self._off:
                # Collapsed service: compute the duration now (head, cache,
                # and stats state advance identically), book the busy window
                # analytically, and schedule the completion directly -- one
                # scheduler pass instead of three.  Exact because nothing
                # can serve this disk before the window ends (arrivals park
                # on the virtual window above) and monitors report
                # mid-window reads via UtilizationMonitor.accrue semantics.
                request = pool.take(self._elevator_choose)
                duration = self._service(request) * self.slow_factor
                self._virtual_request = request
                if duration > 0.0:
                    self.monitor.accrue(duration)
                    self._virtual_busy_until = env._now + duration
                    request.done.succeed(duration, delay=duration)
                else:
                    request.done.succeed(duration)
                continue
            request = pool.take(self._elevator_choose)
            self._current = request
            self.monitor.busy()
            duration = self._service(request) * self.slow_factor
            if duration > 0:
                tracer = self.env.tracer
                if tracer is None:
                    yield float(duration)
                else:
                    span = tracer.begin(
                        self.name,
                        cat="disk",
                        op=request.op,
                        args={"kind": request.kind, "page": request.page},
                    )
                    yield self.env.timeout(duration)
                    tracer.end(span)
            self._current = None
            if not len(self._pool):
                self.monitor.idle()
            # A power-off during service already failed the completion event.
            if not request.done.triggered:
                request.done.succeed(duration)

    def _elevator_choose(self, items: list[DiskRequest]) -> DiskRequest:
        """SCAN policy: nearest request in the travel direction, else reverse.

        Single pass, first-minimal on ties (matching ``min()`` over the
        original filtered list, which preserves submission order).
        """
        if len(items) == 1:
            return items[0]
        pages_per_cylinder = self._pages_per_cylinder
        cylinder = self._cylinder
        direction = self._direction
        best: DiskRequest | None = None
        best_distance = 0
        for request in items:
            delta = request.page // pages_per_cylinder - cylinder
            if delta * direction >= 0:
                distance = delta if delta >= 0 else -delta
                if best is None or distance < best_distance:
                    best = request
                    best_distance = distance
        if best is None:
            self._direction = -direction
            for request in items:
                delta = request.page // pages_per_cylinder - cylinder
                distance = delta if delta >= 0 else -delta
                if best is None or distance < best_distance:
                    best = request
                    best_distance = distance
        return best

    def _service(self, request: DiskRequest) -> float:
        """Compute service time and update head / cache state."""
        p = self.params
        page = request.page
        if request.kind == "read":
            self.reads += 1
            if page in self._cache:
                self.cache_hits += 1
                self._cache.move_to_end(page)
                return p.cache_hit_time
        else:
            self.writes += 1
            # Write-through: the media is updated below; the controller
            # cache ends up holding the freshly written copy (valid).
            self._cache.pop(page, None)

        target_cylinder = page // self._pages_per_cylinder
        sequential = self._last_page is not None and page == self._last_page + 1
        duration = 0.0
        if sequential:
            self.sequential_ios += 1
            # Crossing a track or cylinder boundary costs a head switch; the
            # controller's read-ahead hides rotational latency either way.
            if self._offset_in_track(page) == 0:
                duration += p.head_switch_time
        else:
            self.random_ios += 1
            distance = abs(target_cylinder - self._cylinder)
            duration += p.seek_time(distance)
            duration += self._rotational_latency()
        duration += self._transfer_time
        self._cylinder = target_cylinder
        self._last_page = page
        self._cache_insert(page)
        if request.kind == "read" and sequential:
            duration += self._prefetch(page)
        return duration

    def _prefetch(self, page: int) -> float:
        """Read ahead to the end of the track (bounded), filling the cache."""
        p = self.params
        remaining_on_track = p.pages_per_track - 1 - self._offset_in_track(page)
        count = min(p.read_ahead_pages, remaining_on_track)
        duration = 0.0
        for ahead in range(1, count + 1):
            prefetched = page + ahead
            if prefetched >= self._capacity_pages or prefetched in self._cache:
                break
            duration += self._transfer_time
            self._cache_insert(prefetched)
            self._last_page = prefetched
        return duration

    def _rotational_latency(self) -> float:
        p = self.params
        if p.sample_rotation:
            return self.rng.uniform(0.0, p.revolution_time)
        return p.average_rotational_latency

    def _cache_insert(self, page: int) -> None:
        # Every call site has already established that ``page`` is absent
        # (read miss, write-through pop, or the prefetch membership check),
        # so a plain insert lands it in LRU position without move_to_end.
        cache = self._cache
        cache[page] = True
        if len(cache) > self.params.controller_cache_pages:
            cache.popitem(last=False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Disk {self.name!r} cyl={self._cylinder} queued={self.queue_length}>"
