"""Detailed disk model: elevator scheduling, controller cache, read-ahead.

Adapted, like the paper's simulator, from the ZetaSim disk model [Bro92]:

- geometry of cylinders, tracks and pages (pages are the unit of I/O);
- seek time as a base cost plus a per-cylinder travel cost;
- rotational latency, skipped when a request continues a sequential stream
  (the head is already positioned just past the previous page);
- a controller cache holding recently read and prefetched pages;
- track read-ahead: after a sequential read the controller keeps reading the
  rest of the track into its cache;
- elevator (SCAN) scheduling over pending requests.

"The important aspect of the disk model is that it captures the cost
differences between sequential and random I/Os" (section 3.2.2).  The
defaults in :class:`repro.config.DiskParams` are calibrated so that the
measured averages match the paper: about 3.5 ms per page sequential and
11.8 ms per page random.
"""

from __future__ import annotations

import random
import typing
from collections import OrderedDict

from repro.config import DiskParams
from repro.sim import Environment, Event, RequestPool, UtilizationMonitor

__all__ = ["Disk", "DiskRequest"]


class DiskRequest:
    """One page read or write, with an event that fires on completion."""

    __slots__ = ("kind", "page", "done", "submitted_at", "op")

    def __init__(self, env: Environment, kind: str, page: int) -> None:
        if kind not in ("read", "write"):
            raise ValueError(f"unknown disk request kind: {kind!r}")
        self.kind = kind
        self.page = page
        self.done = Event(env)
        self.submitted_at = env.now
        # Label of the operator the request runs on behalf of; stamped at
        # submit time (requests are served by the disk's own process, which
        # would otherwise lose the attribution).
        self.op: str | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DiskRequest {self.kind} page={self.page}>"


class Disk:
    """A single simulated disk drive with its own scheduling process."""

    def __init__(
        self,
        env: Environment,
        params: DiskParams,
        name: str = "disk",
        rng: random.Random | None = None,
    ) -> None:
        self.env = env
        self.params = params
        self.name = name
        self.rng = rng or random.Random(0)
        self._pool = RequestPool(env, name=f"{name}.queue")
        # Head state.
        self._cylinder = 0
        self._direction = 1  # elevator direction: +1 up, -1 down
        self._last_page: int | None = None  # last physical page under the head
        # Controller cache: page -> True, LRU order.
        self._cache: OrderedDict[int, bool] = OrderedDict()
        # Fault state (driven by the fault injector; healthy by default).
        self.slow_factor = 1.0
        self._off = False
        self._offline_error: typing.Callable[[], Exception] | None = None
        self._current: DiskRequest | None = None
        # Statistics.
        self.reads = 0
        self.writes = 0
        self.cache_hits = 0
        self.sequential_ios = 0
        self.random_ios = 0
        self.faulted_requests = 0
        self.monitor = UtilizationMonitor(env, name=name)
        self._server = env.process(self._serve_loop(), name=f"{name}.server")

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def read(self, page: int) -> Event:
        """Submit a one-page read; the returned event fires when done."""
        return self.submit("read", page).done

    def write(self, page: int) -> Event:
        """Submit a one-page write; the returned event fires when done."""
        return self.submit("write", page).done

    def submit(self, kind: str, page: int) -> DiskRequest:
        """Queue a request without waiting for it."""
        self._check_page(page)
        request = DiskRequest(self.env, kind, page)
        tracer = self.env.tracer
        if tracer is not None:
            request.op = tracer.current_op()
        if self._off:
            self.faulted_requests += 1
            request.done.fail(self._make_offline_error())
            return request
        self._pool.put(request)
        return request

    # ------------------------------------------------------------------
    # Fault hooks (driven by the fault injector through the owning site)
    # ------------------------------------------------------------------
    def power_off(self, error_factory: typing.Callable[[], Exception] | None = None) -> None:
        """Fail every in-flight request and reject new ones until power-on."""
        if self._off:
            return
        self._off = True
        self._offline_error = error_factory
        # Queued but unserved requests fail immediately.
        for request in self._pool.clear():
            self.faulted_requests += 1
            request.done.fail(self._make_offline_error())
        # The request being serviced loses its result: fail its completion
        # now; the serve loop notices the event already fired and moves on.
        current = self._current
        if current is not None and not current.done.triggered:
            self.faulted_requests += 1
            current.done.fail(self._make_offline_error())
        # A crash empties the volatile controller cache.
        self._cache.clear()
        self._last_page = None

    def power_on(self) -> None:
        """Accept requests again (head position is arbitrary but harmless)."""
        self._off = False
        self._offline_error = None

    @property
    def is_off(self) -> bool:
        return self._off

    def _make_offline_error(self) -> Exception:
        if self._offline_error is not None:
            return self._offline_error()
        return RuntimeError(f"disk {self.name!r} is powered off")

    @property
    def queue_length(self) -> int:
        return len(self._pool)

    def utilization(self) -> float:
        """Busy fraction of this disk since time zero."""
        return self.monitor.utilization()

    def queue_utilization(self) -> float:
        """Fraction of time at least one request was queued (not in service)."""
        return self._pool.utilization()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def cylinder_of(self, page: int) -> int:
        return page // self.params.pages_per_cylinder

    def track_of(self, page: int) -> int:
        return (page % self.params.pages_per_cylinder) // self.params.pages_per_track

    def _offset_in_track(self, page: int) -> int:
        return page % self.params.pages_per_track

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.params.capacity_pages:
            raise ValueError(
                f"page {page} outside disk {self.name!r} "
                f"(capacity {self.params.capacity_pages} pages)"
            )

    # ------------------------------------------------------------------
    # Scheduling and service
    # ------------------------------------------------------------------
    def _serve_loop(self) -> typing.Generator:
        while True:
            yield self._pool.wait_for_item()
            request = self._pool.take(self._elevator_choose)
            self._current = request
            self.monitor.busy()
            duration = self._service(request) * self.slow_factor
            if duration > 0:
                tracer = self.env.tracer
                if tracer is None:
                    yield self.env.timeout(duration)
                else:
                    span = tracer.begin(
                        self.name,
                        cat="disk",
                        op=request.op,
                        args={"kind": request.kind, "page": request.page},
                    )
                    yield self.env.timeout(duration)
                    tracer.end(span)
            self._current = None
            if not len(self._pool):
                self.monitor.idle()
            # A power-off during service already failed the completion event.
            if not request.done.triggered:
                request.done.succeed(duration)

    def _elevator_choose(self, items: list[DiskRequest]) -> DiskRequest:
        """SCAN policy: nearest request in the travel direction, else reverse."""
        if len(items) == 1:
            return items[0]
        ahead = [
            r for r in items if (self.cylinder_of(r.page) - self._cylinder) * self._direction >= 0
        ]
        if not ahead:
            self._direction = -self._direction
            ahead = items
        return min(ahead, key=lambda r: abs(self.cylinder_of(r.page) - self._cylinder))

    def _service(self, request: DiskRequest) -> float:
        """Compute service time and update head / cache state."""
        p = self.params
        page = request.page
        if request.kind == "read":
            self.reads += 1
            if page in self._cache:
                self.cache_hits += 1
                self._cache.move_to_end(page)
                return p.cache_hit_time
        else:
            self.writes += 1
            # Write-through: the media is updated below; the controller
            # cache ends up holding the freshly written copy (valid).
            self._cache.pop(page, None)

        target_cylinder = self.cylinder_of(page)
        sequential = self._last_page is not None and page == self._last_page + 1
        duration = 0.0
        if sequential:
            self.sequential_ios += 1
            # Crossing a track or cylinder boundary costs a head switch; the
            # controller's read-ahead hides rotational latency either way.
            if self._offset_in_track(page) == 0:
                duration += p.head_switch_time
        else:
            self.random_ios += 1
            distance = abs(target_cylinder - self._cylinder)
            duration += p.seek_time(distance)
            duration += self._rotational_latency()
        duration += p.transfer_time
        self._cylinder = target_cylinder
        self._last_page = page
        self._cache_insert(page)
        if request.kind == "read" and sequential:
            duration += self._prefetch(page)
        return duration

    def _prefetch(self, page: int) -> float:
        """Read ahead to the end of the track (bounded), filling the cache."""
        p = self.params
        remaining_on_track = p.pages_per_track - 1 - self._offset_in_track(page)
        count = min(p.read_ahead_pages, remaining_on_track)
        duration = 0.0
        for ahead in range(1, count + 1):
            prefetched = page + ahead
            if prefetched >= p.capacity_pages or prefetched in self._cache:
                break
            duration += p.transfer_time
            self._cache_insert(prefetched)
            self._last_page = prefetched
        return duration

    def _rotational_latency(self) -> float:
        p = self.params
        if p.sample_rotation:
            return self.rng.uniform(0.0, p.revolution_time)
        return p.average_rotational_latency

    def _cache_insert(self, page: int) -> None:
        cache = self._cache
        cache[page] = True
        cache.move_to_end(page)
        while len(cache) > self.params.controller_cache_pages:
            cache.popitem(last=False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Disk {self.name!r} cyl={self._cylinder} queued={self.queue_length}>"
