"""UDF filter operator: an expensive predicate at its chosen site.

Structurally a select, but the per-tuple CPU charge is the UDF's *declared*
cost instead of the fixed ``Compare`` instruction count -- the knob the
function-shipping experiments sweep.  Whether this operator runs at the
producing server or at the client is decided by the optimizer's ``udf-site``
move (or pinned by :attr:`~repro.plans.logical.UdfPredicate.site`); the
executor simply charges the work to whatever site the plan bound.
"""

from __future__ import annotations

import typing

from repro.engine.base import Page, PageAssembler, PhysicalOp
from repro.plans.logical import UdfPredicate

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import ExecutionContext
    from repro.hardware.site import Site

__all__ = ["UdfFilterIterator"]


class UdfFilterIterator(PhysicalOp):
    """Applies a named UDF predicate of declared cost and selectivity."""

    def __init__(
        self,
        context: "ExecutionContext",
        site: "Site",
        child: PhysicalOp,
        udf: UdfPredicate,
    ) -> None:
        super().__init__(context, site)
        self.child = child
        self.udf = udf
        self._assembler: PageAssembler | None = None
        self._ready: list[Page] = []
        self._input_done = False

    def _open(self) -> typing.Generator:
        yield from self.child.open()

    def _next(self) -> typing.Generator:
        while not self._ready and not self._input_done:
            page = yield from self.child.next()
            if page is None:
                self._input_done = True
                if self._assembler is not None:
                    self._ready.extend(self._assembler.flush())
                break
            if self._assembler is None:
                self._assembler = PageAssembler(
                    self.config.tuples_per_page(page.tuple_bytes), page.tuple_bytes
                )
            surviving = page.tuples * self.udf.selectivity
            cpu = self.udf.per_tuple_instructions * page.tuples
            cpu += self.config.move_instructions(round(surviving) * page.tuple_bytes)
            yield from self.site.cpu.execute(cpu)
            self._ready.extend(self._assembler.add(surviving))
        if self._ready:
            return self._ready.pop(0)
        return None

    def _close(self) -> typing.Generator:
        yield from self.child.close()
