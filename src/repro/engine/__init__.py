"""Simulated query execution engine.

"Query execution is based on an iterator model, similar to that of Volcano:
each query operator has an open-next-close interface ... data flow is demand
driven.  When two connected operators are located on different sites, a pair
of specialized network operators is inserted between them" (section 3.2.1).

Every physical operator charges its CPU, disk, and network usage to the
simulated resources of the site it is bound to; the executor drives the
root display operator to completion and reports the response time and
communication volume.
"""

from repro.engine.base import Page, PhysicalOp
from repro.engine.executor import ExecutionResult, QueryExecutor
from repro.engine.loadgen import DiskLoadGenerator

__all__ = [
    "DiskLoadGenerator",
    "ExecutionResult",
    "Page",
    "PhysicalOp",
    "QueryExecutor",
]
