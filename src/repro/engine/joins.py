"""Hybrid-hash join [Sha86] at page granularity.

The build phase (inside ``open``) consumes the inner (left) input: a
memory-resident fraction *q* of it goes into the in-memory hash table and
the rest is written to partition files on the join site's disk.  The probe
phase consumes the outer input, emitting the resident share of the output
immediately (pipelined) and spilling the rest of the outer to partition
files.  Finally the spilled partition pairs are read back and joined.

Spill writes are asynchronous (the engine queues them on the disk and
continues), so a join's temp I/O overlaps with its inputs' scans -- when
they share a disk this creates exactly the seek interference the paper
blames for query-shipping's poor minimum-allocation performance (4.2.2).

Two memory disciplines share this operator:

- **static** (the paper's model): the plan-time min/max allocation is
  taken up front from the site pool and the spill plan never changes;
- **dynamic** (``SystemConfig.memory.mode == "dynamic"``): the join asks
  the site's :class:`~repro.storage.MemoryBroker` for a grant in
  ``[minimum, maximum]`` allocation, queues deterministically under
  saturation, *shrinks mid-join* when the broker reclaims pages for a
  waiter (evicted hash-table pages spill incrementally), reverses build
  and probe roles per spilled partition pair when the outer side turned
  out smaller, and handles partitions still too big for memory with
  bounded recursive overflow passes.  On an uncontended pool the dynamic
  path issues exactly the static maximum grant synchronously, so
  single-session runs are event-for-event identical to static mode.
"""

from __future__ import annotations

import typing

from repro.config import HYBRID_HASH_FUDGE_FACTOR
from repro.engine.base import Page, PageAssembler, PhysicalOp
from repro.errors import ExecutionError, TransientFaultError
from repro.sim import AllOf, Event
from repro.storage.memory import (
    HybridHashPlan,
    join_allocation,
    maximum_join_allocation,
    minimum_join_allocation,
    plan_hybrid_hash,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import ExecutionContext
    from repro.hardware.site import Site, TempFile
    from repro.storage.memory import MemoryGrant, _GrantWaiter

__all__ = ["HashJoinIterator"]


class _PartitionSet:
    """The spill files of one join input: round-robin page placement.

    Each partition owns a list of extent chunks; the initial chunk is sized
    from the expected spill volume.  With ``auto_grow`` (dynamic mode,
    where reclaims make spill volume unpredictable) a full partition grows
    by another chunk instead of overflowing.  Chunks are allocated one at a
    time so a failure mid-construction releases what was already taken.
    """

    def __init__(
        self,
        site: "Site",
        num_partitions: int,
        expected_pages: int,
        disk_index: int = 0,
        auto_grow: bool = False,
    ) -> None:
        self.site = site
        self.disk_index = disk_index
        self.auto_grow = auto_grow
        per_partition = -(-max(expected_pages, num_partitions) // num_partitions) + 2
        self._chunk = per_partition
        self.files: list[list[TempFile]] = []
        try:
            for _ in range(num_partitions):
                self.files.append([site.allocate_temp(per_partition, disk_index)])
        except BaseException:
            self.release()
            raise
        self._cursor = 0
        self._fill = [0] * num_partitions
        self.pages_written = 0

    def _capacity(self, index: int) -> int:
        return sum(file.extent.pages for file in self.files[index])

    def _page_at(self, index: int, position: int) -> int:
        for file in self.files[index]:
            if position < file.extent.pages:
                return file.page(position)
            position -= file.extent.pages
        raise ExecutionError(f"partition {index} has no page {position}")

    def next_write_page(self) -> int:
        """Disk page for the next spilled page (round-robin partitions)."""
        start = self._cursor
        while True:
            index = self._cursor
            self._cursor = (self._cursor + 1) % len(self.files)
            if self._fill[index] < self._capacity(index):
                self._fill[index] += 1
                self.pages_written += 1
                return self._page_at(index, self._fill[index] - 1)
            if self._cursor == start:
                if not self.auto_grow:
                    raise ExecutionError("hybrid-hash partition files overflowed")
                self.files[index].append(
                    self.site.allocate_temp(self._chunk, self.disk_index)
                )
                self._fill[index] += 1
                self.pages_written += 1
                return self._page_at(index, self._fill[index] - 1)

    def partition_pages(self, index: int) -> list[int]:
        """Disk pages written to partition ``index``, in write order."""
        return [self._page_at(index, i) for i in range(self._fill[index])]

    def release(self) -> None:
        for chunks in self.files:
            for file in chunks:
                file.release()

    def __len__(self) -> int:
        return len(self.files)


class HashJoinIterator(PhysicalOp):
    """Hybrid-hash equi-join; left input builds, right input probes."""

    #: Cap on recursive overflow passes per spilled partition pair; with
    #: at least the minimum allocation each pass divides the oversized
    #: partition by (buffers - 1), so skew deeper than this is pathological.
    MAX_RECURSION_PASSES = 3

    def __init__(
        self,
        context: "ExecutionContext",
        site: "Site",
        inner: PhysicalOp,
        outer: PhysicalOp,
        est_inner_pages: int,
        est_outer_pages: int,
        est_outer_tuples: float,
        est_output_tuples: float,
        output_tuple_bytes: int,
    ) -> None:
        super().__init__(context, site)
        self.inner = inner
        self.outer = outer
        self.est_inner_pages = max(1, est_inner_pages)
        self.est_outer_pages = max(1, est_outer_pages)
        self.est_outer_tuples = max(1.0, est_outer_tuples)
        self.est_output_tuples = est_output_tuples
        self.output_tuple_bytes = output_tuple_bytes
        self._buffer_pages = 0
        self._hh: HybridHashPlan | None = None
        self._assembler = PageAssembler(
            context.config.tuples_per_page(output_tuple_bytes), output_tuple_bytes
        )
        self._ready: list[Page] = []
        self._inner_parts: _PartitionSet | None = None
        self._outer_parts: _PartitionSet | None = None
        self._pending_writes: list[Event] = []
        self._inner_tuples_seen = 0
        self._outer_tuples_seen = 0
        self._inner_tuple_bytes = 100
        self._outer_tuple_bytes = 100
        self._spill_accum_inner = 0.0
        self._spill_accum_outer = 0.0
        self._phase = "build"
        self._partition_cursor = 0
        # Dynamic-discipline state.
        self._dynamic = context.config.memory.is_dynamic
        self._grant: "MemoryGrant | None" = None
        self._pending_wait: "_GrantWaiter | None" = None
        self._aborted = False
        self._build_pages_seen = 0
        self._reclaim_spill_pages = 0
        self._spilled_output_tuples = 0.0
        self._scratch: list["TempFile"] = []
        self.role_reversals = 0
        self.recursion_passes = 0

    # ------------------------------------------------------------------
    # Build phase
    # ------------------------------------------------------------------
    def _open(self) -> typing.Generator:
        config = self.config
        if self._dynamic:
            yield from self._acquire_grant()
        else:
            pages = join_allocation(self.est_inner_pages, config.buffer_allocation)
            # Allocate before recording the debt: if the pool sheds this
            # query, a later abort() must not "release" pages never taken.
            self.site.memory.allocate(pages)
            self._buffer_pages = pages
        self._hh = plan_hybrid_hash(
            self.est_inner_pages, self.est_outer_pages, self._buffer_pages
        )
        if not self._hh.in_memory:
            self._inner_parts = _PartitionSet(
                self.site,
                self._hh.spill_partitions,
                self._hh.spilled_inner_pages,
                auto_grow=self._dynamic,
            )
        yield from self.inner.open()
        while True:
            page = yield from self.inner.next()
            if page is None:
                break
            self._build_pages_seen += 1
            self._inner_tuples_seen += page.tuples
            self._inner_tuple_bytes = page.tuple_bytes
            cpu = config.hash_inst * page.tuples
            cpu += config.move_instructions(page.payload_bytes)
            yield from self.site.cpu.execute(cpu)
            spill_fraction = 1.0 - self._hh.resident_fraction
            if spill_fraction > 0.0:
                self._spill_accum_inner += spill_fraction
                yield from self._drain_spill("inner", page.tuple_bytes)
            yield from self._drain_reclaim()
        yield from self._drain_reclaim()
        yield from self._flush_spill("inner")
        yield from self.inner.close()
        yield from self._await_writes()
        self._phase = "probe"
        yield from self.outer.open()
        if not self._hh.in_memory and self._outer_parts is None:
            self._outer_parts = _PartitionSet(
                self.site,
                self._hh.spill_partitions,
                self._hh.spilled_outer_pages,
                auto_grow=self._dynamic,
            )

    def _acquire_grant(self) -> typing.Generator:
        """Obtain a broker grant in [minimum, maximum] allocation; may wait.

        The fast path is fully synchronous: on an uncontended pool the
        broker hands out the maximum allocation with no events created, so
        the dynamic discipline is indistinguishable from static maximum
        allocation in single-session runs.
        """
        broker = self.site.memory
        min_pages = minimum_join_allocation(self.est_inner_pages)
        max_pages = maximum_join_allocation(self.est_inner_pages)
        grant = broker.try_grant(min_pages, max_pages, self.label, self._reclaimed)
        if grant is None:
            waiter = broker.enqueue(min_pages, max_pages, self.label, self._reclaimed)
            self._pending_wait = waiter
            waited_from = self.env.now
            try:
                grant = yield waiter.event
            finally:
                self._pending_wait = None
            if self._aborted:
                # The attempt died while we were queued; the fresh grant
                # must flow back immediately or it leaks until close().
                grant.release()
                raise TransientFaultError(
                    f"{self.label} aborted while waiting for memory"
                )
            tracer = self.env.tracer
            if tracer is not None:
                tracer.instant(
                    "memory.wait",
                    cat="memory",
                    args={
                        "op": self.label,
                        "granted_pages": grant.pages,
                        "waited": self.env.now - waited_from,
                    },
                )
        self._grant = grant
        self._buffer_pages = grant.pages

    def _reclaimed(self, take: int) -> int:
        """Broker callback: give back up to ``take`` pages by spilling.

        Runs synchronously inside the broker (no simulated time): the plan
        is reshaped to the smaller allocation and the evicted hash-table
        pages are queued on ``_reclaim_spill_pages``; the join's own
        process writes them out at its next step, so the I/O cost lands on
        the victim, not the waiter.
        """
        if self._phase not in ("build", "probe") or self._hh is None:
            return 0
        assert self._grant is not None
        margin = self._buffer_pages - self._grant.min_pages
        take = min(take, margin)
        if take <= 0:
            return 0
        old = self._hh
        new_buffers = self._buffer_pages - take
        if old.in_memory:
            new = plan_hybrid_hash(self.est_inner_pages, self.est_outer_pages, new_buffers)
        else:
            # Keep the partition count: pages already written are hashed
            # into k files, so only the resident fraction can shrink.
            k = old.spill_partitions
            fraction = min(
                old.resident_fraction,
                max(
                    0.0,
                    (new_buffers - k)
                    / (HYBRID_HASH_FUDGE_FACTOR * max(1, self.est_inner_pages)),
                ),
            )
            new = HybridHashPlan(
                self.est_inner_pages, self.est_outer_pages, new_buffers, k, fraction
            )
        if not new.in_memory and self._inner_parts is None:
            self._inner_parts = _PartitionSet(
                self.site,
                new.spill_partitions,
                new.spilled_inner_pages,
                auto_grow=True,
            )
            if self._phase == "probe" and self._outer_parts is None:
                self._outer_parts = _PartitionSet(
                    self.site,
                    new.spill_partitions,
                    new.spilled_outer_pages,
                    auto_grow=True,
                )
        evicted = round((old.resident_fraction - new.resident_fraction) * self._build_pages_seen)
        self._reclaim_spill_pages += max(0, evicted)
        self._hh = new
        self._buffer_pages = new_buffers
        tracer = self.env.tracer
        if tracer is not None:
            tracer.instant(
                "memory.reclaim",
                cat="memory",
                args={"op": self.label, "pages": take, "evicted_pages": max(0, evicted)},
            )
        return take

    def _drain_reclaim(self) -> typing.Generator:
        """Write out hash-table pages evicted by a broker reclaim."""
        while self._reclaim_spill_pages > 0 and self._inner_parts is not None:
            self._reclaim_spill_pages -= 1
            yield from self._spill_page(self._inner_parts)

    def _drain_spill(self, which: str, tuple_bytes: int) -> typing.Generator:
        """Write a spilled page whenever a full page has accumulated."""
        parts = self._inner_parts if which == "inner" else self._outer_parts
        accum_attr = "_spill_accum_inner" if which == "inner" else "_spill_accum_outer"
        while getattr(self, accum_attr) >= 1.0 and parts is not None:
            setattr(self, accum_attr, getattr(self, accum_attr) - 1.0)
            yield from self._spill_page(parts)

    def _flush_spill(self, which: str) -> typing.Generator:
        """Write the final partial spilled page of a phase, if any."""
        parts = self._inner_parts if which == "inner" else self._outer_parts
        accum_attr = "_spill_accum_inner" if which == "inner" else "_spill_accum_outer"
        if parts is not None and getattr(self, accum_attr) >= 0.5:
            yield from self._spill_page(parts)
        setattr(self, accum_attr, 0.0)

    def _spill_page(self, parts: _PartitionSet) -> typing.Generator:
        """Asynchronously write one spilled page (CPU charged now)."""
        yield from self.site.cpu.execute(self.config.disk_inst)
        request = self.site.disk.submit("write", parts.next_write_page())
        self._pending_writes.append(request.done)
        self.site.memory.record_spill(self.label)

    def _await_writes(self) -> typing.Generator:
        if self._pending_writes:
            recorder = self.env.recorder
            if recorder is not None:
                recorder.record_dwait_many(self._pending_writes)
            yield AllOf(self.env, self._pending_writes)
            self._pending_writes = []

    # ------------------------------------------------------------------
    # Probe phase and spilled-partition processing
    # ------------------------------------------------------------------
    def _next(self) -> typing.Generator:
        while not self._ready:
            if self._phase == "probe":
                yield from self._probe_step()
            elif self._phase == "partitions":
                if self._dynamic:
                    yield from self._partition_step_dynamic()
                else:
                    yield from self._partition_step()
            elif self._phase == "flush":
                self._ready.extend(self._assembler.flush())
                self._phase = "done"
            else:
                return None
        page = self._ready.pop(0)
        yield from self.site.cpu.execute(self.config.move_instructions(page.payload_bytes))
        return page

    def _probe_step(self) -> typing.Generator:
        config = self.config
        page = yield from self.outer.next()
        if page is None:
            yield from self._drain_reclaim()
            yield from self._flush_spill("outer")
            yield from self.outer.close()
            yield from self._await_writes()
            self._phase = "partitions" if not self._hh.in_memory else "flush"
            return
        self._outer_tuples_seen += page.tuples
        self._outer_tuple_bytes = page.tuple_bytes
        cpu = config.hash_inst * page.tuples + config.move_instructions(page.payload_bytes)
        yield from self.site.cpu.execute(cpu)
        yield from self._drain_reclaim()
        resident = self._hh.resident_fraction
        if resident > 0.0:
            contribution = (
                self.est_output_tuples * resident * page.tuples / self.est_outer_tuples
            )
            self._ready.extend(self._assembler.add(contribution))
        if resident < 1.0:
            self._spilled_output_tuples += (
                self.est_output_tuples * (1.0 - resident) * page.tuples / self.est_outer_tuples
            )
            self._spill_accum_outer += 1.0 - resident
            yield from self._drain_spill("outer", page.tuple_bytes)

    def _partition_step(self) -> typing.Generator:
        """Join one spilled partition pair (build from inner, probe outer)."""
        assert self._inner_parts is not None and self._outer_parts is not None
        if self._partition_cursor >= len(self._inner_parts):
            self._phase = "flush"
            return
        index = self._partition_cursor
        self._partition_cursor += 1
        config = self.config
        for disk_page in self._inner_parts.partition_pages(index):
            yield from self.site.cpu.execute(config.disk_inst)
            yield self.site.disk.read(disk_page)
            cpu = config.hash_inst * config.tuples_per_page(self._inner_tuple_bytes)
            cpu += config.move_instructions(config.page_size)
            yield from self.site.cpu.execute(cpu)
        outer_pages = self._outer_parts.partition_pages(index)
        spilled_output = self.est_output_tuples * (1.0 - self._hh.resident_fraction)
        per_page_output = spilled_output / max(1, self._outer_parts.pages_written)
        for disk_page in outer_pages:
            yield from self.site.cpu.execute(config.disk_inst)
            yield self.site.disk.read(disk_page)
            cpu = config.hash_inst * config.tuples_per_page(self._outer_tuple_bytes)
            cpu += config.move_instructions(config.page_size)
            yield from self.site.cpu.execute(cpu)
            self._ready.extend(self._assembler.add(per_page_output))

    def _partition_step_dynamic(self) -> typing.Generator:
        """Dynamic-mode partition pair: role reversal + bounded recursion.

        When the outer's share of a partition turned out *smaller* than the
        inner's, the roles flip -- the smaller side builds the hash table
        (Shapiro's heuristic generalized to runtime knowledge).  A build
        side still larger than the allocation triggers up to
        ``MAX_RECURSION_PASSES`` re-partitioning passes, each a full extra
        write+read of the pair, after which it is processed regardless
        (matching how real systems cap recursion on pathological skew).
        """
        assert self._inner_parts is not None and self._outer_parts is not None
        if self._partition_cursor >= len(self._inner_parts):
            self._phase = "flush"
            return
        index = self._partition_cursor
        self._partition_cursor += 1
        config = self.config
        inner_pages = self._inner_parts.partition_pages(index)
        outer_pages = self._outer_parts.partition_pages(index)
        build_pages, probe_pages = inner_pages, outer_pages
        build_bytes, probe_bytes = self._inner_tuple_bytes, self._outer_tuple_bytes
        if 0 < len(outer_pages) < len(inner_pages):
            build_pages, probe_pages = outer_pages, inner_pages
            build_bytes, probe_bytes = self._outer_tuple_bytes, self._inner_tuple_bytes
            self.role_reversals += 1
            tracer = self.env.tracer
            if tracer is not None:
                tracer.instant(
                    "join.role-reversal",
                    cat="memory",
                    args={"op": self.label, "partition": index,
                          "build_pages": len(build_pages)},
                )
        build_len = len(build_pages)
        passes = 0
        while (
            build_len > 0
            and HYBRID_HASH_FUDGE_FACTOR * build_len > self._buffer_pages
            and passes < self.MAX_RECURSION_PASSES
        ):
            passes += 1
            self.recursion_passes += 1
            yield from self._overflow_pass(index, len(build_pages) + len(probe_pages))
            build_len = -(-build_len // max(2, self._buffer_pages - 1))
        for disk_page in build_pages:
            yield from self.site.cpu.execute(config.disk_inst)
            yield self.site.disk.read(disk_page)
            cpu = config.hash_inst * config.tuples_per_page(build_bytes)
            cpu += config.move_instructions(config.page_size)
            yield from self.site.cpu.execute(cpu)
        # The partition's output share follows its *outer* pages no matter
        # which side built; `_spilled_output_tuples` integrates the
        # per-page resident fractions actually in force during the probe.
        partition_output = (
            self._spilled_output_tuples
            * len(outer_pages)
            / max(1, self._outer_parts.pages_written)
        )
        per_page_output = partition_output / max(1, len(probe_pages))
        for disk_page in probe_pages:
            yield from self.site.cpu.execute(config.disk_inst)
            yield self.site.disk.read(disk_page)
            cpu = config.hash_inst * config.tuples_per_page(probe_bytes)
            cpu += config.move_instructions(config.page_size)
            yield from self.site.cpu.execute(cpu)
            self._ready.extend(self._assembler.add(per_page_output))

    def _overflow_pass(self, index: int, total_pages: int) -> typing.Generator:
        """One recursive re-partitioning pass: write the pair out, read back."""
        tracer = self.env.tracer
        if tracer is not None:
            tracer.instant(
                "join.recursive-pass",
                cat="memory",
                args={"op": self.label, "partition": index, "pages": total_pages},
            )
        scratch = self.site.allocate_temp(max(1, total_pages))
        self._scratch.append(scratch)
        config = self.config
        for position in range(total_pages):
            yield from self.site.cpu.execute(config.disk_inst)
            request = self.site.disk.submit("write", scratch.page(position))
            self._pending_writes.append(request.done)
            self.site.memory.record_spill(self.label)
        yield from self._await_writes()
        for position in range(total_pages):
            yield from self.site.cpu.execute(config.disk_inst)
            yield self.site.disk.read(scratch.page(position))
        scratch.release()
        self._scratch.remove(scratch)

    def _close(self) -> typing.Generator:
        self._release_resources()
        return
        yield  # pragma: no cover

    def abort(self) -> None:
        self._aborted = True
        self._release_resources()

    def _release_resources(self) -> None:
        """Free partition files, scratch extents, grants, wait-queue slots
        and buffer frames (idempotent); shared by close() and abort()."""
        if self._inner_parts is not None:
            self._inner_parts.release()
        if self._outer_parts is not None:
            self._outer_parts.release()
        for scratch in self._scratch:
            scratch.release()
        self._scratch = []
        if self._pending_wait is not None:
            # Cancelling fails the waiter's event, so a process still
            # blocked on it resumes (into fault supervision) rather than
            # lingering as a zombie holding a queue slot.
            self.site.memory.cancel(self._pending_wait)
            self._pending_wait = None
        if self._grant is not None:
            self._grant.release()
            self._grant = None
            self._buffer_pages = 0
        elif self._buffer_pages:
            self.site.memory.release(self._buffer_pages)
            self._buffer_pages = 0
