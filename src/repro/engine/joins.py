"""Hybrid-hash join [Sha86] at page granularity.

The build phase (inside ``open``) consumes the inner (left) input: a
memory-resident fraction *q* of it goes into the in-memory hash table and
the rest is written to partition files on the join site's disk.  The probe
phase consumes the outer input, emitting the resident share of the output
immediately (pipelined) and spilling the rest of the outer to partition
files.  Finally the spilled partition pairs are read back and joined.

Spill writes are asynchronous (the engine queues them on the disk and
continues), so a join's temp I/O overlaps with its inputs' scans -- when
they share a disk this creates exactly the seek interference the paper
blames for query-shipping's poor minimum-allocation performance (4.2.2).
"""

from __future__ import annotations

import typing

from repro.engine.base import Page, PageAssembler, PhysicalOp
from repro.errors import ExecutionError
from repro.sim import AllOf, Event
from repro.storage.memory import join_allocation, plan_hybrid_hash

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import ExecutionContext
    from repro.hardware.site import Site, TempFile

__all__ = ["HashJoinIterator"]


class _PartitionSet:
    """The spill files of one join input: round-robin page placement."""

    def __init__(
        self,
        site: "Site",
        num_partitions: int,
        expected_pages: int,
        disk_index: int = 0,
    ) -> None:
        self.site = site
        per_partition = -(-max(expected_pages, num_partitions) // num_partitions) + 2
        self.files: list[TempFile] = [
            site.allocate_temp(per_partition, disk_index) for _ in range(num_partitions)
        ]
        self._cursor = 0
        self._fill = [0] * num_partitions
        self.pages_written = 0

    def next_write_page(self) -> int:
        """Disk page for the next spilled page (round-robin partitions)."""
        start = self._cursor
        while True:
            index = self._cursor
            self._cursor = (self._cursor + 1) % len(self.files)
            if self._fill[index] < self.files[index].extent.pages:
                self._fill[index] += 1
                self.pages_written += 1
                return self.files[index].page(self._fill[index] - 1)
            if self._cursor == start:
                raise ExecutionError("hybrid-hash partition files overflowed")

    def partition_pages(self, index: int) -> list[int]:
        """Disk pages written to partition ``index``, in write order."""
        return [self.files[index].page(i) for i in range(self._fill[index])]

    def release(self) -> None:
        for file in self.files:
            file.release()

    def __len__(self) -> int:
        return len(self.files)


class HashJoinIterator(PhysicalOp):
    """Hybrid-hash equi-join; left input builds, right input probes."""

    def __init__(
        self,
        context: "ExecutionContext",
        site: "Site",
        inner: PhysicalOp,
        outer: PhysicalOp,
        est_inner_pages: int,
        est_outer_pages: int,
        est_outer_tuples: float,
        est_output_tuples: float,
        output_tuple_bytes: int,
    ) -> None:
        super().__init__(context, site)
        self.inner = inner
        self.outer = outer
        self.est_inner_pages = max(1, est_inner_pages)
        self.est_outer_pages = max(1, est_outer_pages)
        self.est_outer_tuples = max(1.0, est_outer_tuples)
        self.est_output_tuples = est_output_tuples
        self.output_tuple_bytes = output_tuple_bytes
        self._buffer_pages = 0
        self._hh = None
        self._assembler = PageAssembler(
            context.config.tuples_per_page(output_tuple_bytes), output_tuple_bytes
        )
        self._ready: list[Page] = []
        self._inner_parts: _PartitionSet | None = None
        self._outer_parts: _PartitionSet | None = None
        self._pending_writes: list[Event] = []
        self._inner_tuples_seen = 0
        self._outer_tuples_seen = 0
        self._inner_tuple_bytes = 100
        self._outer_tuple_bytes = 100
        self._spill_accum_inner = 0.0
        self._spill_accum_outer = 0.0
        self._phase = "build"
        self._partition_cursor = 0

    # ------------------------------------------------------------------
    # Build phase
    # ------------------------------------------------------------------
    def _open(self) -> typing.Generator:
        config = self.config
        self._buffer_pages = join_allocation(self.est_inner_pages, config.buffer_allocation)
        self.site.memory.allocate(self._buffer_pages)
        self._hh = plan_hybrid_hash(
            self.est_inner_pages, self.est_outer_pages, self._buffer_pages
        )
        if not self._hh.in_memory:
            self._inner_parts = _PartitionSet(
                self.site, self._hh.spill_partitions, self._hh.spilled_inner_pages
            )
        yield from self.inner.open()
        spill_fraction = 1.0 - self._hh.resident_fraction
        while True:
            page = yield from self.inner.next()
            if page is None:
                break
            self._inner_tuples_seen += page.tuples
            self._inner_tuple_bytes = page.tuple_bytes
            cpu = config.hash_inst * page.tuples
            cpu += config.move_instructions(page.payload_bytes)
            yield from self.site.cpu.execute(cpu)
            if spill_fraction > 0.0:
                self._spill_accum_inner += spill_fraction
                yield from self._drain_spill("inner", page.tuple_bytes)
        yield from self._flush_spill("inner")
        yield from self.inner.close()
        yield from self._await_writes()
        self._phase = "probe"
        yield from self.outer.open()
        if not self._hh.in_memory:
            self._outer_parts = _PartitionSet(
                self.site, self._hh.spill_partitions, self._hh.spilled_outer_pages
            )

    def _drain_spill(self, which: str, tuple_bytes: int) -> typing.Generator:
        """Write a spilled page whenever a full page has accumulated."""
        parts = self._inner_parts if which == "inner" else self._outer_parts
        accum_attr = "_spill_accum_inner" if which == "inner" else "_spill_accum_outer"
        while getattr(self, accum_attr) >= 1.0 and parts is not None:
            setattr(self, accum_attr, getattr(self, accum_attr) - 1.0)
            yield from self._spill_page(parts)

    def _flush_spill(self, which: str) -> typing.Generator:
        """Write the final partial spilled page of a phase, if any."""
        parts = self._inner_parts if which == "inner" else self._outer_parts
        accum_attr = "_spill_accum_inner" if which == "inner" else "_spill_accum_outer"
        if parts is not None and getattr(self, accum_attr) >= 0.5:
            yield from self._spill_page(parts)
        setattr(self, accum_attr, 0.0)

    def _spill_page(self, parts: _PartitionSet) -> typing.Generator:
        """Asynchronously write one spilled page (CPU charged now)."""
        yield from self.site.cpu.execute(self.config.disk_inst)
        request = self.site.disk.submit("write", parts.next_write_page())
        self._pending_writes.append(request.done)

    def _await_writes(self) -> typing.Generator:
        if self._pending_writes:
            yield AllOf(self.env, self._pending_writes)
            self._pending_writes = []

    # ------------------------------------------------------------------
    # Probe phase and spilled-partition processing
    # ------------------------------------------------------------------
    def _next(self) -> typing.Generator:
        while not self._ready:
            if self._phase == "probe":
                yield from self._probe_step()
            elif self._phase == "partitions":
                yield from self._partition_step()
            elif self._phase == "flush":
                self._ready.extend(self._assembler.flush())
                self._phase = "done"
            else:
                return None
        page = self._ready.pop(0)
        yield from self.site.cpu.execute(self.config.move_instructions(page.payload_bytes))
        return page

    def _probe_step(self) -> typing.Generator:
        config = self.config
        page = yield from self.outer.next()
        if page is None:
            yield from self._flush_spill("outer")
            yield from self.outer.close()
            yield from self._await_writes()
            self._phase = "partitions" if not self._hh.in_memory else "flush"
            return
        self._outer_tuples_seen += page.tuples
        self._outer_tuple_bytes = page.tuple_bytes
        cpu = config.hash_inst * page.tuples + config.move_instructions(page.payload_bytes)
        yield from self.site.cpu.execute(cpu)
        resident = self._hh.resident_fraction
        if resident > 0.0:
            contribution = (
                self.est_output_tuples * resident * page.tuples / self.est_outer_tuples
            )
            self._ready.extend(self._assembler.add(contribution))
        if resident < 1.0:
            self._spill_accum_outer += 1.0 - resident
            yield from self._drain_spill("outer", page.tuple_bytes)

    def _partition_step(self) -> typing.Generator:
        """Join one spilled partition pair (build from inner, probe outer)."""
        assert self._inner_parts is not None and self._outer_parts is not None
        if self._partition_cursor >= len(self._inner_parts):
            self._phase = "flush"
            return
        index = self._partition_cursor
        self._partition_cursor += 1
        config = self.config
        for disk_page in self._inner_parts.partition_pages(index):
            yield from self.site.cpu.execute(config.disk_inst)
            yield self.site.disk.read(disk_page)
            cpu = config.hash_inst * config.tuples_per_page(self._inner_tuple_bytes)
            cpu += config.move_instructions(config.page_size)
            yield from self.site.cpu.execute(cpu)
        outer_pages = self._outer_parts.partition_pages(index)
        spilled_output = self.est_output_tuples * (1.0 - self._hh.resident_fraction)
        per_page_output = spilled_output / max(1, self._outer_parts.pages_written)
        for disk_page in outer_pages:
            yield from self.site.cpu.execute(config.disk_inst)
            yield self.site.disk.read(disk_page)
            cpu = config.hash_inst * config.tuples_per_page(self._outer_tuple_bytes)
            cpu += config.move_instructions(config.page_size)
            yield from self.site.cpu.execute(cpu)
            self._ready.extend(self._assembler.add(per_page_output))

    def _close(self) -> typing.Generator:
        self._release_resources()
        return
        yield  # pragma: no cover

    def abort(self) -> None:
        self._release_resources()

    def _release_resources(self) -> None:
        """Free partition files and buffer frames (idempotent)."""
        if self._inner_parts is not None:
            self._inner_parts.release()
        if self._outer_parts is not None:
            self._outer_parts.release()
        if self._buffer_pages:
            self.site.memory.release(self._buffer_pages)
            self._buffer_pages = 0
