"""Network operator pair: the producer-side pump and the receiver iterator.

"When two connected operators are located on different sites, a pair of
specialized network operators is inserted between them.  These operators
hide the details of shipping data across the network.  Tuples are shipped
across the network a page-at-a-time ... each producer has a process that
tries to stay one page ahead of its consumer" (section 3.2.1).

The pump is its own simulated process, so fragments on different sites run
concurrently: this is where both pipelined parallelism (producer/consumer
overlap) and independent parallelism (sibling subtrees) come from.
"""

from __future__ import annotations

import typing

from repro.engine.base import Page, PhysicalOp
from repro.sim import Channel, ChannelClosed

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import ExecutionContext
    from repro.hardware.site import Site

__all__ = ["ExchangeReceiver"]


class ExchangeReceiver(PhysicalOp):
    """Consumer-side network operator; owns the producer-side processes.

    Two producer-side processes implement the double buffering the paper
    describes: the *pump* drives the producer subtree (open/next/close) and
    stages each page, while the *shipper* moves staged pages over the wire.
    Production of page ``i+1`` therefore overlaps the transmission of page
    ``i``, and the whole pipeline stays one page ahead of the consumer.
    The receiver's ``next`` simply takes the next page off the channel.
    """

    def __init__(
        self,
        context: "ExecutionContext",
        consumer_site: "Site",
        producer_site: "Site",
        child: PhysicalOp,
    ) -> None:
        super().__init__(context, consumer_site)
        self.producer_site = producer_site
        self.child = child
        label = f"{producer_site.name}->{consumer_site.name}"
        self.channel = Channel(context.env, capacity=1, name=f"xfer@{label}")
        self._staged = Channel(context.env, capacity=1, name=f"stage@{label}")
        recorder = context.env.recorder
        if recorder is not None:
            # Register both channels with the session memoizer before the
            # pump/ship spawns below, matching the replay interpreter's
            # create-then-spawn order.
            recorder.record_channel(self.channel)
            recorder.record_channel(self._staged)
        self.pump_process = context.spawn(self._pump(), name=f"pump:{label}")
        self.ship_process = context.spawn(self._ship(), name=f"ship:{label}")

    def _pump(self) -> typing.Generator:
        """Drive the producer subtree, staging pages for transmission."""
        recorder = self.context.env.recorder
        yield from self.child.open()
        while True:
            page = yield from self.child.next()
            if page is None:
                break
            if recorder is not None:
                recorder.record_cput(self._staged)
            yield self._staged.put(page)
        yield from self.child.close()
        if recorder is not None:
            recorder.record_cclose(self._staged)
        self._staged.close()

    def _ship(self) -> typing.Generator:
        """Move staged pages across the network, one page ahead."""
        network = self.context.network
        recorder = self.context.env.recorder
        page_size = self.config.page_size
        while True:
            if recorder is not None:
                recorder.record_cget(self._staged)
            try:
                page = yield self._staged.get()
            except ChannelClosed:
                break
            tracer = self.context.env.tracer
            if tracer is None:
                # Flat transfer (see Network.send_flat): the shipping loop
                # moves every exchanged page, so the per-page frame savings
                # compound across the whole pipeline.
                yield from network.send_flat(self.producer_site, self.site, page_size, 1)
            else:
                # Attribute the endpoint CPU and wire time of the transfer
                # to this exchange's own label (xfer:<producer label>).
                span = tracer.begin(f"{self.label}.ship", cat="op", op=self.label)
                try:
                    yield from network.send_page(self.producer_site, self.site)
                finally:
                    tracer.end(span)
            if recorder is not None:
                recorder.record_cput(self.channel)
            yield self.channel.put(page)
        if recorder is not None:
            recorder.record_cclose(self.channel)
        self.channel.close()

    def _open(self) -> typing.Generator:
        # The pump was started when the executor launched; nothing to do.
        return
        yield  # pragma: no cover

    def _next(self) -> typing.Generator:
        recorder = self.context.env.recorder
        if recorder is not None:
            recorder.record_cget(self.channel)
        try:
            page: Page = yield self.channel.get()
        except ChannelClosed:
            return None
        return page

    def _close(self) -> typing.Generator:
        # The pump closes the producer subtree when its stream ends.  If the
        # consumer abandons the stream early, just let the channel drain.
        return
        yield  # pragma: no cover
