"""Write operators: UPDATE, INSERT, and DELETE with primary-copy write-through.

The paper's engine is read-only; these operators open the write axis.  A
write is driven from the client like a query, but its work happens at the
servers: each dirtied page travels to the *acting primary* (the first
reachable server holding a copy of the relation), is applied to the
primary's disk, propagated synchronously to every other reachable replica
(primary-copy write-through), committed through the topology's
:class:`~repro.consistency.protocol.ConsistencyManager` (which bumps page
versions and, under the invalidation protocol, broadcasts callbacks to
caching clients), and acknowledged back to the writer.

Granularity matches the engine: page-level dirtying, one page per
``next()`` call.  Relation sizes are fixed by the catalog, so INSERT
models appends into the relation's tail pages and DELETE leaves
tombstones -- neither grows nor shrinks the extent, which keeps the
read-side cost model untouched.

Writers participate in memory governance like joins do: each write
acquires a page buffer at the acting primary -- a broker grant under
dynamic memory, a static allocation otherwise -- so a write-heavy mix
contends for server memory alongside query operators.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.engine.base import Page, PhysicalOp
from repro.errors import ExecutionError, NoReachableReplicaError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import ExecutionContext
    from repro.hardware.site import Site
    from repro.storage.memory import MemoryGrant

__all__ = [
    "WriteSpec",
    "WriteIterator",
    "UpdateIterator",
    "InsertIterator",
    "DeleteIterator",
    "make_write_iterator",
    "WRITE_KINDS",
]

WRITE_KINDS = ("delete", "insert", "update")


@dataclass(frozen=True)
class WriteSpec:
    """One write statement: which pages of which relation get dirtied."""

    kind: str
    relation: str
    page_indexes: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in WRITE_KINDS:
            raise ExecutionError(
                f"unknown write kind {self.kind!r}; choose from {WRITE_KINDS}"
            )
        if not self.page_indexes:
            raise ExecutionError(f"{self.kind} of {self.relation!r} dirties no pages")
        for index in self.page_indexes:
            if index < 0:
                raise ExecutionError(f"negative page index {index}")


class WriteIterator(PhysicalOp):
    """Base write operator: one dirtied page per ``next()`` call.

    Subclasses differ only in what the page application costs: UPDATE and
    DELETE read-modify-write the target page, INSERT appends (write only),
    and UPDATE/INSERT ship the new page contents to the server while
    DELETE ships just the command.
    """

    kind = "?"
    #: Whether applying a page requires reading it first (read-modify-write).
    reads_page = True
    #: Whether the client ships a full data page (vs a control message).
    ships_page = True

    def __init__(
        self,
        context: "ExecutionContext",
        site: "Site",
        spec: WriteSpec,
    ) -> None:
        super().__init__(context, site)
        if not site.is_client:
            raise ExecutionError("writes are driven from a client site")
        self.spec = spec
        self.relation = spec.relation
        schema = context.catalog.relation(spec.relation)
        self.tuple_bytes = schema.tuple_bytes
        self.tuples_per_page = context.config.tuples_per_page(schema.tuple_bytes)
        total_pages = schema.pages(context.config)
        for index in spec.page_indexes:
            if index >= total_pages:
                raise ExecutionError(
                    f"{self.kind} of {spec.relation!r} page {index}, but the "
                    f"relation has only {total_pages} pages"
                )
        self._cursor = 0
        # Resolved in _open:
        self._primary: "Site | None" = None
        self._replicas: "list[Site]" = []
        self._grant: "MemoryGrant | None" = None
        self._static_pages = 0

    # ------------------------------------------------------------------
    # Copy resolution
    # ------------------------------------------------------------------
    def _resolve_copies(self) -> None:
        """Pick the acting primary: the first *up* server holding a copy.

        Raises :class:`NoReachableReplicaError` (transient -- a restart
        schedule may bring a copy back) when the primary and every replica
        are down.
        """
        topology = self.context.topology
        holders = self.context.catalog.servers_of(self.relation)
        reachable = [topology.site(sid) for sid in holders if topology.site(sid).up]
        if not reachable:
            raise NoReachableReplicaError(
                f"no reachable copy of {self.relation!r}: primary and all "
                f"replicas (servers {', '.join(map(str, holders))}) are down",
                relation=self.relation,
                servers=holders,
            )
        self._primary = reachable[0]
        self._replicas = reachable[1:]

    def _open(self) -> typing.Generator:
        self._resolve_copies()
        primary = self._primary
        assert primary is not None
        pages = len(self.spec.page_indexes)
        if self.config.memory.is_dynamic:
            self._grant = yield from primary.memory.request(
                1, pages, label=self.label
            )
        else:
            self._static_pages = primary.memory.allocate(1)

    # ------------------------------------------------------------------
    # Page application
    # ------------------------------------------------------------------
    def _next(self) -> typing.Generator:
        if self._cursor >= len(self.spec.page_indexes):
            return None
        index = self.spec.page_indexes[self._cursor]
        self._cursor += 1
        primary = self._primary
        assert primary is not None
        network = self.context.network
        config = self.config
        # Ship the statement (and, for INSERT/UPDATE, the new contents).
        if self.ships_page:
            yield from network.send_page(self.site, primary)
        else:
            yield from network.send_request(self.site, primary)
        # Apply at the acting primary.
        yield from self._apply_at(primary, index)
        primary.consistency.write_pages += 1
        # Synchronous write-through to every other reachable replica.
        for replica in self._replicas:
            yield from network.send_page(primary, replica)
            yield from self._write_at(replica, index)
            replica.consistency.write_pages += 1
        # Commit: bump page versions; the invalidation protocol also
        # broadcasts callbacks to clients caching this page.
        manager = self.context.topology.consistency
        if manager is not None:
            yield from manager.commit_write(primary, self.relation, (index,))
        # Acknowledge back to the writer.
        yield from network.send_request(primary, self.site)
        return Page(self.tuples_per_page, self.tuple_bytes)

    def _apply_at(self, server: "Site", index: int) -> typing.Generator:
        if self.reads_page:
            yield from self._read_at(server, index)
        yield from self._write_at(server, index)

    def _read_at(self, server: "Site", index: int) -> typing.Generator:
        disk_index, extent = server.relation_location(self.relation)
        yield from server.cpu.execute(self.config.disk_inst)
        yield server.disks[disk_index].read(extent.page(index))

    def _write_at(self, server: "Site", index: int) -> typing.Generator:
        disk_index, extent = server.relation_location(self.relation)
        yield from server.cpu.execute(self.config.disk_inst)
        yield server.disks[disk_index].write(extent.page(index))

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------
    def _release_memory(self) -> None:
        if self._grant is not None:
            self._grant.release()
            self._grant = None
        if self._static_pages and self._primary is not None:
            self._primary.memory.release(self._static_pages)
            self._static_pages = 0

    def _close(self) -> typing.Generator:
        self._release_memory()
        return
        yield  # pragma: no cover - generator protocol

    def abort(self) -> None:
        self._release_memory()


class UpdateIterator(WriteIterator):
    """UPDATE: read-modify-write; new contents travel to the server."""

    kind = "update"
    reads_page = True
    ships_page = True


class InsertIterator(WriteIterator):
    """INSERT: append into the relation's tail pages (write only)."""

    kind = "insert"
    reads_page = False
    ships_page = True


class DeleteIterator(WriteIterator):
    """DELETE: tombstone tuples in place; only the command travels."""

    kind = "delete"
    reads_page = True
    ships_page = False


_ITERATORS = {
    "update": UpdateIterator,
    "insert": InsertIterator,
    "delete": DeleteIterator,
}


def make_write_iterator(
    context: "ExecutionContext", site: "Site", spec: WriteSpec
) -> WriteIterator:
    """Instantiate the physical operator for one write statement."""
    return _ITERATORS[spec.kind](context, site, spec)
