"""Select operator: applies a predicate, reducing the stream.

Charges ``Compare`` instructions per input tuple and ``MoveInst``-based copy
costs for the surviving tuples, repacking survivors into full output pages.
"""

from __future__ import annotations

import typing

from repro.engine.base import Page, PageAssembler, PhysicalOp

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import ExecutionContext
    from repro.hardware.site import Site

__all__ = ["SelectIterator"]


class SelectIterator(PhysicalOp):
    """Filters its input stream with a predicate of known selectivity."""

    def __init__(
        self,
        context: "ExecutionContext",
        site: "Site",
        child: PhysicalOp,
        selectivity: float,
    ) -> None:
        super().__init__(context, site)
        self.child = child
        self.selectivity = selectivity
        self._assembler: PageAssembler | None = None
        self._ready: list[Page] = []
        self._input_done = False

    def _open(self) -> typing.Generator:
        yield from self.child.open()

    def _next(self) -> typing.Generator:
        while not self._ready and not self._input_done:
            page = yield from self.child.next()
            if page is None:
                self._input_done = True
                if self._assembler is not None:
                    self._ready.extend(self._assembler.flush())
                break
            if self._assembler is None:
                self._assembler = PageAssembler(
                    self.config.tuples_per_page(page.tuple_bytes), page.tuple_bytes
                )
            surviving = page.tuples * self.selectivity
            cpu = self.config.compare_inst * page.tuples
            cpu += self.config.move_instructions(round(surviving) * page.tuple_bytes)
            yield from self.site.cpu.execute(cpu)
            self._ready.extend(self._assembler.add(surviving))
        if self._ready:
            return self._ready.pop(0)
        return None

    def _close(self) -> typing.Generator:
        yield from self.child.close()
