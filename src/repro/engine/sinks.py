"""Display operator: presents the query result at the client."""

from __future__ import annotations

import typing

from repro.engine.base import PhysicalOp

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import ExecutionContext
    from repro.hardware.site import Site

__all__ = ["DisplayIterator"]


class DisplayIterator(PhysicalOp):
    """Root of every physical plan; charges ``Display`` per result tuple."""

    def __init__(self, context: "ExecutionContext", site: "Site", child: PhysicalOp) -> None:
        super().__init__(context, site)
        self.child = child
        self.result_tuples = 0
        self.result_pages = 0

    def _open(self) -> typing.Generator:
        yield from self.child.open()

    def _next(self) -> typing.Generator:
        page = yield from self.child.next()
        if page is None:
            return None
        if self.config.display_inst:
            yield from self.site.cpu.execute(self.config.display_inst * page.tuples)
        self.result_tuples += page.tuples
        self.result_pages += 1
        return page

    def _close(self) -> typing.Generator:
        yield from self.child.close()
