"""Semi-join reducer: drop non-joining tuples before they are shipped.

At open, a digest of the join column of the reducing relation (one
``key_bytes`` entry per tuple) is built at that relation's server, shipped
to the reducer's site page by page, and hashed into a lookup table.  Each
input page is then probed against the table and only the surviving fraction
travels upstream -- paying digest pages and hashing CPU to save data pages,
a win exactly when join participation is low (the paper's HiSel workloads).
"""

from __future__ import annotations

import math
import typing

from repro.engine.base import Page, PageAssembler, PhysicalOp
from repro.plans.logical import SemiJoinReduction

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import ExecutionContext
    from repro.hardware.site import Site

__all__ = ["SemiJoinIterator"]


class SemiJoinIterator(PhysicalOp):
    """Filters its input against a shipped join-column digest."""

    def __init__(
        self,
        context: "ExecutionContext",
        site: "Site",
        child: PhysicalOp,
        reduction: SemiJoinReduction,
        digest_site_id: int,
        digest_tuples: int,
    ) -> None:
        super().__init__(context, site)
        self.child = child
        self.reduction = reduction
        self.digest_site_id = digest_site_id
        self.digest_tuples = digest_tuples
        self.digest_pages = math.ceil(
            digest_tuples * reduction.key_bytes / context.config.page_size
        )
        self._assembler: PageAssembler | None = None
        self._ready: list[Page] = []
        self._input_done = False

    def _open(self) -> typing.Generator:
        config = self.config
        source = self.context.topology.site(self.digest_site_id)
        # Build the digest where the reducing relation's partner lives...
        yield from source.cpu.execute(config.hash_inst * self.digest_tuples)
        # ...ship it over (a no-op when the reducer runs at that server)...
        if source is not self.site:
            network = self.context.network
            for _ in range(self.digest_pages):
                yield from network.send_flat(source, self.site, config.page_size, 1)
        # ...and hash it into the local lookup table.
        yield from self.site.cpu.execute(config.hash_inst * self.digest_tuples)
        yield from self.child.open()

    def _next(self) -> typing.Generator:
        while not self._ready and not self._input_done:
            page = yield from self.child.next()
            if page is None:
                self._input_done = True
                if self._assembler is not None:
                    self._ready.extend(self._assembler.flush())
                break
            if self._assembler is None:
                self._assembler = PageAssembler(
                    self.config.tuples_per_page(page.tuple_bytes), page.tuple_bytes
                )
            surviving = page.tuples * self.reduction.survivor_fraction
            cpu = self.config.hash_inst * page.tuples
            cpu += self.config.move_instructions(round(surviving) * page.tuple_bytes)
            yield from self.site.cpu.execute(cpu)
            self._ready.extend(self._assembler.add(surviving))
        if self._ready:
            return self._ready.pop(0)
        return None

    def _close(self) -> typing.Generator:
        yield from self.child.close()
