"""Scan operators: sequential server scans and client scans with faulting.

A scan annotated ``primary copy`` reads the relation's extent sequentially
from the server disk.  A scan annotated ``client`` reads the cached prefix
from the client disk and *faults in* every missing page from the relation's
server, one page at a time via a synchronous request/response exchange --
the paper notes this page-at-a-time behaviour denies data-shipping the
communication/processing overlap query-shipping gets (section 4.2.3).
"""

from __future__ import annotations

import typing

from repro.engine.base import Page, PhysicalOp
from repro.errors import ExecutionError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import ExecutionContext
    from repro.hardware.site import Site

__all__ = ["ScanIterator"]


class ScanIterator(PhysicalOp):
    """Produces all pages of one base relation at its bound site."""

    def __init__(
        self,
        context: "ExecutionContext",
        site: "Site",
        relation: str,
        home_server_id: int | None = None,
    ) -> None:
        super().__init__(context, site)
        self.relation = relation
        # Which copy serves this scan: an explicit replica choice from the
        # plan (``ScanOp.home``), or None for the primary copy.
        self.home_server_id = home_server_id
        schema = context.catalog.relation(relation)
        self.tuple_bytes = schema.tuple_bytes
        self.tuples_per_page = context.config.tuples_per_page(schema.tuple_bytes)
        self.total_tuples = schema.tuples
        self.total_pages = schema.pages(context.config)
        self._page_index = 0
        # Resolved in _open:
        self._home_server: "Site | None" = None
        self._home_disk_index = 0
        self._home_extent = None
        self._cached = None  # CachedRelation when scanning at the client
        self._buffer = None  # BufferCache when the client caches dynamically

    def _open(self) -> typing.Generator:
        topology = self.context.topology
        home_id = self.home_server_id
        if home_id is None:
            home_id = self.context.catalog.server_of(self.relation)
        home = topology.site(home_id)
        self._home_server = home
        self._home_disk_index, self._home_extent = home.relation_location(self.relation)
        if self.site.is_client:
            self._buffer = self.site.buffer_cache
            if self._buffer is None:
                assert self.site.cache is not None
                self._cached = self.site.cache.lookup(self.relation)
        elif self.site is not home:
            raise ExecutionError(
                f"copy scan of {self.relation!r} bound to {self.site.name}, "
                f"but the chosen copy lives on {home.name}"
            )
        return
        yield  # pragma: no cover

    def _tuples_on_page(self, index: int) -> int:
        if index < self.total_pages - 1:
            return self.tuples_per_page
        return self.total_tuples - self.tuples_per_page * (self.total_pages - 1)

    def _next(self) -> typing.Generator:
        if self._page_index >= self.total_pages:
            return None
        index = self._page_index
        self._page_index += 1
        if not self.site.is_client:
            yield from self._read_local_primary(index)
        elif self._buffer is not None:
            yield from self._read_dynamic(index)
        elif self._cached is not None and self._cached.contains(index):
            yield from self._read_client_cache(index)
        else:
            yield from self._fault_from_server(index)
        return Page(self._tuples_on_page(index), self.tuple_bytes)

    def _read_local_primary(self, index: int) -> typing.Generator:
        """Sequential read from this server's own disk."""
        yield from self.site.cpu.execute(self.config.disk_inst)
        disk = self.site.disks[self._home_disk_index]
        yield disk.read(self._home_extent.page(index))

    def _read_client_cache(self, index: int) -> typing.Generator:
        """Sequential read of a cached page from the client disk."""
        yield from self.site.cpu.execute(self.config.disk_inst)
        yield self.site.disk.read(self._cached.disk_page(index))

    def _read_dynamic(self, index: int) -> typing.Generator:
        """Dynamic-cache read: serve resident pages locally, fault the rest.

        A miss faults the page from the server exactly like the static
        path, then (demand paging) admits it into the buffer cache and
        writes it to the client disk, so later queries in the stream read
        it locally.
        """
        buffer = self._buffer
        assert buffer is not None
        manager = self.context.topology.consistency
        recorder = self.context.env.recorder
        page = buffer.lookup(self.relation, index)
        if recorder is not None:
            recorder.record_blook(self.relation, index, page)
        if page is not None:
            if manager is not None:
                assert self._home_server is not None
                fresh = yield from manager.validate_hit(
                    self.site, self._home_server, self.relation, index
                )
                if not fresh:
                    # Stale copy: detected, invalidated, never served --
                    # fall through to the demand-paging fault path.
                    page = None
            if page is not None:
                yield from self.site.cpu.execute(self.config.disk_inst)
                yield self.site.disk.read(page)
                return
        # Capture the version stamp *before* issuing the fault.  The bytes
        # the server returns are those on its disk when the read is served;
        # a write committing while the fault's reply is still on the wire
        # must not get its newer version stamped onto the older contents
        # (the old post-fault capture did exactly that, marking a stale
        # page fresh and defeating the validate-on-hit check).  Stamping
        # the pre-fault version is conservative: if a write raced in, the
        # next hit fails the version compare and re-faults.
        version = 0 if manager is None else manager.current_version(self.relation, index)
        yield from self._fault_from_server(index)
        if buffer.admit_on_fault:
            slot = buffer.admit(self.relation, index, version=version)
            if recorder is not None:
                recorder.record_badmit(self.relation, index, version, slot)
            if slot is not None:
                yield from self.site.cpu.execute(self.config.disk_inst)
                yield self.site.disk.write(slot)

    def _fault_from_server(self, index: int) -> typing.Generator:
        """Synchronous page-at-a-time fault from the relation's server."""
        server = self._home_server
        assert server is not None
        network = self.context.network
        tracer = self.context.env.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                f"fault[{self.relation}#{index}]",
                cat="cache",
                args={"relation": self.relation, "page": index},
            )
        try:
            # Direct flat sends (rather than the send_request/send_page
            # wrappers): page faults dominate data-shipping runs, and the
            # wrapper frame is pure overhead on this path.
            config = self.config
            yield from network.send_flat(self.site, server, config.request_message_bytes)
            yield from server.cpu.execute(config.disk_inst)
            disk = server.disks[self._home_disk_index]
            yield disk.read(self._home_extent.page(index))
            yield from network.send_flat(server, self.site, config.page_size, 1)
        finally:
            if tracer is not None:
                tracer.end(span)

    def _close(self) -> typing.Generator:
        return
        yield  # pragma: no cover
