"""Query executor: builds physical operator trees and drives them.

One :class:`QueryExecutor` owns one simulated system: by default it creates
the environment and topology, installs the catalog, starts any external
load generators, converts a bound plan into physical iterators (inserting
exchange pairs on cross-site edges), and runs the root display to
completion.  The result carries the study's two metrics -- response time
and pages sent -- plus detailed resource statistics.

For multi-client workloads the executor can instead be built *around* an
existing environment and topology, and :class:`QuerySession` runs one
query as a simulated process on that shared system: many sessions execute
concurrently, contending on the server CPUs, disks, and the network, with
optional server-side admission control (see :mod:`repro.workload`).

With a :class:`~repro.faults.FaultSchedule` attached, the executor becomes
fault tolerant: a :class:`~repro.faults.FaultInjector` crashes servers,
partitions the network, and slows disks mid-run, and a client-side
*recovery loop* reacts to the resulting
:class:`~repro.errors.TransientFaultError`\\ s with bounded retries
(exponential backoff + jitter, all in sim time), re-optimizing around
crashed sites -- falling back to the client's cached copies exactly where
the paper predicts data- and hybrid-shipping shine.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.config import OptimizerConfig, SystemConfig
from repro.costmodel.estimates import Estimator
from repro.costmodel.model import EnvironmentState, Objective
from repro.engine.aggregates import HashAggregateIterator
from repro.engine.base import PhysicalOp
from repro.engine.exchange import ExchangeReceiver
from repro.engine.filters import UdfFilterIterator
from repro.engine.joins import HashJoinIterator
from repro.engine.loadgen import DiskLoadGenerator
from repro.engine.scans import ScanIterator
from repro.engine.selects import SelectIterator
from repro.engine.semijoins import SemiJoinIterator
from repro.engine.sinks import DisplayIterator
from repro.engine.writes import WriteSpec, make_write_iterator
from repro.errors import (
    ConfigurationError,
    ExecutionError,
    OptimizationError,
    PolicyViolationError,
    QueryShedError,
    QueryTimeoutError,
    TransientFaultError,
)
from repro.faults.injector import FaultInjector
from repro.faults.recovery import RecoveryPolicy, RecoveryStats
from repro.faults.schedule import FaultSchedule
from repro.hardware.site import CLIENT_SITE_ID, Site
from repro.hardware.topology import Topology
from repro.plans.annotations import Annotation
from repro.plans.binding import BoundPlan, bind_plan
from repro.plans.logical import Query
from repro.plans.operators import (
    AggregateOp,
    DisplayOp,
    JoinOp,
    PlanOp,
    ScanOp,
    SelectOp,
    SemiJoinOp,
    UdfFilterOp,
)
from repro.plans.policies import Policy, allowed_annotations, check_policy
from repro.plans.validate import validate_plan
from repro.sim import AnyOf, Environment, Event, Process
from repro.storage.memory import MemoryPressureState

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.caching.buffer import CacheState
    from repro.obs.telemetry import Telemetry, TelemetryConfig
    from repro.obs.trace import Tracer
    from repro.optimizer.cache import PlanCache

__all__ = [
    "ExecutionContext",
    "ExecutionResult",
    "QueryExecutor",
    "QuerySession",
    "SessionResult",
    "WriteSession",
]


class ExecutionContext:
    """Shared state all physical operators of one run (or attempt) see.

    Under fault-tolerant execution each attempt gets its own supervised
    context: processes it spawns catch :class:`TransientFaultError` and
    report it to :attr:`fault_event` instead of letting it escape, so the
    recovery loop can abort the attempt and retry.
    """

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        catalog: Catalog,
        query: Query,
        estimator: Estimator,
        supervised: bool = False,
    ) -> None:
        self.env = env
        self.topology = topology
        self.catalog = catalog
        self.query = query
        self.estimator = estimator
        self.config = topology.config
        self.network = topology.network
        self.processes: list[Process] = []
        self.operators: list[PhysicalOp] = []
        self.fault_event: Event | None = Event(env) if supervised else None

    def register_op(self, op: PhysicalOp) -> None:
        self.operators.append(op)

    def pages_produced(self) -> int:
        """Pages produced so far by every operator of this context."""
        return sum(op.pages_produced for op in self.operators)

    def report_fault(self, exc: Exception) -> None:
        """Signal the recovery loop (first fault wins; later ones no-op)."""
        if self.fault_event is not None and not self.fault_event.triggered:
            self.fault_event.fail(exc)

    def spawn(self, generator: typing.Generator, name: str = "") -> Process:
        if self.fault_event is not None:
            generator = self._supervise(generator)
        process = self.env.process(generator, name=name)
        recorder = self.env.recorder
        if recorder is not None:
            # Register the child with the session memoizer: its primitive
            # ops land on a new stream of the active recording, and the
            # parent stream gets a spawn op at this exact point.
            recorder.record_spawn(process, name)
        self.processes.append(process)
        return process

    def abort(self) -> None:
        """Release resources held by this attempt's operators (idempotent).

        Called when an attempt is abandoned mid-run: operators whose
        ``close`` will never run give their buffer memory and temp extents
        back, so later attempts (and concurrent sessions) are not starved
        by leaked allocations.
        """
        for op in self.operators:
            op.abort()

    def _supervise(self, generator: typing.Generator) -> typing.Generator:
        """Convert an escaping transient fault (or shed) into a fault-event
        report.  Sheds are included because a static-allocation join deep in
        a spawned exchange subtree can hit an exhausted buffer pool; the
        supervising loop must see that as this attempt's outcome, not as an
        exception crashing the strict environment."""
        try:
            result = yield from generator
        except (QueryShedError, TransientFaultError) as exc:
            self.report_fault(exc)
            return None
        return result


@dataclass
class ExecutionResult:
    """Metrics of one simulated query execution."""

    response_time: float
    pages_sent: int
    control_messages: int
    bytes_sent: int
    result_tuples: int
    result_pages: int
    disk_utilizations: dict[str, float] = field(default_factory=dict)
    cpu_utilizations: dict[str, float] = field(default_factory=dict)
    network_utilization: float = 0.0
    disk_reads: int = 0
    disk_writes: int = 0
    # Recovery observability (all zero on a fault-free run).
    retries: int = 0
    replans: int = 0
    wasted_work_pages: int = 0
    time_to_recover: float = 0.0
    faults_seen: int = 0
    messages_dropped: int = 0
    # Snapshot of the topology's metrics registry at completion
    # (site.server1.disk0.pages_read, network.bytes_sent, ...).
    profile: dict[str, float] = field(default_factory=dict)
    # Dynamic-cache snapshot of the driving client at completion; None
    # under the static prefix model.
    cache_state: "CacheState | None" = None
    # Sampled time series of the run (per-interval utilizations, queue
    # depths, cache occupancy); None unless a telemetry config was passed.
    telemetry: "Telemetry | None" = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        text = (
            f"response_time={self.response_time:.3f}s pages_sent={self.pages_sent} "
            f"result_tuples={self.result_tuples}"
        )
        if self.retries or self.replans:
            text += (
                f" retries={self.retries} replans={self.replans} "
                f"time_to_recover={self.time_to_recover:.3f}s"
            )
        return text


class QueryExecutor:
    """Runs bound plans on a simulated system.

    By default the executor builds a fresh system (environment, topology,
    installed catalog) and :meth:`execute` runs one plan to completion on
    it.  Passing ``topology`` (and optionally ``env``) instead attaches the
    executor to an existing, already-installed system -- the multi-client
    workload mode, where :meth:`session` creates concurrently running
    :class:`QuerySession`\\ s and the caller drives the environment.
    """

    def __init__(
        self,
        config: SystemConfig,
        catalog: Catalog,
        query: Query,
        seed: int = 0,
        server_loads: dict[int, float] | None = None,
        faults: FaultSchedule | None = None,
        recovery: RecoveryPolicy | None = None,
        policy: Policy | None = None,
        objective: Objective = Objective.RESPONSE_TIME,
        optimizer_config: OptimizerConfig | None = None,
        env: Environment | None = None,
        topology: Topology | None = None,
        tracer: "Tracer | None" = None,
        plan_cache: "PlanCache | None" = None,
        telemetry: "TelemetryConfig | None" = None,
    ) -> None:
        self.config = config
        self.catalog = catalog
        self.query = query
        self.seed = seed
        self.server_loads = dict(server_loads or {})
        if topology is not None:
            if env is not None and env is not topology.env:
                raise ConfigurationError(
                    "explicit env does not match the provided topology's env"
                )
            # Shared system: the caller created the topology and installed
            # the catalog on it (possibly with per-client cache contents).
            self.env = topology.env
            self.topology = topology
        else:
            self.env = env if env is not None else Environment()
            self.topology = Topology(self.env, config, seed=seed)
            catalog.install(self.topology)
        self.tracer = tracer
        if tracer is not None:
            tracer.bind(self.env)
        self.estimator = Estimator(query, catalog, config)
        self.context = ExecutionContext(
            self.env, self.topology, catalog, query, self.estimator
        )
        self.load_generators: list[DiskLoadGenerator] = []
        for site_id, rate in self.server_loads.items():
            self.load_generators.append(
                DiskLoadGenerator(
                    self.env,
                    self.topology.site(site_id),
                    rate,
                    # A per-purpose child stream: the old ``seed * 7919 +
                    # site_id`` arithmetic collided with other derived seeds
                    # (and with neighbouring sites under nearby seeds).
                    rng=random.Random(f"{seed}:loadgen:{site_id}"),
                )
            )
        # Fault tolerance: only engaged when there is something to survive,
        # so fault-free runs are event-for-event identical to the seed
        # behaviour (see tests/properties/test_fault_determinism.py).
        self.faults = faults
        self.recovery = recovery
        self.policy = policy
        self.objective = objective
        self.optimizer_config = optimizer_config
        self.plan_cache = plan_cache
        self.recovery_stats = RecoveryStats()
        self.injector: FaultInjector | None = None
        if faults is not None and not faults.is_empty:
            self.injector = FaultInjector(self.env, self.topology, faults, seed=seed)
        # Telemetry: a simulated-time gauge sampler, created only on
        # request -- the default (None) adds no process and no events, so
        # unsampled runs stay byte-identical to the seed behaviour.
        self.sampler = None
        if telemetry is not None:
            from repro.obs.telemetry import TelemetrySampler

            self.sampler = TelemetrySampler(self.env, self.topology.metrics, telemetry)
        # Session memoizer (workload runs only; see repro.workload.memo).
        # The runner sets this after checking the eligibility gates; None
        # keeps every session on the plain simulate-it path.
        self.session_memo: typing.Any = None
        self._begin_execute()

    @property
    def fault_tolerant(self) -> bool:
        """True when execution goes through the recovery loop."""
        return self.injector is not None or self.recovery is not None

    # ------------------------------------------------------------------
    # Physical plan construction
    # ------------------------------------------------------------------
    def build_physical(
        self, bound: BoundPlan, context: ExecutionContext | None = None
    ) -> DisplayIterator:
        """Translate a bound plan into physical iterators with exchanges.

        Every physical operator is stamped with its plan-derived label
        (``scan[RelA]@server1``, ``join#0@client``, exchanges as
        ``xfer:<producer label>``) -- the key the tracer and the cost-model
        validation harness join on.
        """
        context = context or self.context
        root = bound.root
        if not isinstance(root, DisplayOp):
            raise ExecutionError("bound plan root must be a display operator")
        labels = bound.operator_labels()
        display_site = self.topology.site(bound.site_of(root))
        child = self._build_op(root.child, bound, context, labels)
        child = self._maybe_exchange(display_site, root.child, child, bound, context)
        display = DisplayIterator(context, display_site, child)
        display.label = labels[id(root)]
        return display

    def _build_op(
        self,
        op: PlanOp,
        bound: BoundPlan,
        context: ExecutionContext,
        labels: dict[int, str],
    ) -> PhysicalOp:
        site = self.topology.site(bound.site_of(op))
        phys: PhysicalOp
        if isinstance(op, ScanOp):
            phys = ScanIterator(context, site, op.relation, home_server_id=op.home)
        elif isinstance(op, SelectOp):
            child = self._build_op(op.child, bound, context, labels)
            child = self._maybe_exchange(site, op.child, child, bound, context)
            phys = SelectIterator(context, site, child, op.selectivity)
        elif isinstance(op, UdfFilterOp):
            child = self._build_op(op.child, bound, context, labels)
            child = self._maybe_exchange(site, op.child, child, bound, context)
            phys = UdfFilterIterator(context, site, child, op.udf)
        elif isinstance(op, SemiJoinOp):
            child = self._build_op(op.child, bound, context, labels)
            child = self._maybe_exchange(site, op.child, child, bound, context)
            reduction = op.reduction
            phys = SemiJoinIterator(
                context,
                site,
                child,
                reduction,
                digest_site_id=self.catalog.server_of(reduction.digest_of),
                digest_tuples=self.catalog.relation(reduction.digest_of).tuples,
            )
        elif isinstance(op, AggregateOp):
            child = self._build_op(op.child, bound, context, labels)
            child = self._maybe_exchange(site, op.child, child, bound, context)
            est = self.estimator
            phys = HashAggregateIterator(
                context,
                site,
                child,
                est_groups=est.cardinality(op),
                output_tuple_bytes=est.tuple_bytes(op),
            )
        elif isinstance(op, JoinOp):
            inner = self._build_op(op.inner, bound, context, labels)
            inner = self._maybe_exchange(site, op.inner, inner, bound, context)
            outer = self._build_op(op.outer, bound, context, labels)
            outer = self._maybe_exchange(site, op.outer, outer, bound, context)
            est = self.estimator
            phys = HashJoinIterator(
                context,
                site,
                inner,
                outer,
                est_inner_pages=est.pages(op.inner),
                est_outer_pages=est.pages(op.outer),
                est_outer_tuples=est.cardinality(op.outer),
                est_output_tuples=est.cardinality(op),
                output_tuple_bytes=est.tuple_bytes(op),
            )
        else:
            raise ExecutionError(f"cannot build physical operator for {op.kind}")
        phys.label = labels[id(op)]
        return phys

    def _maybe_exchange(
        self,
        consumer_site: Site,
        child_op: PlanOp,
        child_phys: PhysicalOp,
        bound: BoundPlan,
        context: ExecutionContext,
    ) -> PhysicalOp:
        producer_site = self.topology.site(bound.site_of(child_op))
        if producer_site is consumer_site:
            return child_phys
        receiver = ExchangeReceiver(context, consumer_site, producer_site, child_phys)
        receiver.label = f"xfer:{child_phys.label}"
        return receiver

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, plan: "DisplayOp | BoundPlan") -> ExecutionResult:
        """Bind (if needed), build, and run a plan; return its metrics.

        Without faults this is the classic single-attempt path.  With a
        fault schedule (or an explicit recovery policy) the run goes
        through the recovery loop: transient faults abort the attempt,
        bounded retries follow, and the final failure -- if recovery is
        exhausted -- propagates as the fault that caused it.
        """
        self._begin_execute()
        if self.fault_tolerant:
            return self._execute_with_recovery(plan)
        if isinstance(plan, BoundPlan):
            bound = plan
        else:
            validate_plan(plan, self.query)
            bound = bind_plan(plan, self.catalog)
        root = self.build_physical(bound)
        driver = self.env.process(self._drive(root), name="query-driver")
        self.env.run(until=driver)
        return self._collect(root)

    def _drive(self, root: DisplayIterator) -> typing.Generator:
        # The untraced loop is spelled out (not delegated to a helper
        # generator) because an extra `yield from` frame here would sit on
        # every resume of the query driver.
        tracer = self.env.tracer
        if tracer is None:
            yield from root.open()
            while True:
                page = yield from root.next()
                if page is None:
                    break
            yield from root.close()
            return
        span = tracer.begin("query", cat="query")
        try:
            yield from root.open()
            while True:
                page = yield from root.next()
                if page is None:
                    break
            yield from root.close()
        finally:
            tracer.end(span)

    # ------------------------------------------------------------------
    # Fault-tolerant execution
    # ------------------------------------------------------------------
    def _execute_with_recovery(self, plan: "DisplayOp | BoundPlan") -> ExecutionResult:
        recovery = self.recovery or RecoveryPolicy()
        if isinstance(plan, BoundPlan):
            annotated: DisplayOp | None = None
            bound: BoundPlan | None = plan
        else:
            validate_plan(plan, self.query)
            annotated = plan
            bound = None
        driver = self.env.process(
            self._recovery_loop(annotated, bound, recovery), name="recovery-driver"
        )
        return self.env.run(until=driver)

    def _recovery_loop(
        self,
        annotated: DisplayOp | None,
        prebound: BoundPlan | None,
        recovery: RecoveryPolicy,
    ) -> typing.Generator:
        env = self.env
        stats = self.recovery_stats
        rng = random.Random(f"{self.seed}:recovery")
        # Measured from the start of *this* execution, so a re-executed
        # topology (env.now > 0) gets the full timeout budget.
        deadline = None if recovery.query_timeout is None else env.now + recovery.query_timeout
        attempt = 0
        while True:
            attempt += 1
            context = ExecutionContext(
                env, self.topology, self.catalog, self.query, self.estimator,
                supervised=True,
            )
            bound = prebound if annotated is None else bind_plan(annotated, self.catalog)
            assert bound is not None
            root = self.build_physical(bound, context)
            consumer = context.spawn(self._drive(root), name=f"query-driver#{attempt}")
            assert context.fault_event is not None
            watchers: list[Event] = [consumer, context.fault_event]
            if deadline is not None:
                watchers.append(env.timeout(max(0.0, deadline - env.now)))
            failure: TransientFaultError | None = None
            try:
                yield AnyOf(env, watchers)
            except QueryShedError:
                # Shedding is a load-control verdict, not a fault: release
                # this attempt's resources and let the caller see it.
                context.abort()
                raise
            except TransientFaultError as exc:
                failure = exc
            if failure is None:
                if consumer.triggered and consumer.ok:
                    time_to_recover = stats.record_success(env.now)
                    return self._collect(root, context, time_to_recover)
                failure = QueryTimeoutError(
                    f"query timed out after {recovery.query_timeout}s (attempt {attempt})"
                )
            stats.record_fault(env.now)
            stats.wasted_work_pages.add(context.pages_produced())
            context.abort()
            if env.tracer is not None:
                env.tracer.instant(
                    "attempt-failed",
                    cat="fault",
                    args={"attempt": attempt, "error": str(failure)},
                )
            if deadline is not None and env.now >= deadline:
                if not isinstance(failure, QueryTimeoutError):
                    failure = QueryTimeoutError(
                        f"query timed out after {recovery.query_timeout}s while "
                        f"recovering from: {failure}"
                    )
                raise failure
            if attempt >= recovery.max_attempts:
                raise failure
            stats.retries.add()
            if env.tracer is not None:
                env.tracer.instant("retry", cat="fault", args={"attempt": attempt + 1})
            yield env.timeout(recovery.backoff(attempt, rng))
            if recovery.replan and annotated is not None:
                replanned = self._replan(annotated)
                if replanned is not None:
                    annotated = replanned
                    stats.replans.add()

    def _client_cache_view(self, client_site: int) -> "tuple[typing.Any, str]":
        """The (cache state, contents digest) of one client's live cache.

        Static caches contribute a digest only (the cost model already
        reads their fractions from the catalog -- unless a per-client
        override made the disk differ from the catalog, which is exactly
        what the digest keys); dynamic caches contribute their snapshot
        too, so replans price client scans against what is resident *now*.
        """
        site = self.topology.site(client_site)
        if site.buffer_cache is not None:
            state = site.buffer_cache.snapshot()
            return state, state.digest()
        if site.cache is not None:
            return None, site.cache.digest()
        return None, ""

    def _replan(
        self, annotated: DisplayOp, client_site: int = CLIENT_SITE_ID
    ) -> DisplayOp | None:
        """Re-route or re-optimize around crashed sites; None if nothing
        useful to do.

        Each scan whose serving copy is down is first offered a *surviving
        replica*: if every affected relation has one, the plan is simply
        rehomed onto the survivors -- no re-optimization, and every policy
        (including query-shipping) can fail over this way.  Relations with
        no reachable copy at all are constrained to be scanned at the
        client (from its cached prefix) -- the data-shipping fallback,
        which policies without ``client`` scans cannot express, so they
        keep their plan and simply wait out the restart window.
        """
        from repro.optimizer.random_plans import rehome_scans
        from repro.optimizer.two_phase import RandomizedOptimizer

        down = {site.site_id for site in self.topology.servers if not site.up}
        if not down:
            return None
        rehomed: dict[str, int | None] = {}
        stranded: set[str] = set()
        for op in annotated.walk():
            if not isinstance(op, ScanOp) or op.relation in rehomed or op.relation in stranded:
                continue
            primary = self.catalog.server_of(op.relation)
            home = op.home if op.home is not None else primary
            if home not in down:
                continue
            survivors = [s for s in self.catalog.servers_of(op.relation) if s not in down]
            if survivors:
                rehomed[op.relation] = None if survivors[0] == primary else survivors[0]
            else:
                stranded.add(op.relation)
        if not rehomed and not stranded:
            return None
        if not stranded:
            # Pure replica failover: keep the plan, repoint the scans.
            return rehome_scans(annotated, rehomed)
        excluded = frozenset(stranded)
        policy = self.policy or self._infer_policy(annotated)
        if Annotation.CLIENT not in allowed_annotations(policy, "scan"):
            return None
        cache_state, cache_digest = self._client_cache_view(client_site)
        environment = EnvironmentState(
            self.catalog,
            self.config,
            dict(self.server_loads),
            cache_state=cache_state,
            # Under dynamic governance a replan prices plans against the
            # brokers' *current* occupancy, steering joins away from
            # saturated sites; the pressure digest keys the plan cache.
            memory_pressure=(
                MemoryPressureState.capture(self.topology.sites)
                if self.config.memory.is_dynamic
                else None
            ),
        )
        try:
            result = RandomizedOptimizer(
                self.query,
                environment,
                policy=policy,
                objective=self.objective,
                config=self.optimizer_config or OptimizerConfig.fast(),
                seed=self.seed,
                forced_client_relations=excluded,
                plan_cache=self.plan_cache,
                cache_digest=cache_digest,
            ).optimize()
        except OptimizationError:
            return None
        # Freshly optimized scans default to the primary copy; repoint the
        # relations whose serving copy is down onto their survivors.
        return rehome_scans(result.plan, rehomed)

    @staticmethod
    def _infer_policy(plan: DisplayOp) -> Policy:
        """Strictest policy the plan's annotations conform to."""
        for policy in (
            Policy.DATA_SHIPPING,
            Policy.QUERY_SHIPPING,
            Policy.HYBRID_SHIPPING,
        ):
            try:
                check_policy(plan, policy)
                return policy
            except PolicyViolationError:
                continue
        return Policy.HYBRID_SHIPPING

    # ------------------------------------------------------------------
    # Sessions (multi-client workload mode)
    # ------------------------------------------------------------------
    def session(
        self,
        plan: "DisplayOp | BoundPlan",
        client_site: int = CLIENT_SITE_ID,
        admission: "typing.Mapping[int, typing.Any] | None" = None,
        session_id: str = "q0",
        recovery: RecoveryPolicy | None = None,
    ) -> "QuerySession":
        """Create one in-flight query on this executor's (shared) system.

        ``admission`` maps server site ids to admission controllers (see
        :class:`repro.workload.AdmissionController`); ``client_site`` pins
        the plan's client-side operators to one of the topology's client
        sites (0, -1, -2, ...).  The returned session's :meth:`~QuerySession.run`
        generator is spawned as a simulated process by the caller.
        """
        return QuerySession(
            self,
            plan,
            client_site=client_site,
            admission=admission,
            session_id=session_id,
            recovery=recovery if recovery is not None else self.recovery,
        )

    def write_session(
        self,
        spec: WriteSpec,
        client_site: int = CLIENT_SITE_ID,
        admission: "typing.Mapping[int, typing.Any] | None" = None,
        session_id: str = "w0",
        recovery: RecoveryPolicy | None = None,
    ) -> "WriteSession":
        """Create one in-flight write statement on this executor's system.

        Writes flow through the same admission controllers and per-session
        recovery loop as queries; the acting primary is re-resolved on every
        attempt, so a write failed by a crashing server retries against a
        surviving replica.
        """
        return WriteSession(
            self,
            spec,
            client_site=client_site,
            admission=admission,
            session_id=session_id,
            recovery=recovery if recovery is not None else self.recovery,
        )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _begin_execute(self) -> None:
        """Baseline the cumulative counters for the run about to start.

        The topology's clock, network counters, disk counters, and metrics
        registry are all cumulative over the life of the system, so calling
        :meth:`execute` twice on one executor would otherwise report the
        first run's work again inside the second result.  Each execute also
        gets fresh recovery statistics.
        """
        network = self.topology.network
        reads = writes = 0
        for site in self.topology.sites:
            for disk in site.disks:
                reads += disk.reads
                writes += disk.writes
        self._baseline = {
            "now": self.env.now,
            "pages_sent": network.data_pages_sent,
            "control_messages": network.control_messages_sent,
            "bytes_sent": network.bytes_sent,
            "messages_dropped": network.messages_dropped,
            "disk_reads": reads,
            "disk_writes": writes,
        }
        self._baseline_profile = self.topology.metrics.snapshot()
        self.recovery_stats = RecoveryStats()

    def _collect(
        self,
        root: DisplayIterator,
        context: ExecutionContext | None = None,
        time_to_recover: float = 0.0,
    ) -> ExecutionResult:
        network = self.topology.network
        stats = self.recovery_stats
        base = self._baseline
        client = self.topology.site(CLIENT_SITE_ID)
        disk_util: dict[str, float] = {}
        cpu_util: dict[str, float] = {}
        reads = writes = 0
        for site in self.topology.sites:
            cpu_util[site.name] = site.cpu.utilization()
            for disk in site.disks:
                disk_util[disk.name] = disk.utilization()
                reads += disk.reads
                writes += disk.writes
        profile = self.topology.metrics.snapshot_delta(self._baseline_profile)
        profile["recovery.retries"] = stats.retries.value
        profile["recovery.replans"] = stats.replans.value
        profile["recovery.wasted_work_pages"] = stats.wasted_work_pages.value
        response_time = self.env.now - base["now"]
        pages_sent = network.data_pages_sent - base["pages_sent"]
        tracer = self.env.tracer
        if tracer is not None:
            tracer.finish()
            tracer.metadata.update(
                response_time=response_time,
                pages_sent=pages_sent,
                result_tuples=root.result_tuples,
            )
        return ExecutionResult(
            response_time=response_time,
            pages_sent=pages_sent,
            control_messages=network.control_messages_sent - base["control_messages"],
            bytes_sent=network.bytes_sent - base["bytes_sent"],
            result_tuples=root.result_tuples,
            result_pages=root.result_pages,
            disk_utilizations=disk_util,
            cpu_utilizations=cpu_util,
            network_utilization=network.utilization(),
            disk_reads=reads - base["disk_reads"],
            disk_writes=writes - base["disk_writes"],
            retries=stats.retries.value,
            replans=stats.replans.value,
            wasted_work_pages=stats.wasted_work_pages.value,
            time_to_recover=time_to_recover,
            faults_seen=stats.faults_seen.value,
            messages_dropped=network.messages_dropped - base["messages_dropped"],
            profile=profile,
            cache_state=(
                None
                if client.buffer_cache is None
                else client.buffer_cache.snapshot()
            ),
            telemetry=None if self.sampler is None else self.sampler.snapshot(),
        )


@dataclass(frozen=True)
class SessionResult:
    """Outcome of one query session in a multi-client workload.

    ``status`` is ``"completed"``, ``"shed"`` (rejected by a server's
    admission controller), or ``"failed"`` (a fault exhausted recovery).
    ``queue_delay`` is the total simulated time the session spent waiting
    in admission queues, already included in ``response_time``.
    """

    session_id: str
    client_site: int
    submitted: float
    completed: float
    response_time: float
    queue_delay: float
    status: str
    retries: int
    replans: int
    result_tuples: int
    error: str | None = None
    servers_used: tuple[int, ...] = ()
    #: Data pages on the wire while this session ran.  Exact for closed
    #: single-client streams; under concurrency, pages of overlapping
    #: sessions are counted at every session they overlap.
    pages_sent: int = 0
    #: Pages resident in this session's client cache at completion
    #: (dynamic buffer cache or static prefix total).
    cache_resident_pages: int = 0


class QuerySession:
    """One query in flight on a shared simulated system.

    The session binds its (shared, annotated) plan to its own client site,
    passes the resulting server set through the admission controllers, and
    drives the physical plan as a simulated process -- so concurrent
    sessions contend for the server CPUs, disks, and the network exactly
    like the single-query path does for one query.  With a recovery policy
    (or an active fault injector) each session runs its own bounded
    retry/replan loop; failures stay contained in the session's
    :class:`SessionResult` instead of tearing down the whole workload.
    """

    def __init__(
        self,
        executor: QueryExecutor,
        plan: "DisplayOp | BoundPlan",
        client_site: int = CLIENT_SITE_ID,
        admission: "typing.Mapping[int, typing.Any] | None" = None,
        session_id: str = "q0",
        recovery: RecoveryPolicy | None = None,
    ) -> None:
        self.executor = executor
        self.plan = plan
        self.client_site = client_site
        self.admission = dict(admission or {})
        self.session_id = session_id
        self.recovery = recovery
        self.submitted = 0.0
        self.queue_delay = 0.0
        self.retries = 0
        self.replans = 0
        self._pages_before = 0

    def run(self) -> typing.Generator:
        """Simulation process: run the query to a :class:`SessionResult`.

        Never raises into the environment -- shedding and exhausted
        recovery become terminal statuses so one query's fate cannot crash
        its neighbours' processes.
        """
        env = self.executor.env
        self.submitted = env.now
        self._pages_before = self.executor.topology.network.data_pages_sent
        try:
            if self.recovery is not None or self.executor.fault_tolerant:
                tuples, servers = yield from self._run_with_recovery()
            else:
                tuples, servers = yield from self._run_once()
        except QueryShedError as exc:
            return self._result("shed", 0, (), error=exc)
        except TransientFaultError as exc:
            return self._result("failed", 0, (), error=exc)
        return self._result("completed", tuples, servers)

    # ------------------------------------------------------------------
    # Attempt plumbing
    # ------------------------------------------------------------------
    def _bind(self, plan: "DisplayOp | BoundPlan") -> BoundPlan:
        if isinstance(plan, BoundPlan):
            return plan
        return bind_plan(plan, self.executor.catalog, client_site=self.client_site)

    @staticmethod
    def _servers_of(bound: BoundPlan) -> tuple[int, ...]:
        return tuple(sorted(sid for sid in bound.sites_used() if sid >= 1))

    def _acquire(self, bound: BoundPlan) -> typing.Generator:
        """Take one admission ticket per controlled server, in id order.

        Acquiring in sorted server-id order makes multi-server queries
        deadlock-free (no two sessions ever hold tickets in opposite
        orders).  A shed releases every ticket already held and re-raises.
        """
        env = self.executor.env
        waited_from = env.now
        tickets: list[typing.Any] = []
        for sid in sorted(sid for sid in bound.sites_used() if sid in self.admission):
            try:
                ticket = yield from self.admission[sid].admit(self.session_id)
            except QueryShedError:
                for held in tickets:
                    held.release()
                raise
            tickets.append(ticket)
        self.queue_delay += env.now - waited_from
        return tickets

    @staticmethod
    def _release(tickets: list) -> None:
        for ticket in tickets:
            ticket.release()

    def _run_once(self) -> typing.Generator:
        """Single-attempt path (no faults, no recovery policy).

        With a session memoizer attached (workload runs), a submission
        whose memo key -- plan identity, exact client cache state,
        consistency epoch -- matches an already-completed session *replays*
        that session's recorded primitive ops against the live hardware
        instead of re-interpreting the operator tree.  Admission, binding,
        and every resource interaction stay real, so timing under
        contention is identical; only the per-event Python work shrinks.
        """
        executor = self.executor
        bound = self._bind(self.plan)
        tickets = yield from self._acquire(bound)
        memo = executor.session_memo
        entry = None if memo is None else memo.begin(self.plan, self.client_site)
        if entry is not None and entry.tape is not None:
            try:
                tuples = yield from memo.replay(entry.tape, self.client_site)
            finally:
                self._release(tickets)
            return tuples, self._servers_of(bound)
        context = ExecutionContext(
            executor.env, executor.topology, executor.catalog,
            executor.query, executor.estimator,
        )
        recording = None if entry is None else memo.start_recording(entry)
        root = executor.build_physical(bound, context)
        try:
            yield from executor._drive(root)
        except (QueryShedError, TransientFaultError):
            if recording is not None:
                memo.discard(recording)
            context.abort()
            raise
        except BaseException:
            if recording is not None:
                memo.discard(recording)
            raise
        finally:
            self._release(tickets)
        if recording is not None:
            memo.commit(recording, root.result_tuples)
        return root.result_tuples, self._servers_of(bound)

    def _run_with_recovery(self) -> typing.Generator:
        """Per-session recovery loop (mirrors the single-query loop).

        The query timeout is measured from *submission*, so a session that
        spent long in admission queues has less budget left -- queueing
        delay is part of the response time the client experiences.
        """
        executor = self.executor
        env = executor.env
        recovery = self.recovery or RecoveryPolicy()
        rng = random.Random(f"{executor.seed}:{self.session_id}:recovery")
        if isinstance(self.plan, BoundPlan):
            annotated: DisplayOp | None = None
            prebound: BoundPlan | None = self.plan
        else:
            annotated = self.plan
            prebound = None
        deadline = (
            None
            if recovery.query_timeout is None
            else self.submitted + recovery.query_timeout
        )
        attempt = 0
        while True:
            attempt += 1
            bound = prebound if annotated is None else self._bind(annotated)
            assert bound is not None
            tickets = yield from self._acquire(bound)
            context = ExecutionContext(
                env, executor.topology, executor.catalog,
                executor.query, executor.estimator, supervised=True,
            )
            root = executor.build_physical(bound, context)
            consumer = context.spawn(
                executor._drive(root), name=f"session-{self.session_id}#{attempt}"
            )
            assert context.fault_event is not None
            watchers: list[Event] = [consumer, context.fault_event]
            if deadline is not None:
                watchers.append(env.timeout(max(0.0, deadline - env.now)))
            failure: TransientFaultError | None = None
            try:
                yield AnyOf(env, watchers)
            except QueryShedError:
                # A mid-run shed (static buffer-pool exhaustion surfaced
                # through supervision) must give back tickets, grants, and
                # temp extents before the session records its fate --
                # admission tickets used to leak here.
                self._release(tickets)
                context.abort()
                raise
            except TransientFaultError as exc:
                failure = exc
            self._release(tickets)
            if failure is None:
                if consumer.triggered and consumer.ok:
                    return root.result_tuples, self._servers_of(bound)
                failure = QueryTimeoutError(
                    f"session {self.session_id} timed out after "
                    f"{recovery.query_timeout}s (attempt {attempt})"
                )
            context.abort()
            if deadline is not None and env.now >= deadline:
                if not isinstance(failure, QueryTimeoutError):
                    failure = QueryTimeoutError(
                        f"session {self.session_id} timed out after "
                        f"{recovery.query_timeout}s while recovering from: {failure}"
                    )
                raise failure
            if attempt >= recovery.max_attempts:
                raise failure
            self.retries += 1
            yield env.timeout(recovery.backoff(attempt, rng))
            if recovery.replan and annotated is not None:
                replanned = executor._replan(annotated, client_site=self.client_site)
                if replanned is not None:
                    annotated = replanned
                    self.replans += 1

    def _result(
        self,
        status: str,
        result_tuples: int,
        servers: tuple[int, ...],
        error: Exception | None = None,
    ) -> SessionResult:
        executor = self.executor
        env = executor.env
        client = executor.topology.site(self.client_site)
        if client.buffer_cache is not None:
            resident = client.buffer_cache.resident_count
        elif client.cache is not None:
            resident = client.cache.total_cached_pages
        else:
            resident = 0
        return SessionResult(
            session_id=self.session_id,
            client_site=self.client_site,
            submitted=self.submitted,
            completed=env.now,
            response_time=env.now - self.submitted,
            queue_delay=self.queue_delay,
            status=status,
            retries=self.retries,
            replans=self.replans,
            result_tuples=result_tuples,
            error=None if error is None else str(error),
            servers_used=tuple(servers),
            pages_sent=executor.topology.network.data_pages_sent - self._pages_before,
            cache_resident_pages=resident,
        )


class WriteSession:
    """One write statement in flight on a shared simulated system.

    Mirrors :class:`QuerySession` for the write path: admission tickets are
    taken for every server holding a copy of the target relation (writes
    occupy the primary *and* the replicas they propagate to), the physical
    write operator is driven as a simulated process, and -- under a
    recovery policy or an active fault injector -- a bounded retry loop
    re-resolves the acting primary each attempt, so a write survives its
    primary crashing by failing over to a reachable replica.
    """

    def __init__(
        self,
        executor: QueryExecutor,
        spec: WriteSpec,
        client_site: int = CLIENT_SITE_ID,
        admission: "typing.Mapping[int, typing.Any] | None" = None,
        session_id: str = "w0",
        recovery: RecoveryPolicy | None = None,
    ) -> None:
        self.executor = executor
        self.spec = spec
        self.client_site = client_site
        self.admission = dict(admission or {})
        self.session_id = session_id
        self.recovery = recovery
        self.submitted = 0.0
        self.queue_delay = 0.0
        self.retries = 0
        self._pages_before = 0

    def run(self) -> typing.Generator:
        """Simulation process: run the write to a :class:`SessionResult`."""
        env = self.executor.env
        self.submitted = env.now
        self._pages_before = self.executor.topology.network.data_pages_sent
        try:
            if self.recovery is not None or self.executor.fault_tolerant:
                tuples = yield from self._run_with_recovery()
            else:
                tuples = yield from self._run_once()
        except QueryShedError as exc:
            return self._result("shed", 0, error=exc)
        except TransientFaultError as exc:
            return self._result("failed", 0, error=exc)
        return self._result("completed", tuples)

    # ------------------------------------------------------------------
    # Attempt plumbing
    # ------------------------------------------------------------------
    def _holders(self) -> tuple[int, ...]:
        return tuple(sorted(self.executor.catalog.servers_of(self.spec.relation)))

    def _acquire(self) -> typing.Generator:
        """One admission ticket per controlled copy holder, in id order."""
        env = self.executor.env
        waited_from = env.now
        tickets: list[typing.Any] = []
        for sid in (s for s in self._holders() if s in self.admission):
            try:
                ticket = yield from self.admission[sid].admit(self.session_id)
            except QueryShedError:
                for held in tickets:
                    held.release()
                raise
            tickets.append(ticket)
        self.queue_delay += env.now - waited_from
        return tickets

    def _build(self, context: ExecutionContext):
        site = self.executor.topology.site(self.client_site)
        root = make_write_iterator(context, site, self.spec)
        root.label = f"{self.spec.kind}[{self.spec.relation}]@{site.name}"
        return root

    def _run_once(self) -> typing.Generator:
        executor = self.executor
        tickets = yield from self._acquire()
        context = ExecutionContext(
            executor.env, executor.topology, executor.catalog,
            executor.query, executor.estimator,
        )
        root = self._build(context)
        try:
            yield from executor._drive(root)
        except (QueryShedError, TransientFaultError):
            context.abort()
            raise
        finally:
            QuerySession._release(tickets)
        return root.tuples_produced

    def _run_with_recovery(self) -> typing.Generator:
        executor = self.executor
        env = executor.env
        recovery = self.recovery or RecoveryPolicy()
        rng = random.Random(f"{executor.seed}:{self.session_id}:recovery")
        deadline = (
            None
            if recovery.query_timeout is None
            else self.submitted + recovery.query_timeout
        )
        attempt = 0
        while True:
            attempt += 1
            tickets = yield from self._acquire()
            context = ExecutionContext(
                env, executor.topology, executor.catalog,
                executor.query, executor.estimator, supervised=True,
            )
            # Built (and its acting primary resolved) fresh every attempt:
            # retrying after a crash lands on a surviving copy.
            root = self._build(context)
            consumer = context.spawn(
                executor._drive(root), name=f"write-{self.session_id}#{attempt}"
            )
            assert context.fault_event is not None
            watchers: list[Event] = [consumer, context.fault_event]
            if deadline is not None:
                watchers.append(env.timeout(max(0.0, deadline - env.now)))
            failure: TransientFaultError | None = None
            try:
                yield AnyOf(env, watchers)
            except QueryShedError:
                QuerySession._release(tickets)
                context.abort()
                raise
            except TransientFaultError as exc:
                failure = exc
            QuerySession._release(tickets)
            if failure is None:
                if consumer.triggered and consumer.ok:
                    return root.tuples_produced
                failure = QueryTimeoutError(
                    f"write {self.session_id} timed out after "
                    f"{recovery.query_timeout}s (attempt {attempt})"
                )
            context.abort()
            if deadline is not None and env.now >= deadline:
                if not isinstance(failure, QueryTimeoutError):
                    failure = QueryTimeoutError(
                        f"write {self.session_id} timed out after "
                        f"{recovery.query_timeout}s while recovering from: {failure}"
                    )
                raise failure
            if attempt >= recovery.max_attempts:
                raise failure
            self.retries += 1
            yield env.timeout(recovery.backoff(attempt, rng))

    def _result(
        self, status: str, result_tuples: int, error: Exception | None = None
    ) -> SessionResult:
        executor = self.executor
        env = executor.env
        client = executor.topology.site(self.client_site)
        if client.buffer_cache is not None:
            resident = client.buffer_cache.resident_count
        elif client.cache is not None:
            resident = client.cache.total_cached_pages
        else:
            resident = 0
        return SessionResult(
            session_id=self.session_id,
            client_site=self.client_site,
            submitted=self.submitted,
            completed=env.now,
            response_time=env.now - self.submitted,
            queue_delay=self.queue_delay,
            status=status,
            retries=self.retries,
            replans=0,
            result_tuples=result_tuples,
            error=None if error is None else str(error),
            servers_used=self._holders() if status == "completed" else (),
            pages_sent=executor.topology.network.data_pages_sent - self._pages_before,
            cache_resident_pages=resident,
        )
