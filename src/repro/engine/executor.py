"""Query executor: builds physical operator trees and drives them.

One :class:`QueryExecutor` owns one simulation run: it creates the
environment and topology, installs the catalog, starts any external load
generators, converts a bound plan into physical iterators (inserting
exchange pairs on cross-site edges), and runs the root display to
completion.  The result carries the study's two metrics -- response time
and pages sent -- plus detailed resource statistics.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.config import SystemConfig
from repro.costmodel.estimates import Estimator
from repro.engine.base import PhysicalOp
from repro.engine.exchange import ExchangeReceiver
from repro.engine.joins import HashJoinIterator
from repro.engine.loadgen import DiskLoadGenerator
from repro.engine.scans import ScanIterator
from repro.engine.selects import SelectIterator
from repro.engine.sinks import DisplayIterator
from repro.errors import ExecutionError
from repro.hardware.site import Site
from repro.hardware.topology import Topology
from repro.plans.binding import BoundPlan, bind_plan
from repro.plans.logical import Query
from repro.plans.operators import DisplayOp, JoinOp, PlanOp, ScanOp, SelectOp
from repro.plans.validate import validate_plan
from repro.sim import Environment, Process

__all__ = ["ExecutionContext", "ExecutionResult", "QueryExecutor"]


class ExecutionContext:
    """Shared state all physical operators of one run see."""

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        catalog: Catalog,
        query: Query,
        estimator: Estimator,
    ) -> None:
        self.env = env
        self.topology = topology
        self.catalog = catalog
        self.query = query
        self.estimator = estimator
        self.config = topology.config
        self.network = topology.network
        self.processes: list[Process] = []

    def spawn(self, generator: typing.Generator, name: str = "") -> Process:
        process = self.env.process(generator, name=name)
        self.processes.append(process)
        return process


@dataclass
class ExecutionResult:
    """Metrics of one simulated query execution."""

    response_time: float
    pages_sent: int
    control_messages: int
    bytes_sent: int
    result_tuples: int
    result_pages: int
    disk_utilizations: dict[str, float] = field(default_factory=dict)
    cpu_utilizations: dict[str, float] = field(default_factory=dict)
    network_utilization: float = 0.0
    disk_reads: int = 0
    disk_writes: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"response_time={self.response_time:.3f}s pages_sent={self.pages_sent} "
            f"result_tuples={self.result_tuples}"
        )


class QueryExecutor:
    """Runs one bound plan on a freshly built simulated system."""

    def __init__(
        self,
        config: SystemConfig,
        catalog: Catalog,
        query: Query,
        seed: int = 0,
        server_loads: dict[int, float] | None = None,
    ) -> None:
        self.config = config
        self.catalog = catalog
        self.query = query
        self.seed = seed
        self.env = Environment()
        self.topology = Topology(self.env, config, seed=seed)
        catalog.install(self.topology)
        self.estimator = Estimator(query, catalog, config)
        self.context = ExecutionContext(
            self.env, self.topology, catalog, query, self.estimator
        )
        self.load_generators: list[DiskLoadGenerator] = []
        for site_id, rate in (server_loads or {}).items():
            self.load_generators.append(
                DiskLoadGenerator(
                    self.env,
                    self.topology.site(site_id),
                    rate,
                    rng=random.Random(seed * 7919 + site_id),
                )
            )

    # ------------------------------------------------------------------
    # Physical plan construction
    # ------------------------------------------------------------------
    def build_physical(self, bound: BoundPlan) -> DisplayIterator:
        """Translate a bound plan into physical iterators with exchanges."""
        root = bound.root
        if not isinstance(root, DisplayOp):
            raise ExecutionError("bound plan root must be a display operator")
        display_site = self.topology.site(bound.site_of(root))
        child = self._build_op(root.child, bound)
        child = self._maybe_exchange(display_site, root.child, child, bound)
        return DisplayIterator(self.context, display_site, child)

    def _build_op(self, op: PlanOp, bound: BoundPlan) -> PhysicalOp:
        site = self.topology.site(bound.site_of(op))
        if isinstance(op, ScanOp):
            return ScanIterator(self.context, site, op.relation)
        if isinstance(op, SelectOp):
            child = self._build_op(op.child, bound)
            child = self._maybe_exchange(site, op.child, child, bound)
            return SelectIterator(self.context, site, child, op.selectivity)
        if isinstance(op, JoinOp):
            inner = self._build_op(op.inner, bound)
            inner = self._maybe_exchange(site, op.inner, inner, bound)
            outer = self._build_op(op.outer, bound)
            outer = self._maybe_exchange(site, op.outer, outer, bound)
            est = self.estimator
            return HashJoinIterator(
                self.context,
                site,
                inner,
                outer,
                est_inner_pages=est.pages(op.inner),
                est_outer_pages=est.pages(op.outer),
                est_outer_tuples=est.cardinality(op.outer),
                est_output_tuples=est.cardinality(op),
                output_tuple_bytes=est.tuple_bytes(op),
            )
        raise ExecutionError(f"cannot build physical operator for {op.kind}")

    def _maybe_exchange(
        self,
        consumer_site: Site,
        child_op: PlanOp,
        child_phys: PhysicalOp,
        bound: BoundPlan,
    ) -> PhysicalOp:
        producer_site = self.topology.site(bound.site_of(child_op))
        if producer_site is consumer_site:
            return child_phys
        return ExchangeReceiver(self.context, consumer_site, producer_site, child_phys)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, plan: "DisplayOp | BoundPlan") -> ExecutionResult:
        """Bind (if needed), build, and run a plan; return its metrics."""
        if isinstance(plan, BoundPlan):
            bound = plan
        else:
            validate_plan(plan, self.query)
            bound = bind_plan(plan, self.catalog)
        root = self.build_physical(bound)
        driver = self.env.process(self._drive(root), name="query-driver")
        self.env.run(until=driver)
        return self._collect(root)

    def _drive(self, root: DisplayIterator) -> typing.Generator:
        yield from root.open()
        while True:
            page = yield from root.next()
            if page is None:
                break
        yield from root.close()

    def _collect(self, root: DisplayIterator) -> ExecutionResult:
        network = self.topology.network
        disk_util: dict[str, float] = {}
        cpu_util: dict[str, float] = {}
        reads = writes = 0
        for site in self.topology.sites:
            cpu_util[site.name] = site.cpu.utilization()
            for disk in site.disks:
                disk_util[disk.name] = disk.utilization()
                reads += disk.reads
                writes += disk.writes
        return ExecutionResult(
            response_time=self.env.now,
            pages_sent=network.data_pages_sent,
            control_messages=network.control_messages_sent,
            bytes_sent=network.bytes_sent,
            result_tuples=root.result_tuples,
            result_pages=root.result_pages,
            disk_utilizations=disk_util,
            cpu_utilizations=cpu_util,
            network_utilization=network.utilization(),
            disk_reads=reads,
            disk_writes=writes,
        )
