"""Query executor: builds physical operator trees and drives them.

One :class:`QueryExecutor` owns one simulation run: it creates the
environment and topology, installs the catalog, starts any external load
generators, converts a bound plan into physical iterators (inserting
exchange pairs on cross-site edges), and runs the root display to
completion.  The result carries the study's two metrics -- response time
and pages sent -- plus detailed resource statistics.

With a :class:`~repro.faults.FaultSchedule` attached, the executor becomes
fault tolerant: a :class:`~repro.faults.FaultInjector` crashes servers,
partitions the network, and slows disks mid-run, and a client-side
*recovery loop* reacts to the resulting
:class:`~repro.errors.TransientFaultError`\\ s with bounded retries
(exponential backoff + jitter, all in sim time), re-optimizing around
crashed sites -- falling back to the client's cached copies exactly where
the paper predicts data- and hybrid-shipping shine.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.config import OptimizerConfig, SystemConfig
from repro.costmodel.estimates import Estimator
from repro.costmodel.model import EnvironmentState, Objective
from repro.engine.base import PhysicalOp
from repro.engine.exchange import ExchangeReceiver
from repro.engine.joins import HashJoinIterator
from repro.engine.loadgen import DiskLoadGenerator
from repro.engine.scans import ScanIterator
from repro.engine.selects import SelectIterator
from repro.engine.sinks import DisplayIterator
from repro.errors import (
    ExecutionError,
    OptimizationError,
    PolicyViolationError,
    QueryTimeoutError,
    TransientFaultError,
)
from repro.faults.injector import FaultInjector
from repro.faults.recovery import RecoveryPolicy, RecoveryStats
from repro.faults.schedule import FaultSchedule
from repro.hardware.site import Site
from repro.hardware.topology import Topology
from repro.plans.annotations import Annotation
from repro.plans.binding import BoundPlan, bind_plan
from repro.plans.logical import Query
from repro.plans.operators import DisplayOp, JoinOp, PlanOp, ScanOp, SelectOp
from repro.plans.policies import Policy, allowed_annotations, check_policy
from repro.plans.validate import validate_plan
from repro.sim import AnyOf, Environment, Event, Process

__all__ = ["ExecutionContext", "ExecutionResult", "QueryExecutor"]


class ExecutionContext:
    """Shared state all physical operators of one run (or attempt) see.

    Under fault-tolerant execution each attempt gets its own supervised
    context: processes it spawns catch :class:`TransientFaultError` and
    report it to :attr:`fault_event` instead of letting it escape, so the
    recovery loop can abort the attempt and retry.
    """

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        catalog: Catalog,
        query: Query,
        estimator: Estimator,
        supervised: bool = False,
    ) -> None:
        self.env = env
        self.topology = topology
        self.catalog = catalog
        self.query = query
        self.estimator = estimator
        self.config = topology.config
        self.network = topology.network
        self.processes: list[Process] = []
        self.operators: list[PhysicalOp] = []
        self.fault_event: Event | None = Event(env) if supervised else None

    def register_op(self, op: PhysicalOp) -> None:
        self.operators.append(op)

    def pages_produced(self) -> int:
        """Pages produced so far by every operator of this context."""
        return sum(op.pages_produced for op in self.operators)

    def report_fault(self, exc: TransientFaultError) -> None:
        """Signal the recovery loop (first fault wins; later ones no-op)."""
        if self.fault_event is not None and not self.fault_event.triggered:
            self.fault_event.fail(exc)

    def spawn(self, generator: typing.Generator, name: str = "") -> Process:
        if self.fault_event is not None:
            generator = self._supervise(generator)
        process = self.env.process(generator, name=name)
        self.processes.append(process)
        return process

    def _supervise(self, generator: typing.Generator) -> typing.Generator:
        """Convert an escaping transient fault into a fault-event report."""
        try:
            result = yield from generator
        except TransientFaultError as exc:
            self.report_fault(exc)
            return None
        return result


@dataclass
class ExecutionResult:
    """Metrics of one simulated query execution."""

    response_time: float
    pages_sent: int
    control_messages: int
    bytes_sent: int
    result_tuples: int
    result_pages: int
    disk_utilizations: dict[str, float] = field(default_factory=dict)
    cpu_utilizations: dict[str, float] = field(default_factory=dict)
    network_utilization: float = 0.0
    disk_reads: int = 0
    disk_writes: int = 0
    # Recovery observability (all zero on a fault-free run).
    retries: int = 0
    replans: int = 0
    wasted_work_pages: int = 0
    time_to_recover: float = 0.0
    faults_seen: int = 0
    messages_dropped: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        text = (
            f"response_time={self.response_time:.3f}s pages_sent={self.pages_sent} "
            f"result_tuples={self.result_tuples}"
        )
        if self.retries or self.replans:
            text += (
                f" retries={self.retries} replans={self.replans} "
                f"time_to_recover={self.time_to_recover:.3f}s"
            )
        return text


class QueryExecutor:
    """Runs one bound plan on a freshly built simulated system."""

    def __init__(
        self,
        config: SystemConfig,
        catalog: Catalog,
        query: Query,
        seed: int = 0,
        server_loads: dict[int, float] | None = None,
        faults: FaultSchedule | None = None,
        recovery: RecoveryPolicy | None = None,
        policy: Policy | None = None,
        objective: Objective = Objective.RESPONSE_TIME,
        optimizer_config: OptimizerConfig | None = None,
    ) -> None:
        self.config = config
        self.catalog = catalog
        self.query = query
        self.seed = seed
        self.server_loads = dict(server_loads or {})
        self.env = Environment()
        self.topology = Topology(self.env, config, seed=seed)
        catalog.install(self.topology)
        self.estimator = Estimator(query, catalog, config)
        self.context = ExecutionContext(
            self.env, self.topology, catalog, query, self.estimator
        )
        self.load_generators: list[DiskLoadGenerator] = []
        for site_id, rate in self.server_loads.items():
            self.load_generators.append(
                DiskLoadGenerator(
                    self.env,
                    self.topology.site(site_id),
                    rate,
                    rng=random.Random(seed * 7919 + site_id),
                )
            )
        # Fault tolerance: only engaged when there is something to survive,
        # so fault-free runs are event-for-event identical to the seed
        # behaviour (see tests/properties/test_fault_determinism.py).
        self.faults = faults
        self.recovery = recovery
        self.policy = policy
        self.objective = objective
        self.optimizer_config = optimizer_config
        self.recovery_stats = RecoveryStats()
        self.injector: FaultInjector | None = None
        if faults is not None and not faults.is_empty:
            self.injector = FaultInjector(self.env, self.topology, faults, seed=seed)

    @property
    def fault_tolerant(self) -> bool:
        """True when execution goes through the recovery loop."""
        return self.injector is not None or self.recovery is not None

    # ------------------------------------------------------------------
    # Physical plan construction
    # ------------------------------------------------------------------
    def build_physical(
        self, bound: BoundPlan, context: ExecutionContext | None = None
    ) -> DisplayIterator:
        """Translate a bound plan into physical iterators with exchanges."""
        context = context or self.context
        root = bound.root
        if not isinstance(root, DisplayOp):
            raise ExecutionError("bound plan root must be a display operator")
        display_site = self.topology.site(bound.site_of(root))
        child = self._build_op(root.child, bound, context)
        child = self._maybe_exchange(display_site, root.child, child, bound, context)
        return DisplayIterator(context, display_site, child)

    def _build_op(
        self, op: PlanOp, bound: BoundPlan, context: ExecutionContext
    ) -> PhysicalOp:
        site = self.topology.site(bound.site_of(op))
        if isinstance(op, ScanOp):
            return ScanIterator(context, site, op.relation)
        if isinstance(op, SelectOp):
            child = self._build_op(op.child, bound, context)
            child = self._maybe_exchange(site, op.child, child, bound, context)
            return SelectIterator(context, site, child, op.selectivity)
        if isinstance(op, JoinOp):
            inner = self._build_op(op.inner, bound, context)
            inner = self._maybe_exchange(site, op.inner, inner, bound, context)
            outer = self._build_op(op.outer, bound, context)
            outer = self._maybe_exchange(site, op.outer, outer, bound, context)
            est = self.estimator
            return HashJoinIterator(
                context,
                site,
                inner,
                outer,
                est_inner_pages=est.pages(op.inner),
                est_outer_pages=est.pages(op.outer),
                est_outer_tuples=est.cardinality(op.outer),
                est_output_tuples=est.cardinality(op),
                output_tuple_bytes=est.tuple_bytes(op),
            )
        raise ExecutionError(f"cannot build physical operator for {op.kind}")

    def _maybe_exchange(
        self,
        consumer_site: Site,
        child_op: PlanOp,
        child_phys: PhysicalOp,
        bound: BoundPlan,
        context: ExecutionContext,
    ) -> PhysicalOp:
        producer_site = self.topology.site(bound.site_of(child_op))
        if producer_site is consumer_site:
            return child_phys
        return ExchangeReceiver(context, consumer_site, producer_site, child_phys)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, plan: "DisplayOp | BoundPlan") -> ExecutionResult:
        """Bind (if needed), build, and run a plan; return its metrics.

        Without faults this is the classic single-attempt path.  With a
        fault schedule (or an explicit recovery policy) the run goes
        through the recovery loop: transient faults abort the attempt,
        bounded retries follow, and the final failure -- if recovery is
        exhausted -- propagates as the fault that caused it.
        """
        if self.fault_tolerant:
            return self._execute_with_recovery(plan)
        if isinstance(plan, BoundPlan):
            bound = plan
        else:
            validate_plan(plan, self.query)
            bound = bind_plan(plan, self.catalog)
        root = self.build_physical(bound)
        driver = self.env.process(self._drive(root), name="query-driver")
        self.env.run(until=driver)
        return self._collect(root)

    def _drive(self, root: DisplayIterator) -> typing.Generator:
        yield from root.open()
        while True:
            page = yield from root.next()
            if page is None:
                break
        yield from root.close()

    # ------------------------------------------------------------------
    # Fault-tolerant execution
    # ------------------------------------------------------------------
    def _execute_with_recovery(self, plan: "DisplayOp | BoundPlan") -> ExecutionResult:
        recovery = self.recovery or RecoveryPolicy()
        if isinstance(plan, BoundPlan):
            annotated: DisplayOp | None = None
            bound: BoundPlan | None = plan
        else:
            validate_plan(plan, self.query)
            annotated = plan
            bound = None
        driver = self.env.process(
            self._recovery_loop(annotated, bound, recovery), name="recovery-driver"
        )
        return self.env.run(until=driver)

    def _recovery_loop(
        self,
        annotated: DisplayOp | None,
        prebound: BoundPlan | None,
        recovery: RecoveryPolicy,
    ) -> typing.Generator:
        env = self.env
        stats = self.recovery_stats
        rng = random.Random(f"{self.seed}:recovery")
        deadline = recovery.query_timeout
        attempt = 0
        while True:
            attempt += 1
            context = ExecutionContext(
                env, self.topology, self.catalog, self.query, self.estimator,
                supervised=True,
            )
            bound = prebound if annotated is None else bind_plan(annotated, self.catalog)
            assert bound is not None
            root = self.build_physical(bound, context)
            consumer = context.spawn(self._drive(root), name=f"query-driver#{attempt}")
            assert context.fault_event is not None
            watchers: list[Event] = [consumer, context.fault_event]
            if deadline is not None:
                watchers.append(env.timeout(max(0.0, deadline - env.now)))
            failure: TransientFaultError | None = None
            try:
                yield AnyOf(env, watchers)
            except TransientFaultError as exc:
                failure = exc
            if failure is None:
                if consumer.triggered and consumer.ok:
                    time_to_recover = stats.record_success(env.now)
                    return self._collect(root, context, time_to_recover)
                failure = QueryTimeoutError(
                    f"query timed out after {deadline}s (attempt {attempt})"
                )
            stats.record_fault(env.now)
            stats.wasted_work_pages.add(context.pages_produced())
            if deadline is not None and env.now >= deadline:
                if not isinstance(failure, QueryTimeoutError):
                    failure = QueryTimeoutError(
                        f"query timed out after {deadline}s while recovering "
                        f"from: {failure}"
                    )
                raise failure
            if attempt >= recovery.max_attempts:
                raise failure
            stats.retries.add()
            yield env.timeout(recovery.backoff(attempt, rng))
            if recovery.replan and annotated is not None:
                replanned = self._replan(annotated)
                if replanned is not None:
                    annotated = replanned
                    stats.replans.add()

    def _replan(self, annotated: DisplayOp) -> DisplayOp | None:
        """Re-optimize around crashed sites; None if nothing useful to do.

        Relations whose primary server is down are constrained to be
        scanned at the client (from its cached prefix) -- the data-shipping
        fallback.  Policies whose annotation space has no ``client`` scan
        (query-shipping) cannot express that, so they keep their plan and
        simply wait out the restart window.
        """
        from repro.optimizer.two_phase import RandomizedOptimizer

        down = {site.site_id for site in self.topology.servers if not site.up}
        if not down:
            return None
        excluded = frozenset(
            name for name in self.query.relations if self.catalog.server_of(name) in down
        )
        if not excluded:
            return None
        policy = self.policy or self._infer_policy(annotated)
        if Annotation.CLIENT not in allowed_annotations(policy, "scan"):
            return None
        environment = EnvironmentState(self.catalog, self.config, dict(self.server_loads))
        try:
            result = RandomizedOptimizer(
                self.query,
                environment,
                policy=policy,
                objective=self.objective,
                config=self.optimizer_config or OptimizerConfig.fast(),
                seed=self.seed,
                forced_client_relations=excluded,
            ).optimize()
        except OptimizationError:
            return None
        return result.plan

    @staticmethod
    def _infer_policy(plan: DisplayOp) -> Policy:
        """Strictest policy the plan's annotations conform to."""
        for policy in (
            Policy.DATA_SHIPPING,
            Policy.QUERY_SHIPPING,
            Policy.HYBRID_SHIPPING,
        ):
            try:
                check_policy(plan, policy)
                return policy
            except PolicyViolationError:
                continue
        return Policy.HYBRID_SHIPPING

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _collect(
        self,
        root: DisplayIterator,
        context: ExecutionContext | None = None,
        time_to_recover: float = 0.0,
    ) -> ExecutionResult:
        network = self.topology.network
        stats = self.recovery_stats
        disk_util: dict[str, float] = {}
        cpu_util: dict[str, float] = {}
        reads = writes = 0
        for site in self.topology.sites:
            cpu_util[site.name] = site.cpu.utilization()
            for disk in site.disks:
                disk_util[disk.name] = disk.utilization()
                reads += disk.reads
                writes += disk.writes
        return ExecutionResult(
            response_time=self.env.now,
            pages_sent=network.data_pages_sent,
            control_messages=network.control_messages_sent,
            bytes_sent=network.bytes_sent,
            result_tuples=root.result_tuples,
            result_pages=root.result_pages,
            disk_utilizations=disk_util,
            cpu_utilizations=cpu_util,
            network_utilization=network.utilization(),
            disk_reads=reads,
            disk_writes=writes,
            retries=stats.retries.value,
            replans=stats.replans.value,
            wasted_work_pages=stats.wasted_work_pages.value,
            time_to_recover=time_to_recover,
            faults_seen=stats.faults_seen.value,
            messages_dropped=network.messages_dropped,
        )
