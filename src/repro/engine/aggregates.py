"""Hash group-by operator: blocking build over the input, then emit groups.

The operator drains its entire input first (one hash probe/update per
tuple -- ``HashInst``, as for join builds), then emits the group stream
packed into result-width pages.  Placed at a server by the ``producer``
annotation this is partial-aggregate pushdown: the (much smaller) group
stream is what ships to the client instead of the full join result --
exact, not approximate, because a single input stream feeds it.
"""

from __future__ import annotations

import typing

from repro.engine.base import Page, PageAssembler, PhysicalOp

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import ExecutionContext
    from repro.hardware.site import Site

__all__ = ["HashAggregateIterator"]


class HashAggregateIterator(PhysicalOp):
    """Hash-based GROUP BY with analytically sized group output."""

    def __init__(
        self,
        context: "ExecutionContext",
        site: "Site",
        child: PhysicalOp,
        est_groups: float,
        output_tuple_bytes: int,
    ) -> None:
        super().__init__(context, site)
        self.child = child
        self.est_groups = est_groups
        self.output_tuple_bytes = output_tuple_bytes
        self.input_tuples = 0
        self._ready: list[Page] = []
        self._built = False

    def _open(self) -> typing.Generator:
        yield from self.child.open()

    def _build(self) -> typing.Generator:
        """Drain the input, charging one hash probe/update per tuple."""
        config = self.config
        while True:
            page = yield from self.child.next()
            if page is None:
                break
            self.input_tuples += page.tuples
            yield from self.site.cpu.execute(config.hash_inst * page.tuples)
        groups = min(float(self.input_tuples), self.est_groups)
        assembler = PageAssembler(
            config.tuples_per_page(self.output_tuple_bytes), self.output_tuple_bytes
        )
        self._ready.extend(assembler.add(groups))
        self._ready.extend(assembler.flush())
        # Copy cost of materializing the group tuples out of the table.
        yield from self.site.cpu.execute(
            config.move_instructions(round(groups) * self.output_tuple_bytes)
        )

    def _next(self) -> typing.Generator:
        if not self._built:
            self._built = True
            yield from self._build()
        if self._ready:
            return self._ready.pop(0)
        return None

    def _close(self) -> typing.Generator:
        yield from self.child.close()
