"""Physical operator protocol and the page abstraction.

Simulated operators implement ``open`` / ``next`` / ``close`` as simulation
generators (they yield events while consuming resources).  ``next`` returns
a :class:`Page` or ``None`` at end of stream.  The engine works at page
granularity: per-tuple CPU costs are charged in page-sized batches, which is
the level of detail the paper models.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.errors import ExecutionError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import ExecutionContext
    from repro.hardware.site import Site

__all__ = ["Page", "PhysicalOp", "PageAssembler"]


@dataclass(frozen=True)
class Page:
    """One page travelling through the engine: a batch of tuples."""

    tuples: int
    tuple_bytes: int

    def __post_init__(self) -> None:
        if self.tuples < 0:
            raise ExecutionError(f"page with negative tuple count: {self.tuples}")

    @property
    def payload_bytes(self) -> int:
        return self.tuples * self.tuple_bytes


class PhysicalOp:
    """Base class for simulated operators (open-next-close iterators)."""

    def __init__(self, context: "ExecutionContext", site: "Site") -> None:
        self.context = context
        self.site = site
        self.pages_produced = 0
        self.tuples_produced = 0
        self._opened = False
        self._closed = False
        # Plan-derived display label (scan[RelA]@server1, join#0@client, ...);
        # the executor overwrites the default right after construction.
        self.label = f"{type(self).__name__}@{site.name}"
        context.register_op(self)

    @property
    def env(self):
        return self.context.env

    @property
    def config(self):
        return self.context.config

    def open(self) -> typing.Generator:
        """Prepare the operator (allocate memory, position scans, build)."""
        if self._opened:
            raise ExecutionError(f"{type(self).__name__} opened twice")
        self._opened = True
        self.site.check_available()
        tracer = self.context.env.tracer
        if tracer is None:
            yield from self._open()
            return
        span = tracer.begin(f"{self.label}.open", cat="op", op=self.label)
        try:
            yield from self._open()
        finally:
            tracer.end(span)

    def next(self) -> typing.Generator:
        """Produce the next page, or None at end of stream.

        An operator bound to a crashed site fails here with
        :class:`~repro.errors.SiteUnavailableError` -- faults surface at
        page granularity, matching the engine's level of detail (finer
        in-flight failures come from the disk and network models).
        """
        if not self._opened or self._closed:
            raise ExecutionError(f"next() on unopened/closed {type(self).__name__}")
        self.site.check_available()
        tracer = self.context.env.tracer
        if tracer is None:
            page = yield from self._next()
        else:
            span = tracer.begin(f"{self.label}.next", cat="op", op=self.label)
            try:
                page = yield from self._next()
            finally:
                tracer.end(span)
        if page is not None:
            self.pages_produced += 1
            self.tuples_produced += page.tuples
        return page

    def close(self) -> typing.Generator:
        """Release resources; safe to call exactly once after open."""
        if not self._opened:
            raise ExecutionError(f"close() on unopened {type(self).__name__}")
        if self._closed:
            raise ExecutionError(f"{type(self).__name__} closed twice")
        self._closed = True
        tracer = self.context.env.tracer
        if tracer is None:
            yield from self._close()
            return
        span = tracer.begin(f"{self.label}.close", cat="op", op=self.label)
        try:
            yield from self._close()
        finally:
            tracer.end(span)

    def abort(self) -> None:
        """Release held resources after an abandoned attempt (idempotent).

        When a transient fault (or an admission decision) kills an attempt,
        ``close`` never runs on its operators; the recovery and workload
        layers call ``abort`` instead so buffer memory and temp extents flow
        back to the site.  Unlike ``close`` this is not a simulation
        generator: releasing bookkeeping costs no simulated time.
        """

    # Subclass hooks -----------------------------------------------------
    def _open(self) -> typing.Generator:
        return
        yield  # pragma: no cover

    def _next(self) -> typing.Generator:
        raise NotImplementedError

    def _close(self) -> typing.Generator:
        return
        yield  # pragma: no cover


class PageAssembler:
    """Packs a fractional stream of result tuples into full pages.

    Join output cardinalities are computed analytically, so output arrives
    as fractional tuple counts per probe page; the assembler accumulates
    them and emits whole pages of ``tuples_per_page`` tuples, with one final
    partial page at flush.
    """

    def __init__(self, tuples_per_page: int, tuple_bytes: int) -> None:
        if tuples_per_page < 1:
            raise ExecutionError("tuples_per_page must be at least 1")
        self.tuples_per_page = tuples_per_page
        self.tuple_bytes = tuple_bytes
        self._accumulated = 0.0
        self.total_emitted = 0

    def add(self, tuples: float) -> list[Page]:
        """Accumulate tuples; return the full pages now ready."""
        if tuples < 0:
            raise ExecutionError(f"negative tuple contribution: {tuples}")
        self._accumulated += tuples
        pages: list[Page] = []
        while self._accumulated >= self.tuples_per_page:
            pages.append(Page(self.tuples_per_page, self.tuple_bytes))
            self._accumulated -= self.tuples_per_page
            self.total_emitted += self.tuples_per_page
        return pages

    def flush(self) -> list[Page]:
        """Emit the final partial page, if any tuples remain."""
        remaining = round(self._accumulated)
        self._accumulated = 0.0
        if remaining <= 0:
            return []
        self.total_emitted += remaining
        return [Page(remaining, self.tuple_bytes)]
