"""External server-disk load generator.

"To simulate additional server load and multiple clients, an extra process
issuing random disk read requests is run at servers in some experiments.
The request rate of this process can be varied to achieve different disk
utilizations" (section 3.2.2).  Figure 4 uses 40, 60 and 70 requests/second
(roughly 50 %, 76 % and 90 % utilization with the calibrated disk).

This is only a *stand-in* for other clients' traffic: a featureless Poisson
stream of random reads at the server disk.  Actual multiple clients -- each
with its own site, disk cache, query stream, and admission-control
interaction -- are modelled by :mod:`repro.workload`, which runs concurrent
:class:`~repro.engine.executor.QuerySession`\\ s on one shared system.

Arrivals are Poisson and open (the generator does not wait for completions),
so query I/O and load I/O genuinely contend in the disk queue.
"""

from __future__ import annotations

import random
import typing

from repro.hardware.site import Site
from repro.sim import Environment

__all__ = ["DiskLoadGenerator"]


class DiskLoadGenerator:
    """Poisson stream of random single-page reads against a site's disk."""

    def __init__(
        self,
        env: Environment,
        site: Site,
        requests_per_second: float,
        rng: random.Random | None = None,
        disk_index: int = 0,
    ) -> None:
        if requests_per_second < 0:
            raise ValueError(f"negative load rate: {requests_per_second}")
        self.env = env
        self.site = site
        self.rate = requests_per_second
        self.rng = rng or random.Random(0)
        self.disk_index = disk_index
        self.requests_issued = 0
        if self.rate > 0:
            self.process = env.process(
                self._generate(), name=f"load@{site.name}:{requests_per_second}/s"
            )
        else:
            self.process = None

    def _generate(self) -> typing.Generator:
        disk = self.site.disks[self.disk_index]
        capacity = disk.params.capacity_pages
        while True:
            yield self.env.timeout(self.rng.expovariate(self.rate))
            disk.submit("read", self.rng.randrange(capacity))
            self.requests_issued += 1
