"""Experiment harness: every table and figure of the paper, regenerable.

Each ``figure*`` function sweeps the paper's parameter, optimizes a plan
per policy and seed, simulates it, and returns a :class:`FigureResult`
whose series carry means and 90 % confidence intervals -- the same
methodology as the paper ("the experiments were executed repeatedly so
that the 90% confidence intervals ... were within 5%", section 4.1).
"""

from repro.experiments.stats import PointEstimate, summarize
from repro.experiments.runner import RunSettings, measure_plan, measure_policy
from repro.experiments.report import render_figure
from repro.experiments.figures import (
    FigureResult,
    SeriesPoint,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure10,
    figure11,
    availability_sweep,
    cache_warmup,
    function_shipping,
    memory_contention,
    qs_under_load_text,
    throughput_sweep,
    two_step_caching,
    write_mix,
    table1,
    table2,
)

__all__ = [
    "FigureResult",
    "PointEstimate",
    "RunSettings",
    "SeriesPoint",
    "availability_sweep",
    "cache_warmup",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure10",
    "figure11",
    "function_shipping",
    "measure_plan",
    "measure_policy",
    "memory_contention",
    "qs_under_load_text",
    "render_figure",
    "summarize",
    "table1",
    "table2",
    "throughput_sweep",
    "two_step_caching",
    "write_mix",
]
