"""Means and confidence intervals for repeated simulation runs.

The paper reports averages whose 90 % confidence intervals are within 5 %
(section 4.1).  The t quantiles are embedded so the core library stays
dependency-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["PointEstimate", "summarize", "t_quantile_90"]

# Two-sided 90% Student-t quantiles (one-tail 0.95) by degrees of freedom.
_T_90 = {
    1: 6.314, 2: 2.920, 3: 2.353, 4: 2.132, 5: 2.015, 6: 1.943, 7: 1.895,
    8: 1.860, 9: 1.833, 10: 1.812, 11: 1.796, 12: 1.782, 13: 1.771,
    14: 1.761, 15: 1.753, 16: 1.746, 17: 1.740, 18: 1.734, 19: 1.729,
    20: 1.725, 25: 1.708, 30: 1.697, 40: 1.684, 60: 1.671, 120: 1.658,
}
_T_90_INF = 1.645


def t_quantile_90(degrees_of_freedom: int) -> float:
    """Two-sided 90 % Student-t quantile (interpolating the table)."""
    if degrees_of_freedom < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if degrees_of_freedom in _T_90:
        return _T_90[degrees_of_freedom]
    keys = sorted(_T_90)
    if degrees_of_freedom > keys[-1]:
        return _T_90_INF
    upper = min(k for k in keys if k > degrees_of_freedom)
    lower = max(k for k in keys if k < degrees_of_freedom)
    fraction = (degrees_of_freedom - lower) / (upper - lower)
    return _T_90[lower] + fraction * (_T_90[upper] - _T_90[lower])


@dataclass(frozen=True)
class PointEstimate:
    """Mean of repeated observations with a 90 % confidence half-width."""

    mean: float
    ci_half_width: float
    count: int
    minimum: float
    maximum: float

    @property
    def relative_ci(self) -> float:
        """Half-width as a fraction of the mean (paper targets <= 5 %)."""
        return self.ci_half_width / self.mean if self.mean else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} +/- {self.ci_half_width:.2g}"


def summarize(values: list[float]) -> PointEstimate:
    """Mean and 90 % t-interval of a sample of simulation results."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return PointEstimate(mean, 0.0, 1, values[0], values[0])
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = t_quantile_90(n - 1) * math.sqrt(variance / n)
    return PointEstimate(mean, half, n, min(values), max(values))
