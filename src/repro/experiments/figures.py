"""Every table and figure of the paper, as regenerable experiments.

Each ``figure*`` function returns a :class:`FigureResult` holding one
series per curve in the paper's figure, with means and 90 % confidence
intervals over the run seeds.  The expected *shapes* (who wins, where the
crossovers fall) are documented per function and asserted by the
integration tests; absolute values depend on the simulated hardware.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.caching.config import CacheConfig
from repro.config import BufferAllocation, MemoryConfig, SystemConfig
from repro.costmodel.model import Objective
from repro.errors import TransientFaultError
from repro.experiments.parallel import parallel_map
from repro.experiments.runner import RunSettings, measure_policy
from repro.experiments.stats import PointEstimate, summarize
from repro.faults.recovery import RecoveryPolicy
from repro.faults.schedule import FaultSchedule
from repro.obs.telemetry import TelemetryConfig
from repro.optimizer.random_plans import PlanShape
from repro.optimizer.two_phase import RandomizedOptimizer
from repro.optimizer.two_step import TwoStepOptimizer
from repro.plans.policies import Policy, allowed_annotations
from repro.sql.scenario import sql_scenario
from repro.workload import AdmissionConfig, StreamConfig, WorkloadRunner
from repro.workloads.scenarios import Scenario, chain_scenario
from repro.catalog.catalog import Catalog
from repro.catalog.placement import Placement
from repro.workloads.relations import benchmark_relations

__all__ = [
    "FigureResult",
    "SeriesPoint",
    "availability_sweep",
    "cache_warmup",
    "table1",
    "table2",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure10",
    "figure11",
    "function_shipping",
    "memory_contention",
    "qs_under_load_text",
    "throughput_sweep",
    "two_step_caching",
    "utilization_timeline",
    "write_mix",
]

POLICIES = (Policy.DATA_SHIPPING, Policy.QUERY_SHIPPING, Policy.HYBRID_SHIPPING)
CACHE_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
SERVER_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
FIGURE4_LOADS = (0.0, 40.0, 60.0, 70.0)
MTBF_VALUES = (5.0, 10.0, 20.0, 40.0)
CLIENT_COUNTS = (1, 2, 4, 8)
MEMORY_CLIENT_COUNTS = (2, 4, 8, 16)
WRITE_FRACTIONS = (0.0, 0.1, 0.25, 0.5)
CONSISTENCY_PROTOCOLS = ("invalidation", "detection")
UDF_COSTS = (0.0, 2000.0, 8000.0, 32000.0, 128000.0)


@dataclass(frozen=True)
class SeriesPoint:
    """One x position of one curve."""

    x: float
    estimate: PointEstimate

    @property
    def y(self) -> float:
        return self.estimate.mean


@dataclass
class FigureResult:
    """A regenerated table or figure: labelled series over an x axis."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: dict[str, list[SeriesPoint]] = field(default_factory=dict)
    notes: str = ""

    def add(self, label: str, x: float, estimate: PointEstimate) -> None:
        self.series.setdefault(label, []).append(SeriesPoint(x, estimate))

    def values(self, label: str) -> list[tuple[float, float]]:
        """(x, mean) pairs of one series -- convenient for assertions."""
        return [(p.x, p.y) for p in self.series[label]]

    def series_means(self, label: str) -> dict[float, float]:
        return {p.x: p.y for p in self.series[label]}


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1() -> str:
    """Table 1: site annotations each policy allows per operator."""
    operators = ("display", "join", "select", "scan")
    width = 44
    header = f"{'operator':10s}" + "".join(f"{p.value:>{width}s}" for p in POLICIES)
    lines = [header, "-" * len(header)]
    for op in operators:
        row = f"{op:10s}"
        for policy in POLICIES:
            allowed = sorted(a.value for a in allowed_annotations(policy, op))
            row += f"{', '.join(allowed):>{width}s}"
        lines.append(row)
    return "\n".join(lines)


def table2(config: SystemConfig | None = None) -> str:
    """Table 2: simulator parameters and default settings."""
    config = config or SystemConfig()
    rows = [
        ("Mips", f"{config.mips:g}", "CPU speed (10^6 instr/sec)"),
        ("NumDisks", str(config.num_disks), "number of disks on a site"),
        ("DiskInst", str(config.disk_inst), "instr. to read a page from disk"),
        ("PageSize", str(config.page_size), "size of one data page (bytes)"),
        ("NetBw", f"{config.net_bandwidth_mbit:g}", "network bandwidth (Mbit/sec)"),
        ("MsgInst", str(config.msg_inst), "instr. to send/receive a message"),
        ("PerSizeMI", str(config.per_size_mi), "instr. to send/receive 4096 bytes"),
        ("Display", str(config.display_inst), "instr. to display a tuple"),
        ("Compare", str(config.compare_inst), "instr. to apply a predicate"),
        ("HashInst", str(config.hash_inst), "instr. to hash a tuple"),
        ("MoveInst", str(config.move_inst_per_4_bytes), "instr. to copy 4 bytes"),
        ("BufAlloc", "min or max", "buffer allocated to a join"),
    ]
    header = f"{'Parameter':12s}{'Value':>12s}  Description"
    lines = [header, "-" * 62]
    lines.extend(f"{name:12s}{value:>12s}  {text}" for name, value, text in rows)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Sweep-point tasks
# ----------------------------------------------------------------------
# Scenario factories and sweep points are frozen dataclasses rather than
# closures so a sweep can be pickled out to worker processes (``jobs > 1``);
# each point is fully self-describing, which is also what makes parallel
# output byte-identical to serial.
@dataclass(frozen=True)
class _TwoWayFactory:
    """Scenario factory for the 2-way-join experiments (Figures 2-5)."""

    cache_fraction: float
    allocation: BufferAllocation
    server_load: float = 0.0

    def __call__(self, seed: int) -> Scenario:
        return chain_scenario(
            num_relations=2,
            num_servers=1,
            allocation=self.allocation,
            cached_fraction=self.cache_fraction,
            placement_seed=seed,
            server_load=self.server_load,
        )


@dataclass(frozen=True)
class _TenWayFactory:
    """Scenario factory for the 10-way-join experiments (Figures 6-11)."""

    num_servers: int
    cached_relations: int = 0
    allocation: BufferAllocation = BufferAllocation.MINIMUM
    selectivity: "str | float" = "moderate"

    def __call__(self, seed: int) -> Scenario:
        return chain_scenario(
            num_relations=10,
            num_servers=self.num_servers,
            allocation=self.allocation,
            cached_relations=self.cached_relations if self.cached_relations else None,
            placement_seed=seed,
            selectivity=self.selectivity,
        )


@dataclass(frozen=True)
class _MeasureTask:
    """One (x, policy) point of a measure_policy-based figure."""

    factory: typing.Callable[[int], Scenario]
    policy: Policy
    objective: Objective
    settings: RunSettings
    label: str
    x: float
    metric: str  # "response_time" or "pages_sent"


def _run_measure_task(task: _MeasureTask) -> tuple[str, float, PointEstimate]:
    measurement = measure_policy(task.factory, task.policy, task.objective, task.settings)
    return task.label, task.x, getattr(measurement, task.metric)


def _add_measured(
    result: FigureResult, tasks: list[_MeasureTask], jobs: int
) -> FigureResult:
    for label, x, estimate in parallel_map(_run_measure_task, tasks, jobs):
        result.add(label, x, estimate)
    return result


# ----------------------------------------------------------------------
# 2-way join experiments (Figures 2-5)
# ----------------------------------------------------------------------
def _two_way_factory(
    cache_fraction: float,
    allocation: BufferAllocation,
    server_load: float = 0.0,
) -> typing.Callable[[int], Scenario]:
    return _TwoWayFactory(cache_fraction, allocation, server_load)


def figure2(
    settings: RunSettings | None = None,
    cache_fractions: tuple[float, ...] = CACHE_FRACTIONS,
    jobs: int = 1,
) -> FigureResult:
    """Figure 2: pages sent, 2-way join, 1 server, vary client caching.

    Expected shape: QS flat at 250 pages (it ships only the result); DS
    linear from 500 down to 0; HY equal to the lower envelope, crossing at
    50 % cached.
    """
    settings = settings or RunSettings()
    result = FigureResult(
        "figure2",
        "Pages Sent, 2-Way Join, 1 Server, Vary Caching",
        "cached portion of relations [%]",
        "pages sent",
    )
    tasks = [
        _MeasureTask(
            _two_way_factory(fraction, BufferAllocation.MINIMUM),
            policy,
            Objective.PAGES_SENT,
            settings,
            policy.short_name,
            fraction * 100.0,
            "pages_sent",
        )
        for fraction in cache_fractions
        for policy in POLICIES
    ]
    return _add_measured(result, tasks, jobs)


def figure3(
    settings: RunSettings | None = None,
    cache_fractions: tuple[float, ...] = CACHE_FRACTIONS,
    jobs: int = 1,
) -> FigureResult:
    """Figure 3: response time, 2-way join, minimum allocation, no load.

    Expected shape: QS worst and flat (scan and join I/O contend on the
    server disk); DS best at 0 % cached and degrading as caching grows
    (client-disk contention), ending just below QS; HY flat and best
    everywhere (scans at the server, join at the client).
    """
    settings = settings or RunSettings()
    result = FigureResult(
        "figure3",
        "Response Time, 2-Way Join, 1 Server, Vary Caching, No Load, Min. Alloc.",
        "cached portion of relations [%]",
        "response time [s]",
    )
    tasks = [
        _MeasureTask(
            _two_way_factory(fraction, BufferAllocation.MINIMUM),
            policy,
            Objective.RESPONSE_TIME,
            settings,
            policy.short_name,
            fraction * 100.0,
            "response_time",
        )
        for fraction in cache_fractions
        for policy in POLICIES
    ]
    return _add_measured(result, tasks, jobs)


def figure4(
    settings: RunSettings | None = None,
    cache_fractions: tuple[float, ...] = CACHE_FRACTIONS,
    loads: tuple[float, ...] = FIGURE4_LOADS,
    jobs: int = 1,
) -> FigureResult:
    """Figure 4: response time of DS under external server-disk load.

    Expected shape: with no load, caching *hurts* DS; around 50 %
    utilization (40 req/s) the curve flattens; at high utilization
    (70 req/s, about 90 %) caching clearly helps, because off-loading the
    hot server disk outweighs client-disk contention.
    """
    settings = settings or RunSettings()
    result = FigureResult(
        "figure4",
        "Response Time, DS, 2-Way Join, 1 Server, Vary Load & Caching, Min. Alloc.",
        "cached portion of relations [%]",
        "response time [s]",
    )
    tasks = [
        _MeasureTask(
            _two_way_factory(fraction, BufferAllocation.MINIMUM, server_load=load),
            Policy.DATA_SHIPPING,
            Objective.RESPONSE_TIME,
            settings,
            f"{load:.0f} req/sec",
            fraction * 100.0,
            "response_time",
        )
        for load in loads
        for fraction in cache_fractions
    ]
    return _add_measured(result, tasks, jobs)


def qs_under_load_text(
    settings: RunSettings | None = None,
    loads: tuple[float, ...] = (40.0, 60.0),
    jobs: int = 1,
) -> FigureResult:
    """Section 4.2.2 text: QS response times under server load.

    The paper reports 19 s at 40 req/s and 36 s at 60 req/s for the 2-way
    join under minimum allocation.
    """
    settings = settings or RunSettings()
    result = FigureResult(
        "text-4.2.2",
        "QS Response Time Under Server Disk Load (2-Way Join, Min. Alloc.)",
        "external load [req/sec]",
        "response time [s]",
    )
    tasks = [
        _MeasureTask(
            _two_way_factory(0.0, BufferAllocation.MINIMUM, server_load=load),
            Policy.QUERY_SHIPPING,
            Objective.RESPONSE_TIME,
            settings,
            "QS",
            load,
            "response_time",
        )
        for load in loads
    ]
    return _add_measured(result, tasks, jobs)


def figure5(
    settings: RunSettings | None = None,
    cache_fractions: tuple[float, ...] = CACHE_FRACTIONS,
    jobs: int = 1,
) -> FigureResult:
    """Figure 5: response time, 2-way join, maximum allocation.

    Expected shape: QS flat (in-memory join, result pipelined to the
    client); DS improving linearly with caching; crossover slightly
    *beyond* 50 % because DS faults pages in synchronously while QS
    overlaps communication with join processing; HY tracks the lower
    envelope (and, as the paper itself reports, may pick the slightly
    inferior plan near 75 % due to overlap misprediction).
    """
    settings = settings or RunSettings()
    result = FigureResult(
        "figure5",
        "Response Time, 2-Way Join, 1 Server, Vary Caching, No Load, Max. Alloc.",
        "cached portion of relations [%]",
        "response time [s]",
    )
    tasks = [
        _MeasureTask(
            _two_way_factory(fraction, BufferAllocation.MAXIMUM),
            policy,
            Objective.RESPONSE_TIME,
            settings,
            policy.short_name,
            fraction * 100.0,
            "response_time",
        )
        for fraction in cache_fractions
        for policy in POLICIES
    ]
    return _add_measured(result, tasks, jobs)


# ----------------------------------------------------------------------
# 10-way join experiments (Figures 6-8)
# ----------------------------------------------------------------------
def _ten_way_factory(
    num_servers: int,
    cached_relations: int = 0,
    allocation: BufferAllocation = BufferAllocation.MINIMUM,
    selectivity: "str | float" = "moderate",
) -> typing.Callable[[int], Scenario]:
    return _TenWayFactory(num_servers, cached_relations, allocation, selectivity)


def figure6(
    settings: RunSettings | None = None,
    server_counts: tuple[int, ...] = SERVER_COUNTS,
    jobs: int = 1,
) -> FigureResult:
    """Figure 6: pages sent, 10-way join, vary servers, no caching.

    Expected shape: DS flat at 2500 (ten relations); QS growing from 250
    at one server towards 2500 at ten (relations must move between servers
    to be joined); HY equal to the lower envelope.
    """
    settings = settings or RunSettings()
    result = FigureResult(
        "figure6",
        "Pages Sent, 10-Way Join, Vary Servers, No Caching",
        "number of servers",
        "pages sent",
    )
    tasks = [
        _MeasureTask(
            _ten_way_factory(count),
            policy,
            Objective.PAGES_SENT,
            settings,
            policy.short_name,
            count,
            "pages_sent",
        )
        for count in server_counts
        for policy in POLICIES
    ]
    return _add_measured(result, tasks, jobs)


def figure7(
    settings: RunSettings | None = None,
    server_counts: tuple[int, ...] = SERVER_COUNTS,
    jobs: int = 1,
) -> FigureResult:
    """Figure 7: pages sent, 10-way join, 5 of 10 relations cached.

    Expected shape: DS halves to 1250; QS unchanged from Figure 6 (it
    ignores the cache), crossing above DS beyond three servers; HY sends
    *less than either* for mid-range server counts by mixing cached copies
    with co-located server joins -- the paper's headline hybrid result.
    """
    settings = settings or RunSettings()
    result = FigureResult(
        "figure7",
        "Pages Sent, 10-Way Join, Vary Servers, 5 Relations Cached",
        "number of servers",
        "pages sent",
    )
    tasks = [
        _MeasureTask(
            _ten_way_factory(count, cached_relations=5),
            policy,
            Objective.PAGES_SENT,
            settings,
            policy.short_name,
            count,
            "pages_sent",
        )
        for count in server_counts
        for policy in POLICIES
    ]
    return _add_measured(result, tasks, jobs)


def figure8(
    settings: RunSettings | None = None,
    server_counts: tuple[int, ...] = SERVER_COUNTS,
    jobs: int = 1,
) -> FigureResult:
    """Figure 8: response time, 10-way join, min. allocation, no caching.

    Expected shape: DS flat (the client is the join bottleneck); QS
    improving steeply as servers are added (parallel disks); HY at or
    below both for small server populations (it splits joins between
    client and servers) and converging to QS as servers multiply.
    """
    settings = settings or RunSettings()
    result = FigureResult(
        "figure8",
        "Response Time, 10-Way Join, Vary Servers, No Caching, Min. Alloc.",
        "number of servers",
        "response time [s]",
    )
    tasks = [
        _MeasureTask(
            _ten_way_factory(count),
            policy,
            Objective.RESPONSE_TIME,
            settings,
            policy.short_name,
            count,
            "response_time",
        )
        for count in server_counts
        for policy in POLICIES
    ]
    return _add_measured(result, tasks, jobs)


# ----------------------------------------------------------------------
# Multi-client throughput sweep (not in the paper)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ThroughputTask:
    """One (client count, policy) point of the throughput sweep."""

    policy: Policy
    count: int
    cached_fraction: float
    stream: StreamConfig
    admission: AdmissionConfig
    settings: RunSettings


def _run_throughput_task(
    task: _ThroughputTask,
) -> tuple[PointEstimate, PointEstimate]:
    throughputs: list[float] = []
    p95s: list[float] = []
    for seed in task.settings.seeds:
        scenario = chain_scenario(
            num_relations=2,
            num_servers=1,
            cached_fraction=task.cached_fraction,
            placement_seed=seed,
        )
        run = WorkloadRunner(
            scenario,
            task.policy,
            num_clients=task.count,
            stream=task.stream,
            admission=task.admission,
            seed=seed,
            optimizer_config=task.settings.optimizer,
            plan_cache=task.settings.plan_cache,
            # Pinned to the paper's static-prefix model: this sweep's
            # published shape assumes the cached fraction stays fixed.
            cache="static",
        ).run()
        throughputs.append(run.throughput)
        p95s.append(run.p95_response_time)
    return summarize(throughputs), summarize(p95s)


def throughput_sweep(
    settings: RunSettings | None = None,
    client_counts: tuple[int, ...] = CLIENT_COUNTS,
    cached_fraction: float = 0.75,
    queries_per_client: int = 3,
    jobs: int = 1,
) -> FigureResult:
    """Throughput and p95 response time vs concurrent clients, per policy.

    Closed streams with zero think time: every client keeps one 2-way join
    in flight against a single server, with three quarters of each relation
    cached on the client disks.  Expected shape: data-shipping throughput
    grows nearly linearly with clients (each client joins on its *own*
    disk, only the uncached tail touches the server); query-shipping
    saturates the server disk almost immediately, so its throughput stays
    flat while its p95 response time grows with the client count;
    hybrid-shipping lands between the two.
    """
    settings = settings or RunSettings()
    admission = AdmissionConfig(max_concurrent=4, queue_limit=64)
    result = FigureResult(
        "throughput-sweep",
        "Throughput vs Concurrent Clients, 2-Way Join, 1 Server, 75% Cached",
        "concurrent clients",
        "throughput [queries/s]",
        notes=(
            "closed streams, zero think time; '<policy> p95 [s]' series carry "
            "the response-time tail of the same runs"
        ),
    )
    stream = StreamConfig(
        arrival="closed", think_time=0.0, queries_per_client=queries_per_client
    )
    tasks = [
        _ThroughputTask(policy, count, cached_fraction, stream, admission, settings)
        for count in client_counts
        for policy in POLICIES
    ]
    for task, (throughput, p95) in zip(tasks, parallel_map(_run_throughput_task, tasks, jobs)):
        result.add(task.policy.short_name, task.count, throughput)
        result.add(f"{task.policy.short_name} p95 [s]", task.count, p95)
    return result


def utilization_timeline(
    settings: RunSettings | None = None,
    cached_fraction: float = 0.5,
    interval: float = 0.5,
    jobs: int = 1,
) -> FigureResult:
    """Per-interval disk utilization over simulated time, per policy.

    The Figure-2/3 experiment point (2-way join, one server, half of every
    relation cached at the client) viewed through the telemetry sampler
    instead of end-of-run aggregates: where each policy's time *goes* while
    the query runs.  Expected shape (paper section 5's resource argument):
    data-shipping saturates the **client** disk for nearly the whole run
    (it joins locally and reads the cached halves from its own disk);
    query-shipping saturates the **server** disk instead and leaves the
    client disk idle; hybrid-shipping shows the server disk busy during the
    scan phase and the client disk during the join tail.  One seed -- the
    series are time-indexed, so cross-seed averaging would smear phases
    that start at different times.
    """
    settings = settings or RunSettings()
    seed = settings.seeds[0]
    result = FigureResult(
        "utilization-timeline",
        "Disk Utilization Over Time, 2-Way Join, 1 Server, "
        f"{cached_fraction * 100:.0f}% Cached",
        "simulated time [s]",
        "per-interval disk utilization (0..1)",
        notes=(
            f"sampled every {interval:g}s of simulated time, seed "
            f"{seed}; a '-' cell means that policy's query had already "
            "finished"
        ),
    )
    telemetry = TelemetryConfig(interval=interval)
    for policy in POLICIES:
        scenario = chain_scenario(
            num_relations=2,
            num_servers=1,
            cached_fraction=cached_fraction,
            placement_seed=seed,
        )
        plan = RandomizedOptimizer(
            scenario.query,
            scenario.environment(),
            policy=policy,
            objective=Objective.RESPONSE_TIME,
            config=settings.optimizer,
            seed=seed,
            plan_cache=settings.plan_cache,
        ).optimize().plan
        execution = scenario.execute(plan, seed=seed, telemetry=telemetry)
        assert execution.telemetry is not None
        for channel, curve in (
            ("site.client.disk0.utilization", "client disk"),
            ("site.server1.disk0.utilization", "server disk"),
        ):
            for time, value in execution.telemetry[channel]:
                result.add(f"{policy.short_name} {curve}", time, summarize([value]))
    return result


# ----------------------------------------------------------------------
# Read/write mix and cache consistency (not in the paper)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _WriteMixTask:
    """One (consistency protocol, write fraction) point of the sweep."""

    protocol: str
    write_fraction: float
    num_clients: int
    queries_per_client: int
    replication_factor: int
    cached_fraction: float
    settings: RunSettings


def _run_write_mix_task(
    task: _WriteMixTask,
) -> tuple[PointEstimate, PointEstimate, PointEstimate, PointEstimate]:
    throughputs: list[float] = []
    p95s: list[float] = []
    stale_hits: list[float] = []
    protocol_work: list[float] = []
    for seed in task.settings.seeds:
        scenario = chain_scenario(
            num_relations=2,
            num_servers=2,
            cached_fraction=task.cached_fraction,
            placement_seed=seed,
            replication_factor=task.replication_factor,
        )
        run = WorkloadRunner(
            scenario,
            # Data shipping: client scans actually consult the client
            # caches, which is the path the consistency protocols guard.
            Policy.DATA_SHIPPING,
            num_clients=task.num_clients,
            stream=StreamConfig(
                arrival="closed",
                think_time=0.0,
                queries_per_client=task.queries_per_client,
                write_fraction=task.write_fraction,
            ),
            seed=seed,
            optimizer_config=task.settings.optimizer,
            plan_cache=task.settings.plan_cache,
            # Dynamic client caches: the part of the system the consistency
            # protocol exists to keep correct.
            cache="dynamic",
            consistency=task.protocol,
        ).run()
        profile = run.profile
        throughputs.append(run.throughput)
        p95s.append(run.p95_response_time)
        stale_hits.append(
            sum(v for k, v in profile.items() if k.endswith("consistency.stale_hits"))
        )
        # Protocol overhead: callbacks broadcast (invalidation) plus server
        # round trips on cache hits (detection).
        protocol_work.append(
            sum(
                v
                for k, v in profile.items()
                if k.endswith(("consistency.invalidations", "consistency.validations"))
            )
        )
    return (
        summarize(throughputs),
        summarize(p95s),
        summarize(stale_hits),
        summarize(protocol_work),
    )


def write_mix(
    settings: RunSettings | None = None,
    write_fractions: tuple[float, ...] = WRITE_FRACTIONS,
    protocols: tuple[str, ...] = CONSISTENCY_PROTOCOLS,
    num_clients: int = 4,
    queries_per_client: int = 4,
    replication_factor: int = 2,
    cached_fraction: float = 0.5,
    jobs: int = 1,
) -> FigureResult:
    """Throughput vs write fraction under both cache-consistency protocols.

    Data-shipping clients with dynamic caches run closed streams in which
    ``write_fraction`` of the submission slots are page writes, applied with
    primary-copy write-through to 2-way-replicated relations.  Expected
    shape: statement throughput *rises* with the write fraction (a
    few-page write-through is far cheaper than a chain join), but the two
    protocols split on overhead -- detection pays a validation round trip
    on *every* cache hit (thousands of control messages) while
    invalidation only pays per callback to a caching client; stale hits
    stay fully detected -- the engine never serves a stale page -- and are
    counted per protocol.
    """
    settings = settings or RunSettings()
    result = FigureResult(
        "write-mix",
        "Throughput vs Write Fraction, Invalidation vs Detection (beyond the paper)",
        "write fraction",
        "throughput [statements/s]",
        notes=(
            f"data shipping, {num_clients} clients, dynamic caches, "
            f"{replication_factor}-way replication; '<protocol> p95 [s]' / "
            "'<protocol> stale hits' / '<protocol> msgs' series carry the "
            "response-time tail, detected-stale counts, and protocol "
            "messages (callbacks + validations) of the same runs"
        ),
    )
    tasks = [
        _WriteMixTask(
            protocol,
            fraction,
            num_clients,
            queries_per_client,
            replication_factor,
            cached_fraction,
            settings,
        )
        for fraction in write_fractions
        for protocol in protocols
    ]
    outcomes = parallel_map(_run_write_mix_task, tasks, jobs)
    for task, (throughput, p95, stale, msgs) in zip(tasks, outcomes):
        result.add(task.protocol, task.write_fraction, throughput)
        result.add(f"{task.protocol} p95 [s]", task.write_fraction, p95)
        result.add(f"{task.protocol} stale hits", task.write_fraction, stale)
        result.add(f"{task.protocol} msgs", task.write_fraction, msgs)
    return result


# ----------------------------------------------------------------------
# Function shipping: where should a user-defined predicate run?
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _SqlFactory:
    """Scenario factory for SQL-frontend sweeps (picklable for ``jobs``)."""

    sql: str

    def __call__(self, seed: int) -> Scenario:
        return sql_scenario(self.sql, placement_seed=seed)


_FUNCTION_SHIPPING_SQL = "SELECT * FROM R0 WHERE f(R0) COST {cost:g}{at}"
_FUNCTION_SHIPPING_ARMS = (
    ("client-eval", " AT CLIENT"),
    ("server-eval", " AT SERVER"),
    ("optimizer-chosen", ""),
)


def function_shipping(
    settings: RunSettings | None = None,
    udf_costs: tuple[float, ...] = UDF_COSTS,
    jobs: int = 1,
) -> FigureResult:
    """Response time vs UDF cost for the three UDF placement strategies.

    A query-shipping client filters one benchmark table through a named
    UDF of 50 % selectivity whose per-tuple cost sweeps the x axis.  The
    ``AT CLIENT`` / ``AT SERVER`` arms pin the predicate; the third arm
    lets the optimizer's udf-site move choose.  Expected shape: server
    evaluation wins at cost ~0 (it halves the shipped pages), but the
    UDF's cpu serializes with the server's disk reads, so the client arm
    -- which overlaps UDF cpu with the network transfer -- takes over as
    the cost grows.  The optimizer-chosen curve should track the lower
    envelope of the two pinned arms.
    """
    settings = settings or RunSettings()
    result = FigureResult(
        "function-shipping",
        "Function Shipping: UDF Placement vs Predicate Cost (beyond the paper)",
        "UDF cost [instructions/tuple]",
        "response time [s]",
        notes=(
            "query shipping, 1 server, 10,000-tuple table, UDF selectivity "
            "0.5, maximum buffer allocation; 'pages <arm>' series carry the "
            "shipped-page counts of the same runs"
        ),
    )
    tasks = [
        _MeasureTask(
            factory=_SqlFactory(_FUNCTION_SHIPPING_SQL.format(cost=cost, at=at)),
            policy=Policy.QUERY_SHIPPING,
            objective=Objective.RESPONSE_TIME,
            settings=settings,
            label=label if metric == "response_time" else f"pages {label}",
            x=cost,
            metric=metric,
        )
        for label, at in _FUNCTION_SHIPPING_ARMS
        for cost in udf_costs
        for metric in ("response_time", "pages_sent")
    ]
    return _add_measured(result, tasks, jobs)


# ----------------------------------------------------------------------
# Memory contention: static vs dynamic join memory (not in the paper)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _MemoryContentionTask:
    """One (memory mode, client count) point of the contention sweep."""

    mode: str
    count: int
    server_memory_pages: int
    queries_per_client: int
    stream: StreamConfig
    settings: RunSettings


def _run_memory_contention_task(
    task: _MemoryContentionTask,
) -> tuple[PointEstimate, PointEstimate, PointEstimate, PointEstimate]:
    throughputs: list[float] = []
    p95s: list[float] = []
    sheds: list[float] = []
    spills: list[float] = []
    for seed in task.settings.seeds:
        base = SystemConfig(
            server_memory_pages=task.server_memory_pages,
            memory=MemoryConfig(mode=task.mode),
        )
        scenario = chain_scenario(
            num_relations=2,
            num_servers=1,
            allocation=BufferAllocation.MAXIMUM,
            placement_seed=seed,
            config=base,
        )
        run = WorkloadRunner(
            scenario,
            Policy.QUERY_SHIPPING,
            num_clients=task.count,
            stream=task.stream,
            seed=seed,
            optimizer_config=task.settings.optimizer,
            plan_cache=task.settings.plan_cache,
            # Single attempts: a memory-shed query fails fast and is
            # reported as shed, rather than retrying against the same
            # exhausted pool -- exactly the static-allocation failure the
            # dynamic broker is meant to remove.
            recovery=RecoveryPolicy.none(),
            cache="static",
        ).run()
        throughputs.append(run.throughput)
        p95s.append(run.p95_response_time)
        sheds.append(float(run.shed + run.failed))
        spills.append(run.profile.get("site.server1.memory.spill_pages", 0.0))
    return (
        summarize(throughputs),
        summarize(p95s),
        summarize(sheds),
        summarize(spills),
    )


def memory_contention(
    settings: RunSettings | None = None,
    client_counts: tuple[int, ...] = MEMORY_CLIENT_COUNTS,
    server_memory_pages: int = 400,
    queries_per_client: int = 2,
    jobs: int = 1,
) -> FigureResult:
    """Throughput and p95 vs clients at fixed server memory, static vs dynamic.

    Query-shipping 2-way joins under maximum allocation all want the
    server's join memory at once, but the 400-page pool only fits one
    maximal hybrid-hash build at a time.  Static plan-time allocation sheds
    every join that cannot get its full grant; the dynamic broker instead
    queues requests, grants what is available above each join's minimum,
    and reclaims pages (triggering incremental spilling) when later
    arrivals would otherwise starve.  Expected shape: the static curve
    sheds more queries as clients grow and its completed throughput stays
    flat, while the dynamic curve completes *every* query -- trading sheds
    for bounded spill I/O and memory-wait time visible in its p95.
    """
    settings = settings or RunSettings()
    result = FigureResult(
        "memory-contention",
        "Throughput vs Clients at Fixed Server Memory, Static vs Dynamic Allocation",
        "concurrent clients",
        "throughput [queries/s]",
        notes=(
            f"QS 2-way joins, max. allocation, {server_memory_pages}-page server "
            "pool; '<mode> p95 [s]' / '<mode> shed' / '<mode> spill pages' "
            "series carry the tail latency, shed+failed queries, and broker "
            "spill I/O of the same runs"
        ),
    )
    stream = StreamConfig(
        arrival="closed", think_time=0.25, queries_per_client=queries_per_client
    )
    tasks = [
        _MemoryContentionTask(
            mode, count, server_memory_pages, queries_per_client, stream, settings
        )
        for count in client_counts
        for mode in ("static", "dynamic")
    ]
    outcomes = parallel_map(_run_memory_contention_task, tasks, jobs)
    for task, (throughput, p95, shed, spill) in zip(tasks, outcomes):
        result.add(task.mode, task.count, throughput)
        result.add(f"{task.mode} p95 [s]", task.count, p95)
        result.add(f"{task.mode} shed", task.count, shed)
        result.add(f"{task.mode} spill pages", task.count, spill)
    return result


# ----------------------------------------------------------------------
# Dynamic cache warm-up (not in the paper)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _CacheWarmupTask:
    """One shipping policy's warm-up curve over a closed query stream."""

    policy: Policy
    queries_per_client: int
    cached_fraction: float
    replacement: str
    settings: RunSettings


def _run_cache_warmup_task(
    task: _CacheWarmupTask,
) -> tuple[list[PointEstimate], list[PointEstimate]]:
    pages: list[list[float]] = [[] for _ in range(task.queries_per_client)]
    times: list[list[float]] = [[] for _ in range(task.queries_per_client)]
    for seed in task.settings.seeds:
        scenario = chain_scenario(
            num_relations=2,
            num_servers=1,
            cached_fraction=task.cached_fraction,
            placement_seed=seed,
        )
        run = WorkloadRunner(
            scenario,
            task.policy,
            num_clients=1,
            stream=StreamConfig(
                arrival="closed",
                think_time=0.0,
                queries_per_client=task.queries_per_client,
            ),
            seed=seed,
            optimizer_config=task.settings.optimizer,
            cache=CacheConfig(mode="dynamic", policy=task.replacement),
        ).run()
        # One closed zero-think client: sessions complete in submission
        # order and pages_sent is exact (no overlapping sessions).
        for position, session in enumerate(run.sessions):
            pages[position].append(float(session.pages_sent))
            times[position].append(session.response_time)
    return [summarize(p) for p in pages], [summarize(t) for t in times]


def cache_warmup(
    settings: RunSettings | None = None,
    queries_per_client: int = 5,
    cached_fraction: float = 0.0,
    replacement: str = "lru",
    jobs: int = 1,
) -> FigureResult:
    """Pages shipped and response time vs position in a warming stream.

    One client runs a closed, zero-think stream of identical 2-way joins
    against a cold (``cached_fraction=0``) dynamic buffer cache, so every
    page a client scan faults in stays resident for the rest of the
    stream.  Expected shape: data-shipping pays the full fault storm on
    query 1 and then runs entirely off the client disk (pages shipped
    drops to zero -- monotone non-increasing); query-shipping never warms
    (it ships the same join result every time, a flat line); hybrid under
    the response-time objective prefers streaming server scans into a
    client join -- pipelined shipping beats page-at-a-time faulting
    (section 4.2.3) -- so it ships the full relations every query and
    stays flat too.  Only client scans fault through the buffer cache, so
    only they warm it; the ``pages-sent`` objective (see
    ``examples/cache_warmup.py``) is what drives hybrid to client scans.
    """
    settings = settings or RunSettings()
    result = FigureResult(
        "cache-warmup",
        "Warm-Up of the Dynamic Client Cache, 2-Way Join, 1 Server, Cold Start",
        "query position in stream",
        "data pages shipped",
        notes=(
            f"closed single-client stream, {replacement} replacement; "
            "'<policy> [s]' series carry the response times of the same runs"
        ),
    )
    tasks = [
        _CacheWarmupTask(
            policy, queries_per_client, cached_fraction, replacement, settings
        )
        for policy in POLICIES
    ]
    outcomes = parallel_map(_run_cache_warmup_task, tasks, jobs)
    for task, (pages, times) in zip(tasks, outcomes):
        label = task.policy.short_name
        for position, estimate in enumerate(pages, start=1):
            result.add(label, position, estimate)
        for position, estimate in enumerate(times, start=1):
            result.add(f"{label} [s]", position, estimate)
    return result


# ----------------------------------------------------------------------
# Fault tolerance: availability sweep (not in the paper)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _AvailabilityTask:
    """One (MTBF, policy) point of the availability sweep."""

    policy: Policy
    mtbf: float
    mttr: float
    horizon: float
    cached_fraction: float
    recovery: RecoveryPolicy
    settings: RunSettings


def _run_availability_task(
    task: _AvailabilityTask,
) -> tuple[PointEstimate, PointEstimate, PointEstimate]:
    times: list[float] = []
    replans: list[float] = []
    completions: list[float] = []
    for seed in task.settings.seeds:
        scenario = chain_scenario(
            num_relations=2,
            num_servers=1,
            cached_fraction=task.cached_fraction,
            placement_seed=seed,
        )
        plan = RandomizedOptimizer(
            scenario.query,
            scenario.environment(),
            policy=task.policy,
            objective=Objective.RESPONSE_TIME,
            config=task.settings.optimizer,
            seed=seed,
            plan_cache=task.settings.plan_cache,
        ).optimize().plan
        faults = FaultSchedule.periodic_crashes(
            1, mtbf=task.mtbf, mttr=task.mttr, horizon=task.horizon, seed=seed
        )
        try:
            run = scenario.execute(
                plan,
                seed=seed,
                faults=faults,
                recovery=task.recovery,
                policy=task.policy,
                optimizer_config=task.settings.optimizer,
                plan_cache=task.settings.plan_cache,
            )
        except TransientFaultError:
            times.append(task.horizon)
            replans.append(0.0)
            completions.append(0.0)
        else:
            times.append(run.response_time)
            replans.append(float(run.replans))
            completions.append(100.0)
    return summarize(times), summarize(replans), summarize(completions)


def availability_sweep(
    settings: RunSettings | None = None,
    mtbf_values: tuple[float, ...] = MTBF_VALUES,
    mttr: float = 2.0,
    horizon: float = 120.0,
    cached_fraction: float = 1.0,
    jobs: int = 1,
) -> FigureResult:
    """Response time of the three policies under periodic server crashes.

    The server of a fully-cached 2-way join crashes with exponential
    times-to-failure (mean ``mtbf``) and restarts after ``mttr`` seconds.
    Expected shape: data-shipping is immune (its plan never touches the
    server when the relations are cached); hybrid-shipping degrades
    gracefully -- each crash costs one replan and a client-cache fallback;
    query-shipping suffers most, since it can only wait out each restart
    window, and at low MTBF it may exhaust its retry budget entirely
    (failed runs are censored at the query timeout).
    """
    settings = settings or RunSettings()
    recovery = RecoveryPolicy(max_attempts=6, base_backoff=0.5, query_timeout=horizon)
    result = FigureResult(
        "availability-sweep",
        "Response Time Under Periodic Server Crashes, 2-Way Join, Fully Cached",
        "server MTBF [s]",
        "response time [s]",
        notes=(
            f"mttr={mttr:g}s; runs that exhaust recovery are censored at the "
            f"{horizon:g}s query timeout and excluded from 'completed [%]'"
        ),
    )
    tasks = [
        _AvailabilityTask(policy, mtbf, mttr, horizon, cached_fraction, recovery, settings)
        for mtbf in mtbf_values
        for policy in POLICIES
    ]
    outcomes = parallel_map(_run_availability_task, tasks, jobs)
    for task, (times, replans, completions) in zip(tasks, outcomes):
        label = task.policy.short_name
        result.add(label, task.mtbf, times)
        result.add(f"{label} replans", task.mtbf, replans)
        result.add(f"{label} completed [%]", task.mtbf, completions)
    return result


# ----------------------------------------------------------------------
# Static vs 2-step optimization (Figures 10 and 11)
# ----------------------------------------------------------------------
def _centralized_catalog(scenario: Scenario) -> Catalog:
    """Compile-time belief: the whole database on a single server."""
    relations = benchmark_relations(len(scenario.query.relations))
    return Catalog(relations, Placement({r.name: 1 for r in relations}))


def _distributed_catalog(scenario: Scenario) -> Catalog:
    """Compile-time belief: every relation on its own server."""
    relations = benchmark_relations(len(scenario.query.relations))
    return Catalog(relations, Placement({r.name: i + 1 for i, r in enumerate(relations)}))


@dataclass(frozen=True)
class _TwoStepTask:
    """One server-count point of a Figure-10/11 style experiment."""

    count: int
    selectivity: "str | float"
    settings: RunSettings


def _run_two_step_task(task: _TwoStepTask) -> dict[str, PointEstimate]:
    settings = task.settings
    factory = _ten_way_factory(task.count, selectivity=task.selectivity)
    per_variant: dict[str, list[float]] = {
        "Deep Static": [],
        "Deep 2-Step": [],
        "Bushy Static": [],
        "Bushy 2-Step": [],
    }
    for seed in settings.seeds:
        scenario = factory(seed)
        true_env = scenario.environment()
        two_step = TwoStepOptimizer(Objective.RESPONSE_TIME, settings.optimizer)
        ideal = RandomizedOptimizer(
            scenario.query,
            true_env,
            policy=Policy.HYBRID_SHIPPING,
            objective=Objective.RESPONSE_TIME,
            config=settings.optimizer,
            seed=seed,
            plan_cache=settings.plan_cache,
        ).optimize()
        ideal_time = scenario.execute(ideal.plan, seed=seed).response_time

        deep = two_step.compile(
            scenario.query,
            scenario.assumed_environment(_centralized_catalog(scenario)),
            shape=PlanShape.DEEP,
            seed=seed,
        )
        bushy = two_step.compile(
            scenario.query,
            scenario.assumed_environment(
                _distributed_catalog(scenario),
                num_servers=len(scenario.query.relations),
            ),
            shape=PlanShape.ANY,
            seed=seed,
        )
        plans = {
            "Deep Static": two_step.static_plan(deep),
            "Deep 2-Step": two_step.runtime_plan(deep, true_env, seed=seed),
            "Bushy Static": two_step.static_plan(bushy),
            "Bushy 2-Step": two_step.runtime_plan(bushy, true_env, seed=seed),
        }
        elapsed = {
            label: scenario.execute(plan, seed=seed).response_time
            for label, plan in plans.items()
        }
        # The randomized "ideal" is only as good as its search budget;
        # normalize by the best plan actually measured so ratios are a
        # true "times slower than the best known plan" (>= 1).
        baseline = min(ideal_time, *elapsed.values())
        for label, value in elapsed.items():
            per_variant[label].append(value / baseline)
    return {label: summarize(ratios) for label, ratios in per_variant.items()}


def _two_step_figure(
    figure_id: str,
    title: str,
    selectivity: "str | float",
    settings: RunSettings,
    server_counts: tuple[int, ...],
    jobs: int = 1,
) -> FigureResult:
    result = FigureResult(
        figure_id,
        title,
        "number of servers",
        "response time relative to ideal plan",
        notes=(
            "deep plans compiled under a centralized assumption, bushy plans "
            "under a fully-distributed assumption; the ideal plan is optimized "
            "with full knowledge of the runtime state (section 5.2)"
        ),
    )
    tasks = [_TwoStepTask(count, selectivity, settings) for count in server_counts]
    for task, estimates in zip(tasks, parallel_map(_run_two_step_task, tasks, jobs)):
        for label, estimate in estimates.items():
            result.add(label, task.count, estimate)
    return result


def figure10(
    settings: RunSettings | None = None,
    server_counts: tuple[int, ...] = SERVER_COUNTS,
    jobs: int = 1,
) -> FigureResult:
    """Figure 10: relative response time of static and 2-step plans.

    Expected shape: deep static plans pay the largest penalty (the
    centralized assumption concentrates all joins); 2-step site selection
    recovers much of it; bushy 2-step plans run close to the ideal across
    all server populations.
    """
    settings = settings or RunSettings()
    return _two_step_figure(
        "figure10",
        "Relative Response Time, 10-Way Join, Deep and Bushy Plans",
        "moderate",
        settings,
        server_counts,
        jobs=jobs,
    )


def figure11(
    settings: RunSettings | None = None,
    server_counts: tuple[int, ...] = SERVER_COUNTS,
    jobs: int = 1,
) -> FigureResult:
    """Figure 11: the Figure-10 experiment for the HiSel query.

    Expected shape: bushy plans suffer at small server counts (high join
    selectivity makes bushy intermediates large), but bushy 2-step recovers
    as servers are added and the extra work parallelizes.
    """
    settings = settings or RunSettings()
    return _two_step_figure(
        "figure11",
        "Relative Response Time, HiSel 10-Way Join, Deep and Bushy Plans",
        "hisel",
        settings,
        server_counts,
        jobs=jobs,
    )


# ----------------------------------------------------------------------
# Section 5 text: 2-step optimization exploits run-time caching
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _TwoStepCachingTask:
    """One cache-fraction point of the 2-step caching experiment."""

    fraction: float
    settings: RunSettings


def _run_two_step_caching_task(task: _TwoStepCachingTask) -> dict[str, PointEstimate]:
    settings = task.settings
    per_variant: dict[str, list[float]] = {"Static": [], "2-Step": [], "Ideal": []}
    for seed in settings.seeds:
        runtime_scenario = chain_scenario(
            num_relations=4,
            num_servers=2,
            cached_fraction=task.fraction,
            placement_seed=seed,
        )
        compile_catalog = runtime_scenario.catalog.with_cache({})
        compile_env = runtime_scenario.assumed_environment(compile_catalog)
        true_env = runtime_scenario.environment()
        two_step = TwoStepOptimizer(Objective.PAGES_SENT, settings.optimizer)
        compiled = two_step.compile(runtime_scenario.query, compile_env, seed=seed)
        static_plan = two_step.static_plan(compiled)
        runtime_plan = two_step.runtime_plan(compiled, true_env, seed=seed)
        ideal = RandomizedOptimizer(
            runtime_scenario.query,
            true_env,
            policy=Policy.HYBRID_SHIPPING,
            objective=Objective.PAGES_SENT,
            config=settings.optimizer,
            seed=seed,
            plan_cache=settings.plan_cache,
        ).optimize()
        per_variant["Static"].append(
            float(runtime_scenario.execute(static_plan, seed=seed).pages_sent)
        )
        per_variant["2-Step"].append(
            float(runtime_scenario.execute(runtime_plan, seed=seed).pages_sent)
        )
        per_variant["Ideal"].append(
            float(runtime_scenario.execute(ideal.plan, seed=seed).pages_sent)
        )
    return {label: summarize(pages) for label, pages in per_variant.items()}


def two_step_caching(
    settings: RunSettings | None = None,
    cache_fractions: tuple[float, ...] = (0.0, 0.5, 1.0),
    jobs: int = 1,
) -> FigureResult:
    """Section 5 text: 2-step site selection exploits client caching.

    "If at runtime copies of data are cached at the client that submits a
    query, 2-step optimization has the flexibility to exploit the cached
    data to reduce communication."  Queries are compiled assuming an empty
    client cache; at run time the cache holds a prefix of every relation.
    The static plan's communication is stuck at the compile-time level,
    while the 2-step plan's falls with the cache like a fresh optimization.
    """
    settings = settings or RunSettings()
    result = FigureResult(
        "two-step-caching",
        "Pages Sent vs Run-Time Caching: Static, 2-Step, and Ideal Plans",
        "cached portion of relations [%]",
        "pages sent",
        notes="4-way join, 2 servers; compile time assumed an empty cache",
    )
    tasks = [_TwoStepCachingTask(fraction, settings) for fraction in cache_fractions]
    outcomes = parallel_map(_run_two_step_caching_task, tasks, jobs)
    for task, estimates in zip(tasks, outcomes):
        for label, estimate in estimates.items():
            result.add(label, task.fraction * 100.0, estimate)
    return result
