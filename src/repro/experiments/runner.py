"""Measurement loops: optimize + simulate one point, repeatedly, with CIs."""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.config import OptimizerConfig
from repro.costmodel.model import Objective
from repro.engine.executor import ExecutionResult
from repro.experiments.stats import PointEstimate, summarize
from repro.optimizer.cache import PlanCache
from repro.optimizer.two_phase import RandomizedOptimizer
from repro.plans.operators import DisplayOp
from repro.plans.policies import Policy
from repro.workloads.scenarios import Scenario

__all__ = ["RunSettings", "Measurement", "measure_policy", "measure_plan"]

ScenarioFactory = typing.Callable[[int], Scenario]
PlanFactory = typing.Callable[[Scenario, int], DisplayOp]


@dataclass(frozen=True)
class RunSettings:
    """How thoroughly to run an experiment point.

    ``seeds`` drive both the random relation placement and the randomized
    optimizer, so every repetition sees a fresh placement, exactly as in
    the paper's 10-way experiments ("the data points ... represent the
    average of many such random placements", section 4.3).

    ``plan_cache`` memoizes the per-point optimizations: sweeps that
    revisit the same (query, environment, policy, seed) combination -- or
    whose hybrid runs repeat a pure subspace pass -- reuse the earlier
    result instead of re-searching.  Caching never changes which plan a
    point measures.
    """

    seeds: tuple[int, ...] = (3, 7, 11, 13, 17)
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig.fast)
    plan_cache: PlanCache | None = field(default=None, compare=False)

    def quick(self) -> "RunSettings":
        """Three-seed variant for smoke tests."""
        return RunSettings(
            seeds=self.seeds[:3], optimizer=self.optimizer, plan_cache=self.plan_cache
        )


@dataclass
class Measurement:
    """Aggregated metrics of one experiment point."""

    response_time: PointEstimate
    pages_sent: PointEstimate
    results: list[ExecutionResult]


def measure_policy(
    scenario_factory: ScenarioFactory,
    policy: Policy,
    objective: Objective,
    settings: RunSettings,
) -> Measurement:
    """Optimize (under the scenario's true state) and simulate, per seed."""
    results: list[ExecutionResult] = []
    for seed in settings.seeds:
        scenario = scenario_factory(seed)
        optimizer = RandomizedOptimizer(
            scenario.query,
            scenario.environment(),
            policy=policy,
            objective=objective,
            config=settings.optimizer,
            seed=seed,
            plan_cache=settings.plan_cache,
        )
        plan = optimizer.optimize().plan
        results.append(scenario.execute(plan, seed=seed))
    return _aggregate(results)


def measure_plan(
    scenario_factory: ScenarioFactory,
    plan_factory: PlanFactory,
    settings: RunSettings,
) -> Measurement:
    """Simulate externally produced plans (static / 2-step experiments)."""
    results: list[ExecutionResult] = []
    for seed in settings.seeds:
        scenario = scenario_factory(seed)
        plan = plan_factory(scenario, seed)
        results.append(scenario.execute(plan, seed=seed))
    return _aggregate(results)


def _aggregate(results: list[ExecutionResult]) -> Measurement:
    return Measurement(
        response_time=summarize([r.response_time for r in results]),
        pages_sent=summarize([float(r.pages_sent) for r in results]),
        results=results,
    )
