"""Text rendering of figure results, in the style of the paper's plots."""

from __future__ import annotations

from repro.experiments.figures import FigureResult

__all__ = ["render_figure"]


def render_figure(result: FigureResult, show_ci: bool = True) -> str:
    """Render a figure's series as an aligned text table.

    One row per x value, one column per series; each cell is the mean
    (and, optionally, the 90 % confidence half-width).
    """
    labels = list(result.series)
    xs = sorted({point.x for series in result.series.values() for point in series})
    by_series = {
        label: {point.x: point.estimate for point in points}
        for label, points in result.series.items()
    }
    width = max(16, max((len(label) for label in labels), default=8) + 10)
    lines = [
        f"{result.figure_id}: {result.title}",
        f"y = {result.y_label}",
        "",
        f"{result.x_label:>28s}" + "".join(f"{label:>{width}s}" for label in labels),
    ]
    for x in xs:
        row = f"{x:>28g}"
        for label in labels:
            estimate = by_series[label].get(x)
            if estimate is None:
                cell = "-"
            elif show_ci and estimate.count > 1:
                cell = f"{estimate.mean:.4g} +/-{estimate.ci_half_width:.2g}"
            else:
                cell = f"{estimate.mean:.4g}"
            row += f"{cell:>{width}s}"
        lines.append(row)
    if result.notes:
        lines.extend(["", f"note: {result.notes}"])
    return "\n".join(lines)
