"""Command-line entry point: regenerate any table or figure.

Examples::

    repro-experiments table1
    repro-experiments fig3 --seeds 3 7 11
    repro-experiments fig8 --servers 1 2 5 10 --paper
    repro-experiments all --quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import OptimizerConfig
from repro.experiments import figures
from repro.experiments.report import render_figure
from repro.experiments.runner import RunSettings
from repro.optimizer.cache import PlanCache

__all__ = ["main"]

_FIGURES = {
    "fig2": figures.figure2,
    "fig3": figures.figure3,
    "fig4": figures.figure4,
    "fig5": figures.figure5,
    "fig6": figures.figure6,
    "fig7": figures.figure7,
    "fig8": figures.figure8,
    "fig10": figures.figure10,
    "fig11": figures.figure11,
    "qs-load": figures.qs_under_load_text,
    "fault-sweep": figures.availability_sweep,
    "function-shipping": figures.function_shipping,
    "throughput-sweep": figures.throughput_sweep,
    "utilization-timeline": figures.utilization_timeline,
    "cache-warmup": figures.cache_warmup,
    "memory-contention": figures.memory_contention,
    "write-mix": figures.write_mix,
}
_SERVER_FIGURES = {"fig6", "fig7", "fig8", "fig10", "fig11"}
_CACHE_FIGURES = {"fig2", "fig3", "fig4", "fig5"}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Performance Tradeoffs for "
            "Client-Server Query Processing' (SIGMOD 1996)."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=["table1", "table2", "all", *sorted(_FIGURES)],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list every registered experiment name and exit",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=None, help="run seeds (placements)"
    )
    parser.add_argument(
        "--servers", type=int, nargs="+", default=None, help="server counts to sweep"
    )
    parser.add_argument(
        "--cache", type=float, nargs="+", default=None,
        help="cache fractions to sweep (0..1)",
    )
    parser.add_argument(
        "--mtbf", type=float, nargs="+", default=None,
        help="server MTBF values for the fault-sweep [s]",
    )
    parser.add_argument(
        "--clients", type=int, nargs="+", default=None,
        help="concurrent client counts for the throughput-sweep",
    )
    parser.add_argument(
        "--queries", type=int, default=None,
        help="stream length (queries per client) for the cache-warmup",
    )
    parser.add_argument(
        "--replacement", choices=["lru", "mru", "clock"], default=None,
        help="buffer-cache replacement policy for the cache-warmup",
    )
    parser.add_argument(
        "--write-fractions", type=float, nargs="+", default=None,
        help="write fractions to sweep for the write-mix (0..1)",
    )
    parser.add_argument(
        "--udf-costs", type=float, nargs="+", default=None,
        help="per-tuple UDF costs to sweep for the function-shipping",
    )
    parser.add_argument(
        "--paper", action="store_true",
        help="use the slower, higher-quality optimizer preset",
    )
    parser.add_argument(
        "--quick", action="store_true", help="three seeds and a sparse sweep"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "run sweep points on N worker processes (default 1 = serial); "
            "output is byte-identical to a serial run"
        ),
    )
    parser.add_argument(
        "--no-plan-cache", action="store_true",
        help=(
            "disable the shared optimizer plan cache (enabled by default; "
            "caching reuses identical optimizations across sweep points "
            "without changing any chosen plan)"
        ),
    )
    return parser


def _settings(args: argparse.Namespace) -> RunSettings:
    optimizer = OptimizerConfig.paper() if args.paper else OptimizerConfig.fast()
    plan_cache = None if args.no_plan_cache else PlanCache()
    settings = RunSettings(optimizer=optimizer, plan_cache=plan_cache)
    if args.seeds:
        settings = RunSettings(
            seeds=tuple(args.seeds), optimizer=optimizer, plan_cache=plan_cache
        )
    elif args.quick:
        settings = settings.quick()
    return settings


def _run_one(name: str, args: argparse.Namespace) -> None:
    settings = _settings(args)
    function = _FIGURES[name]
    kwargs: dict = {"settings": settings}
    if name in _SERVER_FIGURES:
        if args.servers:
            kwargs["server_counts"] = tuple(args.servers)
        elif args.quick:
            kwargs["server_counts"] = (1, 2, 5, 10)
    if name in _CACHE_FIGURES and args.cache:
        kwargs["cache_fractions"] = tuple(args.cache)
    if name == "qs-load":
        kwargs.pop("server_counts", None)
    if name == "fault-sweep":
        if args.mtbf:
            kwargs["mtbf_values"] = tuple(args.mtbf)
        elif args.quick:
            kwargs["mtbf_values"] = (5.0, 20.0)
    if name == "throughput-sweep":
        if args.clients:
            kwargs["client_counts"] = tuple(args.clients)
        elif args.quick:
            kwargs["client_counts"] = (1, 2, 4)
    if name == "utilization-timeline":
        if args.cache:
            kwargs["cached_fraction"] = args.cache[0]
        if args.quick:
            kwargs["interval"] = 1.0
    if name == "memory-contention":
        if args.clients:
            kwargs["client_counts"] = tuple(args.clients)
        elif args.quick:
            kwargs["client_counts"] = (2, 4)
    if name == "cache-warmup":
        if args.queries:
            kwargs["queries_per_client"] = args.queries
        elif args.quick:
            kwargs["queries_per_client"] = 3
        if args.replacement:
            kwargs["replacement"] = args.replacement
    if name == "write-mix":
        if args.write_fractions:
            kwargs["write_fractions"] = tuple(args.write_fractions)
        elif args.quick:
            kwargs["write_fractions"] = (0.0, 0.5)
        if args.clients:
            kwargs["num_clients"] = args.clients[0]
        elif args.quick:
            kwargs["num_clients"] = 2
        if args.queries:
            kwargs["queries_per_client"] = args.queries
        elif args.quick:
            kwargs["queries_per_client"] = 2
    if name == "function-shipping":
        if args.udf_costs:
            kwargs["udf_costs"] = tuple(args.udf_costs)
        elif args.quick:
            kwargs["udf_costs"] = (0.0, 8000.0, 128000.0)
    if args.jobs > 1:
        kwargs["jobs"] = args.jobs
    started = time.time()
    result = function(**kwargs)
    print(render_figure(result))
    print(f"\n[{name} regenerated in {time.time() - started:.1f}s]")


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name in ["table1", "table2", *sorted(_FIGURES)]:
            print(name)
        return 0
    if args.experiment is None:
        parser.error("an experiment name (or --list) is required")
    if args.experiment == "table1":
        print(figures.table1())
        return 0
    if args.experiment == "table2":
        print(figures.table2())
        return 0
    names = sorted(_FIGURES) if args.experiment == "all" else [args.experiment]
    for name in names:
        _run_one(name, args)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
