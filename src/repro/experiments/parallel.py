"""Parallel execution of independent experiment sweep points.

Every figure is a sweep: the same measurement repeated over a grid of
(x value, policy) points, each point fully determined by its own seeds and
scenario construction.  :func:`parallel_map` fans those points out over a
pool of worker processes and returns the results in submission order, so a
parallel sweep is *byte-identical* to the serial one -- workers share
nothing, and each point derives all of its randomness from its own task
description.

``jobs <= 1`` (the default everywhere) runs the plain serial loop in the
calling process: no pool, no pickling, no behaviour change.
"""

from __future__ import annotations

import multiprocessing
import typing

__all__ = ["parallel_map"]

T = typing.TypeVar("T")
R = typing.TypeVar("R")


def parallel_map(
    fn: typing.Callable[[T], R],
    items: typing.Iterable[T],
    jobs: int = 1,
) -> list[R]:
    """Apply ``fn`` to every item, optionally across worker processes.

    Results come back in item order regardless of completion order.  Tasks
    and results must be picklable when ``jobs > 1``; the fork start method
    is used so module state (and read-only caches) are inherited for free.
    """
    work = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return [fn(item) for item in work]
    with context.Pool(processes=min(jobs, len(work))) as pool:
        return pool.map(fn, work)
