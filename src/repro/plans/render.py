"""Text rendering of annotated (and optionally bound) plans.

Produces trees in the spirit of the paper's Figure 1, e.g.::

    display [client] @client
    '-- join [consumer] @client
        |-- join [inner relation] @server1
        |   |-- scan(A) [primary copy] @server1
        |   '-- scan(B) [primary copy] @server1
        '-- scan(C) [client] @client
"""

from __future__ import annotations

from repro.plans.binding import BoundPlan
from repro.plans.operators import AggregateOp, PlanOp, ScanOp, SemiJoinOp, UdfFilterOp

__all__ = ["render_plan"]


def _label(op: PlanOp, bound: BoundPlan | None) -> str:
    if isinstance(op, ScanOp):
        name = f"scan({op.relation})"
    elif isinstance(op, UdfFilterOp):
        name = (
            f"udf-filter({op.udf.name}({op.udf.relation})"
            f" cost={op.udf.per_tuple_instructions:g})"
        )
    elif isinstance(op, SemiJoinOp):
        name = f"semijoin({op.reduction.relation} << {op.reduction.digest_of})"
    elif isinstance(op, AggregateOp):
        keys = ", ".join(op.group_by) if op.group_by else "<all>"
        name = f"aggregate(group by {keys})"
    else:
        name = op.kind
    label = f"{name} [{op.annotation}]"
    if bound is not None:
        site = bound.site_of(op)
        label += f" @{'client' if site == 0 else f'server{site}'}"
    return label


def render_plan(plan: "PlanOp | BoundPlan") -> str:
    """Render a plan (bound or not) as an ASCII tree."""
    bound = plan if isinstance(plan, BoundPlan) else None
    root = plan.root if isinstance(plan, BoundPlan) else plan
    lines: list[str] = []

    def visit(op: PlanOp, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(_label(op, bound))
            child_prefix = ""
        else:
            connector = "'-- " if is_last else "|-- "
            lines.append(prefix + connector + _label(op, bound))
            child_prefix = prefix + ("    " if is_last else "|   ")
        children = op.children
        for index, child in enumerate(children):
            visit(child, child_prefix, index == len(children) - 1, False)

    visit(root, "", True, True)
    return "\n".join(lines)
