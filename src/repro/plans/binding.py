"""Run-time binding of logical annotations to physical sites.

"At runtime, the logical annotations are bound to actual sites in the
network.  First the locations of the display and scan operators are
resolved; then, the locations of the other operators are resolved given
their annotations" (section 2.1).  Well-formed plans always resolve.

Binding consults only a :class:`~repro.catalog.Catalog` (for primary-copy
locations) and the client site id, so the *same* annotated plan binds
differently as data migrates between servers -- the behaviour the 2-step
optimization experiments exercise.  There is no singleton client: passing a
different ``client_site`` (0, -1, -2, ... in multi-client topologies) pins
the plan's client-side operators to that client's site, which is how the
workload subsystem runs one shared plan per concurrent client.
"""

from __future__ import annotations

import typing

from repro.catalog.catalog import Catalog
from repro.errors import BindingError
from repro.hardware.site import CLIENT_SITE_ID, site_name
from repro.plans.annotations import Annotation
from repro.plans.operators import (
    AggregateOp,
    DisplayOp,
    JoinOp,
    PlanOp,
    ScanOp,
    SelectOp,
    SemiJoinOp,
    UdfFilterOp,
)

__all__ = ["BoundPlan", "bind_plan"]


class BoundPlan:
    """An annotated plan whose every operator is pinned to a physical site."""

    def __init__(self, root: DisplayOp, sites: dict[int, int]) -> None:
        self.root = root
        self._sites = sites

    def site_of(self, op: PlanOp) -> int:
        """The physical site id (0 = client) an operator runs at."""
        try:
            return self._sites[id(op)]
        except KeyError:
            raise BindingError(f"operator {op.kind} is not part of this bound plan") from None

    def operators(self) -> typing.Iterator[PlanOp]:
        return self.root.walk()

    def edges(self) -> typing.Iterator[tuple[PlanOp, PlanOp]]:
        """All (parent, child) producer-consumer edges."""
        for op in self.root.walk():
            for child in op.children:
                yield op, child

    def crossing_edges(self) -> list[tuple[PlanOp, PlanOp]]:
        """Edges whose endpoints run at different sites (network shipping)."""
        return [
            (parent, child)
            for parent, child in self.edges()
            if self.site_of(parent) != self.site_of(child)
        ]

    def sites_used(self) -> set[int]:
        return {self.site_of(op) for op in self.operators()}

    def operators_at(self, site_id: int) -> list[PlanOp]:
        return [op for op in self.operators() if self.site_of(op) == site_id]

    def operator_labels(self) -> dict[int, str]:
        """Deterministic display label per operator, keyed by ``id(op)``.

        Labels are stable for a given plan shape (pre-order walk with
        per-kind counters): ``scan[RelA]@server1``, ``join#0@client``,
        ``select#1@server2``, ``display@client``.  The executor stamps them
        onto physical operators and the cost model keys its per-operator
        breakdown by them, which is what lets the validation harness line
        predicted costs up against traced actuals.
        """
        labels: dict[int, str] = {}
        counters: dict[str, int] = {}
        for op in self.root.walk():
            site = site_name(self.site_of(op))
            if isinstance(op, ScanOp):
                labels[id(op)] = f"scan[{op.relation}]@{site}"
            elif isinstance(op, DisplayOp):
                labels[id(op)] = f"display@{site}"
            else:
                ordinal = counters.get(op.kind, 0)
                counters[op.kind] = ordinal + 1
                labels[id(op)] = f"{op.kind}#{ordinal}@{site}"
        return labels

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BoundPlan sites={sorted(self.sites_used())}>"


def bind_plan(
    root: DisplayOp,
    catalog: Catalog,
    client_site: int = CLIENT_SITE_ID,
) -> BoundPlan:
    """Resolve every operator's logical annotation to a physical site id."""
    parents: dict[int, PlanOp] = {}
    for op in root.walk():
        for child in op.children:
            parents[id(child)] = op

    sites: dict[int, int] = {}

    # Pass 1: fixed locations (display and scans).
    unresolved: list[PlanOp] = []
    for op in root.walk():
        if isinstance(op, DisplayOp):
            sites[id(op)] = client_site
        elif isinstance(op, ScanOp):
            if op.home is not None and op.home not in catalog.servers_of(op.relation):
                raise BindingError(
                    f"scan of {op.relation!r} pinned to server {op.home}, which "
                    f"holds no copy (copies on {catalog.servers_of(op.relation)})"
                )
            if op.annotation is Annotation.CLIENT:
                sites[id(op)] = client_site
            elif op.home is not None:
                sites[id(op)] = op.home
            else:
                sites[id(op)] = catalog.server_of(op.relation)
        elif isinstance(op, UdfFilterOp) and op.annotation is Annotation.CLIENT:
            # A client-evaluated UDF is as fixed as the display: the data
            # ships to the query's client regardless of where it lives.
            sites[id(op)] = client_site
        else:
            unresolved.append(op)

    # Pass 2: propagate through annotations until a fixed point.
    def reference_of(op: PlanOp) -> PlanOp:
        if op.annotation is Annotation.CONSUMER:
            return parents[id(op)]
        if isinstance(op, JoinOp):
            target = op.annotation_target()
            if target is None:  # pragma: no cover - guarded by operator ctor
                raise BindingError(f"join has unresolvable annotation {op.annotation}")
            return target
        if (
            isinstance(op, (SelectOp, UdfFilterOp, SemiJoinOp, AggregateOp))
            and op.annotation is Annotation.PRODUCER
        ):
            return op.child
        raise BindingError(f"{op.kind} has unresolvable annotation {op.annotation}")

    pending = unresolved
    while pending:
        progressed = False
        still_pending: list[PlanOp] = []
        for op in pending:
            reference = reference_of(op)
            if id(reference) in sites:
                sites[id(op)] = sites[id(reference)]
                progressed = True
            else:
                still_pending.append(op)
        if not progressed:
            raise BindingError(
                "binding did not converge; the plan is ill-formed "
                "(annotation cycle between operators)"
            )
        pending = still_pending

    return BoundPlan(root, sites)
