"""Plan validation: structure and well-formedness.

A *well-formed* plan's annotations contain no cycles, so every operator has
a path (via annotations) to a leaf or to the root, and the runtime binding
scheme always resolves (section 2.2.3).  Because plans are trees, "only
cycles with two nodes can occur": a parent whose annotation points *down* to
a child whose annotation is ``consumer`` (pointing back *up*).
"""

from __future__ import annotations

from repro.errors import IllFormedPlanError, PlanError
from repro.plans.annotations import Annotation
from repro.plans.operators import (
    AggregateOp,
    DisplayOp,
    JoinOp,
    PlanOp,
    ScanOp,
    SelectOp,
    SemiJoinOp,
    UdfFilterOp,
)
from repro.plans.logical import Query

__all__ = ["is_well_formed", "find_annotation_cycles", "validate_plan"]


def _downward_targets(op: PlanOp) -> tuple[PlanOp, ...]:
    """Children whose site this operator's annotation resolves to."""
    if isinstance(op, JoinOp):
        target = op.annotation_target()
        return (target,) if target is not None else ()
    if (
        isinstance(op, (SelectOp, UdfFilterOp, SemiJoinOp, AggregateOp))
        and op.annotation is Annotation.PRODUCER
    ):
        return (op.child,)
    return ()


def find_annotation_cycles(plan: PlanOp) -> list[tuple[PlanOp, PlanOp]]:
    """All (parent, child) pairs whose annotations point at each other."""
    cycles: list[tuple[PlanOp, PlanOp]] = []
    for op in plan.walk():
        for target in _downward_targets(op):
            if target.annotation is Annotation.CONSUMER:
                cycles.append((op, target))
    return cycles


def is_well_formed(plan: PlanOp) -> bool:
    """True if the plan's annotations contain no two-node cycle."""
    return not find_annotation_cycles(plan)


def validate_plan(plan: PlanOp, query: Query | None = None) -> None:
    """Full structural validation of an execution plan.

    Checks that the root is a display, that scans cover each query relation
    exactly once (when a query is given), that no operator appears twice in
    the tree, and that the plan is well-formed.
    """
    if not isinstance(plan, DisplayOp):
        raise PlanError(f"plan root must be a display operator, got {plan.kind}")
    seen_ids: set[int] = set()
    scans: list[ScanOp] = []
    displays = 0
    for op in plan.walk():
        if id(op) in seen_ids:
            raise PlanError("operator object appears twice in the plan tree")
        seen_ids.add(id(op))
        if isinstance(op, ScanOp):
            scans.append(op)
        elif isinstance(op, DisplayOp):
            displays += 1
    if displays != 1:
        raise PlanError(f"plan must contain exactly one display, found {displays}")
    scanned = [scan.relation for scan in scans]
    if len(set(scanned)) != len(scanned):
        raise PlanError("a relation is scanned more than once")
    if query is not None:
        missing = set(query.relations) - set(scanned)
        extra = set(scanned) - set(query.relations)
        if missing or extra:
            raise PlanError(
                f"plan scans {sorted(scanned)} but query needs {sorted(query.relations)}"
            )
        udfs = [op.udf for op in plan.walk() if isinstance(op, UdfFilterOp)]
        if sorted(udfs, key=lambda u: (u.relation, u.name)) != sorted(
            query.udfs, key=lambda u: (u.relation, u.name)
        ):
            raise PlanError(
                f"plan evaluates UDFs {sorted(u.name for u in udfs)} but the "
                f"query declares {sorted(u.name for u in query.udfs)}"
            )
        reductions = [op.reduction for op in plan.walk() if isinstance(op, SemiJoinOp)]
        if sorted(r.relation for r in reductions) != sorted(
            r.relation for r in query.semi_joins
        ):
            raise PlanError(
                f"plan reduces {sorted(r.relation for r in reductions)} but the "
                f"query plans semi-joins on "
                f"{sorted(r.relation for r in query.semi_joins)}"
            )
        aggregates = plan.count(AggregateOp)
        expected = 0 if query.aggregation is None else 1
        if aggregates != expected:
            raise PlanError(
                f"plan has {aggregates} aggregate operator(s) but the query "
                f"declares {expected}"
            )
    cycles = find_annotation_cycles(plan)
    if cycles:
        parent, child = cycles[0]
        raise IllFormedPlanError(
            f"annotation cycle: {parent.kind} ({parent.annotation}) <-> "
            f"{child.kind} ({child.annotation})"
        )
