"""Plan operators: display, join, select, scan (section 2.1).

Plans are immutable binary trees.  Following the paper's convention, a
join's *left-hand* input is the **inner** relation (the hybrid-hash build
side) and its *right-hand* input is the **outer** relation (the probe side):
"an inner relation annotation indicates that the operator should be executed
at the same site as the operator that produces its left-hand input".

Optimizer moves never mutate nodes; they rebuild the spine of the tree, so
plans can be shared, hashed, and compared structurally.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, replace

from repro.errors import PlanError
from repro.plans.annotations import Annotation
from repro.plans.logical import SemiJoinReduction, UdfPredicate

__all__ = [
    "AggregateOp",
    "DisplayOp",
    "JoinOp",
    "PlanOp",
    "ScanOp",
    "SelectOp",
    "SemiJoinOp",
    "UNARY_STREAM_OPS",
    "UdfFilterOp",
]


@dataclass(frozen=True)
class PlanOp:
    """Base class for all plan operators."""

    annotation: Annotation

    #: Short lowercase operator name ('scan', 'join', ...); a class
    #: attribute because the optimizer reads it on every candidate move.
    kind: typing.ClassVar[str] = ""

    @property
    def children(self) -> tuple["PlanOp", ...]:
        return ()

    def with_annotation(self, annotation: Annotation) -> "PlanOp":
        """Copy of this node with a different site annotation."""
        return replace(self, annotation=annotation)

    def walk(self) -> typing.Iterator["PlanOp"]:
        """Pre-order traversal of the subtree rooted here (iterative: this
        runs on every optimizer move, where recursive generators dominate)."""
        stack: list[PlanOp] = [self]
        while stack:
            op = stack.pop()
            yield op
            children = op.children
            if children:
                stack.extend(reversed(children))

    def relations(self) -> frozenset[str]:
        """Names of all base relations scanned in this subtree."""
        return frozenset(op.relation for op in self.walk() if isinstance(op, ScanOp))

    def count(self, op_type: type) -> int:
        return sum(1 for op in self.walk() if isinstance(op, op_type))


@dataclass(frozen=True)
class ScanOp(PlanOp):
    """Produces all tuples of a base relation.

    Annotated ``primary copy`` (run at the relation's server) or ``client``
    (run at the query's client, reading cached pages from the local disk and
    faulting missing pages in from the server).

    ``home`` optionally pins the scan to one specific copy of a replicated
    relation: a ``primary copy`` scan then runs at that server instead of
    the primary, and a ``client`` scan faults its missing pages from it.
    None (the default, and the only valid value for unreplicated catalogs)
    means the primary copy -- such plans are byte-identical to pre-replica
    plans.
    """

    relation: str = ""
    home: int | None = None

    kind: typing.ClassVar[str] = "scan"

    def __post_init__(self) -> None:
        if not self.relation:
            raise PlanError("scan needs a relation name")
        if self.annotation not in (Annotation.PRIMARY_COPY, Annotation.CLIENT):
            raise PlanError(f"scan cannot be annotated {self.annotation}")
        if self.home is not None and self.home < 1:
            raise PlanError(
                f"scan home must be a server id (>= 1), got {self.home}"
            )

    def with_annotation(self, annotation: Annotation) -> "ScanOp":
        return ScanOp(annotation, self.relation, self.home)

    def with_home(self, home: int | None) -> "ScanOp":
        """Copy of this scan served by a different copy of the relation."""
        return ScanOp(self.annotation, self.relation, home)


@dataclass(frozen=True)
class SelectOp(PlanOp):
    """Applies a predicate; annotated ``consumer`` or ``producer``."""

    child: PlanOp = None  # type: ignore[assignment]
    selectivity: float = 1.0

    kind: typing.ClassVar[str] = "select"

    def __post_init__(self) -> None:
        if self.child is None:
            raise PlanError("select needs a child operator")
        if not 0.0 < self.selectivity <= 1.0:
            raise PlanError(f"select selectivity must be in (0, 1], got {self.selectivity}")
        if self.annotation not in (Annotation.CONSUMER, Annotation.PRODUCER):
            raise PlanError(f"select cannot be annotated {self.annotation}")

    @property
    def children(self) -> tuple[PlanOp, ...]:
        return (self.child,)

    def with_annotation(self, annotation: Annotation) -> "SelectOp":
        return SelectOp(annotation, self.child, self.selectivity)

    def with_child(self, child: PlanOp) -> "SelectOp":
        return SelectOp(self.annotation, child, self.selectivity)


@dataclass(frozen=True)
class JoinOp(PlanOp):
    """Equi-join; left input is the inner (build) side, right is the outer.

    Annotated ``consumer``, ``inner relation``, or ``outer relation``.
    """

    inner: PlanOp = None  # type: ignore[assignment]
    outer: PlanOp = None  # type: ignore[assignment]

    kind: typing.ClassVar[str] = "join"

    def __post_init__(self) -> None:
        if self.inner is None or self.outer is None:
            raise PlanError("join needs two children")
        if self.annotation not in (
            Annotation.CONSUMER,
            Annotation.INNER_RELATION,
            Annotation.OUTER_RELATION,
        ):
            raise PlanError(f"join cannot be annotated {self.annotation}")

    @property
    def children(self) -> tuple[PlanOp, ...]:
        return (self.inner, self.outer)

    def with_annotation(self, annotation: Annotation) -> "JoinOp":
        return JoinOp(annotation, self.inner, self.outer)

    def with_children(self, inner: PlanOp, outer: PlanOp) -> "JoinOp":
        return JoinOp(self.annotation, inner, outer)

    def annotation_target(self) -> PlanOp | None:
        """The child whose site this join's annotation points to, if any."""
        if self.annotation is Annotation.INNER_RELATION:
            return self.inner
        if self.annotation is Annotation.OUTER_RELATION:
            return self.outer
        return None


@dataclass(frozen=True)
class UdfFilterOp(PlanOp):
    """Applies an expensive named UDF predicate to its input stream.

    Annotated ``client`` (evaluate at the query's client -- ship the data)
    or ``producer`` (evaluate at the site producing the input stream --
    ship the function).  This is the function-shipping axis: unlike scans
    and joins, the placement of a UDF is orthogonal to where the data
    lives, so every policy -- including pure data shipping and pure query
    shipping -- may choose either site.
    """

    child: PlanOp = None  # type: ignore[assignment]
    udf: UdfPredicate = None  # type: ignore[assignment]

    kind: typing.ClassVar[str] = "udf-filter"

    def __post_init__(self) -> None:
        if self.child is None:
            raise PlanError("udf-filter needs a child operator")
        if self.udf is None:
            raise PlanError("udf-filter needs a UdfPredicate")
        if self.annotation not in (Annotation.CLIENT, Annotation.PRODUCER):
            raise PlanError(
                f"udf-filter {self.udf.name!r} cannot be annotated {self.annotation}"
            )
        if self.udf.site == "client" and self.annotation is not Annotation.CLIENT:
            raise PlanError(
                f"UDF {self.udf.name!r} is pinned to the client but annotated "
                f"{self.annotation}"
            )
        if self.udf.site == "server" and self.annotation is not Annotation.PRODUCER:
            raise PlanError(
                f"UDF {self.udf.name!r} is pinned to its producer site but "
                f"annotated {self.annotation}"
            )

    @property
    def children(self) -> tuple[PlanOp, ...]:
        return (self.child,)

    def with_annotation(self, annotation: Annotation) -> "UdfFilterOp":
        return UdfFilterOp(annotation, self.child, self.udf)

    def with_child(self, child: PlanOp) -> "UdfFilterOp":
        return UdfFilterOp(self.annotation, child, self.udf)


@dataclass(frozen=True)
class SemiJoinOp(PlanOp):
    """Semi-join reducer: drops tuples with no join partner before shipping.

    A digest of the join column of ``reduction.digest_of`` is shipped to
    this operator's site and probed per input tuple; only
    ``reduction.survivor_fraction`` of the stream survives.  Annotated
    ``consumer`` or ``producer`` like a select -- placed at the producer it
    cuts the pages shipped upstream, which is its whole point.
    """

    child: PlanOp = None  # type: ignore[assignment]
    reduction: SemiJoinReduction = None  # type: ignore[assignment]

    kind: typing.ClassVar[str] = "semijoin"

    def __post_init__(self) -> None:
        if self.child is None:
            raise PlanError("semijoin needs a child operator")
        if self.reduction is None:
            raise PlanError("semijoin needs a SemiJoinReduction")
        if self.annotation not in (Annotation.CONSUMER, Annotation.PRODUCER):
            raise PlanError(
                f"semijoin on {self.reduction.relation!r} cannot be annotated "
                f"{self.annotation}"
            )

    @property
    def children(self) -> tuple[PlanOp, ...]:
        return (self.child,)

    def with_annotation(self, annotation: Annotation) -> "SemiJoinOp":
        return SemiJoinOp(annotation, self.child, self.reduction)

    def with_child(self, child: PlanOp) -> "SemiJoinOp":
        return SemiJoinOp(self.annotation, child, self.reduction)


@dataclass(frozen=True)
class AggregateOp(PlanOp):
    """Hash group-by over its input stream; blocking (build, then emit).

    Annotated ``consumer`` (aggregate where the result is consumed -- at
    the client, under the display) or ``producer`` (push the aggregate
    down to the site producing the join result -- partial-aggregate
    pushdown; exact here because the input is a single stream).
    ``group_by`` and ``aggregates`` describe the output shape; ``groups``
    is the planner's output-cardinality estimate.
    """

    child: PlanOp = None  # type: ignore[assignment]
    group_by: tuple[str, ...] = ()
    aggregates: tuple[str, ...] = ()
    groups: float = 1.0

    kind: typing.ClassVar[str] = "aggregate"

    def __post_init__(self) -> None:
        if self.child is None:
            raise PlanError("aggregate needs a child operator")
        if not self.group_by and not self.aggregates:
            raise PlanError("aggregate needs group-by columns or aggregate exprs")
        if self.groups < 1.0:
            raise PlanError(
                f"aggregate over {self.group_by!r} must produce at least one "
                f"group, got estimate {self.groups}"
            )
        if self.annotation not in (Annotation.CONSUMER, Annotation.PRODUCER):
            raise PlanError(f"aggregate cannot be annotated {self.annotation}")

    @property
    def children(self) -> tuple[PlanOp, ...]:
        return (self.child,)

    def with_annotation(self, annotation: Annotation) -> "AggregateOp":
        return AggregateOp(
            annotation, self.child, self.group_by, self.aggregates, self.groups
        )

    def with_child(self, child: PlanOp) -> "AggregateOp":
        return AggregateOp(
            self.annotation, child, self.group_by, self.aggregates, self.groups
        )


@dataclass(frozen=True)
class DisplayOp(PlanOp):
    """Presents the result to the application; always at the client."""

    child: PlanOp = None  # type: ignore[assignment]

    kind: typing.ClassVar[str] = "display"

    def __post_init__(self) -> None:
        if self.child is None:
            raise PlanError("display needs a child operator")
        if self.annotation is not Annotation.CLIENT:
            raise PlanError("display is always annotated client (section 2.1)")

    @property
    def children(self) -> tuple[PlanOp, ...]:
        return (self.child,)

    def with_child(self, child: PlanOp) -> "DisplayOp":
        return DisplayOp(self.annotation, child)


#: Single-input stream operators that rebuild via ``with_child`` --
#: everything that can sit on a pipeline between a scan and a join/display.
UNARY_STREAM_OPS = (SelectOp, UdfFilterOp, SemiJoinOp, AggregateOp, DisplayOp)
