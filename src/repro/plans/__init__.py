"""Query plans: logical queries, annotated operator trees, and policies.

An execution plan is a binary tree of operators (scan, select, join,
display).  Site selection is expressed by *logical annotations* (section
2.1): ``client``, ``primary copy``, ``consumer``, ``producer``, ``inner
relation``, ``outer relation``.  The data-shipping, query-shipping and
hybrid-shipping policies are defined purely by which annotations they allow
for each operator (Table 1); :mod:`repro.plans.policies` encodes that table.

Annotations are bound to physical sites only at execution time
(:mod:`repro.plans.binding`), so the same plan adapts when data migrates or
queries are submitted elsewhere -- the property the 2-step optimization study
(section 5) relies on.
"""

from repro.plans.logical import (
    Aggregation,
    JoinPredicate,
    Query,
    SemiJoinReduction,
    UdfPredicate,
)
from repro.plans.annotations import Annotation
from repro.plans.operators import (
    AggregateOp,
    DisplayOp,
    JoinOp,
    PlanOp,
    ScanOp,
    SelectOp,
    SemiJoinOp,
    UdfFilterOp,
)
from repro.plans.policies import Policy, allowed_annotations, check_policy
from repro.plans.validate import is_well_formed, validate_plan
from repro.plans.binding import BoundPlan, bind_plan
from repro.plans.render import render_plan

__all__ = [
    "AggregateOp",
    "Aggregation",
    "Annotation",
    "BoundPlan",
    "DisplayOp",
    "JoinOp",
    "JoinPredicate",
    "PlanOp",
    "Policy",
    "Query",
    "ScanOp",
    "SelectOp",
    "SemiJoinOp",
    "SemiJoinReduction",
    "UdfFilterOp",
    "UdfPredicate",
    "allowed_annotations",
    "bind_plan",
    "check_policy",
    "is_well_formed",
    "render_plan",
    "validate_plan",
]
