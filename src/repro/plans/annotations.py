"""Logical site annotations (section 2.1).

Annotations refer to *logical* sites and "are not bound to physical machines
until query execution time":

- ``client`` -- the site where the query is submitted;
- ``primary copy`` -- the server where the scanned relation resides;
- ``consumer`` -- the site of the operator consuming this operator's output;
- ``producer`` -- the site of a unary operator's child;
- ``inner relation`` -- the site producing a join's left-hand input;
- ``outer relation`` -- the site producing a join's right-hand input.
"""

from __future__ import annotations

import enum

__all__ = ["Annotation"]


class Annotation(enum.Enum):
    CLIENT = "client"
    PRIMARY_COPY = "primary copy"
    CONSUMER = "consumer"
    PRODUCER = "producer"
    INNER_RELATION = "inner relation"
    OUTER_RELATION = "outer relation"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def points_up(self) -> bool:
        """True if this annotation resolves to the parent operator's site."""
        return self is Annotation.CONSUMER

    @property
    def points_down(self) -> bool:
        """True if this annotation resolves to a child operator's site."""
        return self in (
            Annotation.PRODUCER,
            Annotation.INNER_RELATION,
            Annotation.OUTER_RELATION,
        )
