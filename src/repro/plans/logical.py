"""Logical queries: select-project-join over named relations.

A :class:`Query` is independent of any execution plan: it names the
relations, the equi-join predicates connecting them (with selectivities),
optional selection predicates on base relations, and the width of projected
result tuples.  The paper's benchmark queries are chain joins whose every
join result is projected to 100-byte tuples (section 3.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import PlanError

__all__ = ["JoinPredicate", "Query"]


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join edge between two relations.

    ``selectivity`` is the classic join selectivity factor:
    ``|A join B| = selectivity * |A| * |B|``.  The paper's *moderate*
    selectivity makes a join of two equal-sized base relations return the
    cardinality of one base relation (selectivity = 1/|A|); the *HiSel*
    variant lets only 20 % of each input's tuples participate.
    """

    left: str
    right: str
    selectivity: float

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise PlanError(f"self-join edge on {self.left!r} is not supported")
        if self.selectivity <= 0.0:
            raise PlanError(f"join selectivity must be positive, got {self.selectivity}")

    def connects(self, left_set: frozenset[str], right_set: frozenset[str]) -> bool:
        """True if this edge crosses between the two relation sets."""
        return (self.left in left_set and self.right in right_set) or (
            self.right in left_set and self.left in right_set
        )

    def endpoints(self) -> frozenset[str]:
        return frozenset((self.left, self.right))


@dataclass(frozen=True)
class Query:
    """A select-project-join query.

    Parameters
    ----------
    relations:
        Names of the base relations referenced.
    predicates:
        Join edges; relations without a connecting edge can only be combined
        by Cartesian product (the optimizer will avoid that when possible).
    selections:
        Optional per-relation selection selectivities in (0, 1]; a value of
        1.0 (or absence) means no selection operator is planned for that
        relation.
    result_tuple_bytes:
        Width of tuples in join results and the final result after
        projection (the paper projects everything to 100 bytes).
    """

    relations: tuple[str, ...]
    predicates: tuple[JoinPredicate, ...] = ()
    selections: dict[str, float] = field(default_factory=dict)
    result_tuple_bytes: int = 100

    def __post_init__(self) -> None:
        if not self.relations:
            raise PlanError("a query needs at least one relation")
        if len(set(self.relations)) != len(self.relations):
            raise PlanError("duplicate relation in query")
        known = set(self.relations)
        for predicate in self.predicates:
            if predicate.left not in known or predicate.right not in known:
                raise PlanError(
                    f"predicate {predicate.left} = {predicate.right} references "
                    "a relation not in the query"
                )
        for name, selectivity in self.selections.items():
            if name not in known:
                raise PlanError(f"selection on unknown relation {name!r}")
            if not 0.0 < selectivity <= 1.0:
                raise PlanError(f"selection selectivity for {name!r} must be in (0, 1]")
        if self.result_tuple_bytes <= 0:
            raise PlanError("result tuple width must be positive")

    @property
    def num_joins(self) -> int:
        """Joins in any plan for this query (relations - 1)."""
        return len(self.relations) - 1

    def predicates_between(
        self, left_set: frozenset[str], right_set: frozenset[str]
    ) -> list[JoinPredicate]:
        """All join edges crossing between two disjoint relation sets."""
        return [p for p in self.predicates if p.connects(left_set, right_set)]

    def selection_on(self, relation: str) -> float | None:
        """Selection selectivity for ``relation`` or None if none planned."""
        selectivity = self.selections.get(relation)
        if selectivity is None or selectivity >= 1.0:
            return None
        return selectivity

    def is_connected(self) -> bool:
        """True if the join graph connects all relations (no forced products)."""
        if len(self.relations) == 1:
            return True
        adjacency: dict[str, set[str]] = {r: set() for r in self.relations}
        for predicate in self.predicates:
            adjacency[predicate.left].add(predicate.right)
            adjacency[predicate.right].add(predicate.left)
        seen = {self.relations[0]}
        frontier = [self.relations[0]]
        while frontier:
            for neighbour in adjacency[frontier.pop()]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self.relations)

    def join_graph_edges(self) -> list[tuple[str, str]]:
        """Sorted edge list, useful for rendering and tests."""
        return sorted((min(p.left, p.right), max(p.left, p.right)) for p in self.predicates)

    def validate_unique_edges(self) -> None:
        """Raise if two predicates connect the same pair of relations."""
        for a, b in itertools.combinations(self.predicates, 2):
            if a.endpoints() == b.endpoints():
                raise PlanError(f"duplicate join edge between {sorted(a.endpoints())}")
