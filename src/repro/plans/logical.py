"""Logical queries: select-project-join over named relations.

A :class:`Query` is independent of any execution plan: it names the
relations, the equi-join predicates connecting them (with selectivities),
optional selection predicates on base relations, and the width of projected
result tuples.  The paper's benchmark queries are chain joins whose every
join result is projected to 100-byte tuples (section 3.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import PlanError

__all__ = ["Aggregation", "JoinPredicate", "Query", "SemiJoinReduction", "UdfPredicate"]


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join edge between two relations.

    ``selectivity`` is the classic join selectivity factor:
    ``|A join B| = selectivity * |A| * |B|``.  The paper's *moderate*
    selectivity makes a join of two equal-sized base relations return the
    cardinality of one base relation (selectivity = 1/|A|); the *HiSel*
    variant lets only 20 % of each input's tuples participate.
    """

    left: str
    right: str
    selectivity: float

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise PlanError(f"self-join edge on {self.left!r} is not supported")
        if self.selectivity <= 0.0:
            raise PlanError(f"join selectivity must be positive, got {self.selectivity}")

    def connects(self, left_set: frozenset[str], right_set: frozenset[str]) -> bool:
        """True if this edge crosses between the two relation sets."""
        return (self.left in left_set and self.right in right_set) or (
            self.right in left_set and self.left in right_set
        )

    def endpoints(self) -> frozenset[str]:
        return frozenset((self.left, self.right))


#: Legal values of :attr:`UdfPredicate.site`.
UDF_SITES = ("auto", "client", "server")


@dataclass(frozen=True)
class UdfPredicate:
    """A named, expensive user-defined predicate on one base relation.

    The declared ``per_tuple_instructions`` is the UDF's CPU cost (machine
    instructions per input tuple) and ``selectivity`` the fraction of
    tuples that pass.  ``site`` constrains where the predicate may be
    evaluated: ``"client"`` pins it to the client, ``"server"`` pins it to
    the site producing its input stream, and ``"auto"`` (the default)
    leaves the choice to the optimizer -- the function-shipping axis.
    """

    name: str
    relation: str
    per_tuple_instructions: float
    selectivity: float = 0.5
    site: str = "auto"

    def __post_init__(self) -> None:
        if not self.name:
            raise PlanError(f"UDF on relation {self.relation!r} needs a name")
        if self.per_tuple_instructions < 0:
            raise PlanError(
                f"UDF {self.name!r} on {self.relation!r}: per-tuple cost must be "
                f">= 0, got {self.per_tuple_instructions}"
            )
        if not 0.0 < self.selectivity <= 1.0:
            raise PlanError(
                f"UDF {self.name!r} on {self.relation!r}: selectivity must be "
                f"in (0, 1], got {self.selectivity}"
            )
        if self.site not in UDF_SITES:
            raise PlanError(
                f"UDF {self.name!r} on {self.relation!r}: site must be one of "
                f"{UDF_SITES}, got {self.site!r}"
            )


@dataclass(frozen=True)
class Aggregation:
    """A hash group-by over the final join result.

    ``group_by`` names the grouping columns (``Relation.column``); an empty
    tuple is a scalar aggregate (one output group).  ``aggregates`` names
    the aggregate expressions computed per group (``COUNT(*)``,
    ``SUM(R.x)``, ...) -- they are carried for rendering and result-shape
    reporting; the cost model prices the group-by by its hashing work and
    its output cardinality ``groups``, estimated by the planner.
    """

    group_by: tuple[str, ...] = ()
    aggregates: tuple[str, ...] = ()
    groups: float = 1.0

    def __post_init__(self) -> None:
        if not self.group_by and not self.aggregates:
            raise PlanError("an aggregation needs group-by columns or aggregates")
        if self.groups < 1.0:
            raise PlanError(
                f"aggregation over {self.group_by!r} must produce at least one "
                f"group, got estimate {self.groups}"
            )


@dataclass(frozen=True)
class SemiJoinReduction:
    """A semi-join reducer on one base relation's scan pipeline.

    Before ``relation``'s tuples are shipped into a join, a digest of the
    join column of ``digest_of`` (``key_bytes`` per distinct value) is sent
    to the reducer's site and used to drop the tuples that cannot find a
    join partner; ``survivor_fraction`` of the input stream survives.
    Profitable exactly when participation is low (the paper's HiSel
    workloads, where only 20 % of tuples join).
    """

    relation: str
    digest_of: str
    survivor_fraction: float
    key_bytes: int = 8

    def __post_init__(self) -> None:
        if self.relation == self.digest_of:
            raise PlanError(
                f"semi-join on {self.relation!r} cannot take a digest of itself"
            )
        if not 0.0 < self.survivor_fraction <= 1.0:
            raise PlanError(
                f"semi-join on {self.relation!r}: survivor fraction must be in "
                f"(0, 1], got {self.survivor_fraction}"
            )
        if self.key_bytes <= 0:
            raise PlanError(
                f"semi-join on {self.relation!r}: digest key width must be "
                f"positive, got {self.key_bytes}"
            )


@dataclass(frozen=True)
class Query:
    """A select-project-join query.

    Parameters
    ----------
    relations:
        Names of the base relations referenced.
    predicates:
        Join edges; relations without a connecting edge can only be combined
        by Cartesian product (the optimizer will avoid that when possible).
    selections:
        Optional per-relation selection selectivities in (0, 1]; a value of
        1.0 (or absence) means no selection operator is planned for that
        relation.
    result_tuple_bytes:
        Width of tuples in join results and the final result after
        projection (the paper projects everything to 100 bytes).
    udfs:
        Expensive named predicates (:class:`UdfPredicate`) whose evaluation
        site the optimizer places -- empty for plain SPJ queries.
    semi_joins:
        Semi-join reducers (:class:`SemiJoinReduction`) on base-relation
        pipelines; at most one per relation.
    aggregation:
        Optional :class:`Aggregation` over the final join result.
    """

    relations: tuple[str, ...]
    predicates: tuple[JoinPredicate, ...] = ()
    selections: dict[str, float] = field(default_factory=dict)
    result_tuple_bytes: int = 100
    udfs: tuple[UdfPredicate, ...] = ()
    semi_joins: tuple[SemiJoinReduction, ...] = ()
    aggregation: Aggregation | None = None

    def __post_init__(self) -> None:
        if not self.relations:
            raise PlanError("a query needs at least one relation")
        if len(set(self.relations)) != len(self.relations):
            duplicates = sorted(
                {name for name in self.relations if self.relations.count(name) > 1}
            )
            raise PlanError(
                "duplicate relation in query: "
                + ", ".join(repr(name) for name in duplicates)
            )
        known = set(self.relations)
        for predicate in self.predicates:
            if predicate.left not in known or predicate.right not in known:
                missing = sorted(
                    {predicate.left, predicate.right} - known
                )
                raise PlanError(
                    f"join predicate {predicate.left} = {predicate.right} "
                    "references " + ", ".join(repr(name) for name in missing)
                    + ", not a relation of this query"
                )
        for name, selectivity in self.selections.items():
            if name not in known:
                raise PlanError(
                    f"selection on unknown relation {name!r} "
                    f"(query relations: {sorted(known)})"
                )
            if not 0.0 < selectivity <= 1.0:
                raise PlanError(
                    f"selection selectivity for {name!r} must be in (0, 1], "
                    f"got {selectivity}"
                )
        if self.result_tuple_bytes <= 0:
            raise PlanError(
                f"result tuple width must be positive, got {self.result_tuple_bytes}"
            )
        for udf in self.udfs:
            if udf.relation not in known:
                raise PlanError(
                    f"UDF {udf.name!r} applies to unknown relation "
                    f"{udf.relation!r} (query relations: {sorted(known)})"
                )
        reduced = set()
        for semi in self.semi_joins:
            if semi.relation not in known:
                raise PlanError(
                    f"semi-join reducer on unknown relation {semi.relation!r} "
                    f"(query relations: {sorted(known)})"
                )
            if semi.digest_of not in known:
                raise PlanError(
                    f"semi-join on {semi.relation!r} takes a digest of unknown "
                    f"relation {semi.digest_of!r}"
                )
            if semi.relation in reduced:
                raise PlanError(
                    f"relation {semi.relation!r} has more than one semi-join reducer"
                )
            reduced.add(semi.relation)

    @property
    def num_joins(self) -> int:
        """Joins in any plan for this query (relations - 1)."""
        return len(self.relations) - 1

    def predicates_between(
        self, left_set: frozenset[str], right_set: frozenset[str]
    ) -> list[JoinPredicate]:
        """All join edges crossing between two disjoint relation sets."""
        return [p for p in self.predicates if p.connects(left_set, right_set)]

    def selection_on(self, relation: str) -> float | None:
        """Selection selectivity for ``relation`` or None if none planned."""
        selectivity = self.selections.get(relation)
        if selectivity is None or selectivity >= 1.0:
            return None
        return selectivity

    def udfs_on(self, relation: str) -> tuple[UdfPredicate, ...]:
        """UDF predicates applying to ``relation``, in declaration order."""
        return tuple(udf for udf in self.udfs if udf.relation == relation)

    def semi_join_on(self, relation: str) -> SemiJoinReduction | None:
        """The semi-join reducer planned on ``relation``'s pipeline, if any."""
        for semi in self.semi_joins:
            if semi.relation == relation:
                return semi
        return None

    def is_connected(self) -> bool:
        """True if the join graph connects all relations (no forced products)."""
        if len(self.relations) == 1:
            return True
        adjacency: dict[str, set[str]] = {r: set() for r in self.relations}
        for predicate in self.predicates:
            adjacency[predicate.left].add(predicate.right)
            adjacency[predicate.right].add(predicate.left)
        seen = {self.relations[0]}
        frontier = [self.relations[0]]
        while frontier:
            for neighbour in adjacency[frontier.pop()]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self.relations)

    def join_graph_edges(self) -> list[tuple[str, str]]:
        """Sorted edge list, useful for rendering and tests."""
        return sorted((min(p.left, p.right), max(p.left, p.right)) for p in self.predicates)

    def validate_unique_edges(self) -> None:
        """Raise if two predicates connect the same pair of relations."""
        for a, b in itertools.combinations(self.predicates, 2):
            if a.endpoints() == b.endpoints():
                raise PlanError(f"duplicate join edge between {sorted(a.endpoints())}")
