"""The three execution policies as annotation restrictions (Table 1).

============  ==================  ===============  ==========================
Operator      data-shipping       query-shipping   hybrid-shipping
============  ==================  ===============  ==========================
display       client              client           client
join          consumer            inner or outer   consumer, inner or outer
select        consumer            producer         consumer or producer
scan          client              primary copy     client or primary copy
udf-filter    client or producer  client or prod.  client or producer
semijoin      consumer            producer         consumer or producer
aggregate     consumer            producer         consumer or producer
============  ==================  ===============  ==========================

The last three rows extend the paper's Table 1 for the function-shipping
operators.  A UDF's placement is orthogonal to where the data lives --
shipping the *function* to the data is legal even under pure data
shipping, and shipping the data to the client-resident function is legal
even under pure query shipping -- so every policy offers both sites; this
is exactly the "to ship or not to (function) ship" choice.  Semi-join
reducers and aggregates follow the select row: data shipping evaluates at
the consumer, query shipping pushes down to the producer (partial
aggregates at servers), hybrid chooses.
"""

from __future__ import annotations

import enum

from repro.errors import PolicyViolationError
from repro.plans.annotations import Annotation
from repro.plans.operators import (
    AggregateOp,
    DisplayOp,
    JoinOp,
    PlanOp,
    ScanOp,
    SelectOp,
    SemiJoinOp,
    UdfFilterOp,
)

__all__ = ["Policy", "allowed_annotations", "check_policy"]


class Policy(enum.Enum):
    """The site-selection policy a plan must conform to."""

    DATA_SHIPPING = "data-shipping"
    QUERY_SHIPPING = "query-shipping"
    HYBRID_SHIPPING = "hybrid-shipping"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def short_name(self) -> str:
        return {"data-shipping": "DS", "query-shipping": "QS", "hybrid-shipping": "HY"}[
            self.value
        ]


_TABLE_1: dict[Policy, dict[str, frozenset[Annotation]]] = {
    Policy.DATA_SHIPPING: {
        "display": frozenset({Annotation.CLIENT}),
        "join": frozenset({Annotation.CONSUMER}),
        "select": frozenset({Annotation.CONSUMER}),
        "scan": frozenset({Annotation.CLIENT}),
        "udf-filter": frozenset({Annotation.CLIENT, Annotation.PRODUCER}),
        "semijoin": frozenset({Annotation.CONSUMER}),
        "aggregate": frozenset({Annotation.CONSUMER}),
    },
    Policy.QUERY_SHIPPING: {
        "display": frozenset({Annotation.CLIENT}),
        "join": frozenset({Annotation.INNER_RELATION, Annotation.OUTER_RELATION}),
        "select": frozenset({Annotation.PRODUCER}),
        "scan": frozenset({Annotation.PRIMARY_COPY}),
        "udf-filter": frozenset({Annotation.CLIENT, Annotation.PRODUCER}),
        "semijoin": frozenset({Annotation.PRODUCER}),
        "aggregate": frozenset({Annotation.PRODUCER}),
    },
    Policy.HYBRID_SHIPPING: {
        "display": frozenset({Annotation.CLIENT}),
        "join": frozenset(
            {Annotation.CONSUMER, Annotation.INNER_RELATION, Annotation.OUTER_RELATION}
        ),
        "select": frozenset({Annotation.CONSUMER, Annotation.PRODUCER}),
        "scan": frozenset({Annotation.CLIENT, Annotation.PRIMARY_COPY}),
        "udf-filter": frozenset({Annotation.CLIENT, Annotation.PRODUCER}),
        "semijoin": frozenset({Annotation.CONSUMER, Annotation.PRODUCER}),
        "aggregate": frozenset({Annotation.CONSUMER, Annotation.PRODUCER}),
    },
}

_OP_KINDS = {
    ScanOp: "scan",
    SelectOp: "select",
    JoinOp: "join",
    DisplayOp: "display",
    UdfFilterOp: "udf-filter",
    SemiJoinOp: "semijoin",
    AggregateOp: "aggregate",
}


def allowed_annotations(policy: Policy, op: "PlanOp | type | str") -> frozenset[Annotation]:
    """Annotations Table 1 allows for an operator under ``policy``.

    ``op`` may be an operator instance, an operator class, or the kind name
    (``"scan"``, ``"select"``, ``"join"``, ``"display"``).
    """
    if isinstance(op, str):
        kind = op
    elif isinstance(op, type):
        kind = _OP_KINDS.get(op, "")
    else:
        kind = op.kind
    table = _TABLE_1[policy]
    if kind not in table:
        raise PolicyViolationError(f"unknown operator kind {kind!r}")
    return table[kind]


def check_policy(plan: PlanOp, policy: Policy) -> None:
    """Raise :class:`PolicyViolationError` if any annotation is disallowed."""
    for op in plan.walk():
        allowed = allowed_annotations(policy, op)
        if op.annotation not in allowed:
            raise PolicyViolationError(
                f"{op.kind} annotated {op.annotation} violates {policy} "
                f"(allowed: {sorted(a.value for a in allowed)})"
            )
