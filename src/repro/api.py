"""High-level convenience API.

Wraps the full pipeline -- workload construction, randomized optimization,
and simulated execution -- behind a couple of calls, for users who want to
experiment with the policies without assembling the pieces by hand::

    from repro import api

    outcome = api.run_query(policy="hybrid", num_servers=2, num_relations=4)
    print(outcome.result.response_time, outcome.result.pages_sent)
    print(api.explain(outcome.plan, outcome.scenario))

    table = api.compare_policies(num_servers=2, cached_fraction=0.5)
    print(table)
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

from repro.caching.config import CacheConfig
from repro.config import BufferAllocation, MemoryConfig, OptimizerConfig, SystemConfig
from repro.costmodel.model import Objective, PlanCost
from repro.engine.executor import ExecutionResult
from repro.errors import ConfigurationError
from repro.faults.recovery import RecoveryPolicy
from repro.faults.schedule import FaultSchedule
from repro.obs import Tracer, write_chrome_trace
from repro.obs.telemetry import TelemetryConfig
from repro.optimizer.cache import PlanCache
from repro.optimizer.two_phase import RandomizedOptimizer
from repro.plans.binding import bind_plan
from repro.plans.logical import UDF_SITES
from repro.plans.operators import DisplayOp
from repro.plans.policies import Policy
from repro.plans.render import render_plan
from repro.sql.scenario import sql_scenario
from repro.workload import (
    AdmissionConfig,
    AdmissionPolicy,
    StreamConfig,
    WorkloadResult,
    WorkloadRunner,
)
from repro.workloads.scenarios import Scenario, chain_scenario

__all__ = [
    "QueryOutcome",
    "run_query",
    "run_sql",
    "run_workload",
    "compare_policies",
    "explain",
]

_POLICY_NAMES = {
    "data": Policy.DATA_SHIPPING,
    "data-shipping": Policy.DATA_SHIPPING,
    "ds": Policy.DATA_SHIPPING,
    "query": Policy.QUERY_SHIPPING,
    "query-shipping": Policy.QUERY_SHIPPING,
    "qs": Policy.QUERY_SHIPPING,
    "hybrid": Policy.HYBRID_SHIPPING,
    "hybrid-shipping": Policy.HYBRID_SHIPPING,
    "hy": Policy.HYBRID_SHIPPING,
}

_OBJECTIVE_NAMES = {
    "response-time": Objective.RESPONSE_TIME,
    "response_time": Objective.RESPONSE_TIME,
    "total-cost": Objective.TOTAL_COST,
    "total_cost": Objective.TOTAL_COST,
    "pages-sent": Objective.PAGES_SENT,
    "pages_sent": Objective.PAGES_SENT,
    "communication": Objective.PAGES_SENT,
}


def _parse_policy(policy: "str | Policy") -> Policy:
    if isinstance(policy, Policy):
        return policy
    try:
        return _POLICY_NAMES[policy.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {policy!r}; choose from {sorted(_POLICY_NAMES)}"
        ) from None


def _parse_objective(objective: "str | Objective") -> Objective:
    if isinstance(objective, Objective):
        return objective
    try:
        return _OBJECTIVE_NAMES[objective.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown objective {objective!r}; choose from {sorted(_OBJECTIVE_NAMES)}"
        ) from None


def _parse_memory(
    memory: "MemoryConfig | str | None", server_memory_pages: int | None = None
) -> SystemConfig | None:
    """A base config carrying the requested join-memory model, or None."""
    if memory is None and server_memory_pages is None:
        return None
    if isinstance(memory, str):
        memory = MemoryConfig(mode=memory)
    kwargs: dict = {}
    if memory is not None:
        kwargs["memory"] = memory
    if server_memory_pages is not None:
        kwargs["server_memory_pages"] = server_memory_pages
    return SystemConfig(**kwargs)


def _resolve_trace(trace: "bool | str | Tracer") -> tuple[Tracer | None, str | None]:
    """Normalize a ``trace=`` argument to (tracer, output path).

    ``True`` records a trace (returned on the outcome); a string records and
    additionally writes Chrome-trace JSON to that path; an existing
    :class:`~repro.obs.Tracer` is used as-is; falsy disables tracing.
    """
    if isinstance(trace, Tracer):
        return trace, None
    if isinstance(trace, str):
        return Tracer(), trace
    return (Tracer(), None) if trace else (None, None)


def _resolve_telemetry(
    telemetry: "bool | float | TelemetryConfig",
) -> TelemetryConfig | None:
    """Normalize a ``telemetry=`` argument to a config (or None = off).

    ``True`` samples at the default interval; a number samples at that
    interval (simulated seconds); a :class:`~repro.obs.TelemetryConfig`
    is used as-is; falsy disables sampling entirely (the default -- no
    sampler process is created, so untelemetered runs pay nothing).
    """
    if isinstance(telemetry, TelemetryConfig):
        return telemetry
    if telemetry is True:
        return TelemetryConfig()
    if telemetry:
        return TelemetryConfig(interval=float(telemetry))
    return None


@dataclass
class QueryOutcome:
    """Everything produced by one optimize-and-execute round trip."""

    scenario: Scenario
    policy: Policy
    plan: DisplayOp
    predicted: PlanCost
    result: ExecutionResult
    #: The span trace of the run, when ``run_query(..., trace=...)`` asked
    #: for one (export with :func:`repro.obs.chrome_trace_json` or
    #: :func:`repro.obs.render_timeline`).
    trace: Tracer | None = None


def run_query(
    policy: "str | Policy" = "hybrid",
    objective: "str | Objective" = "response-time",
    num_relations: int = 2,
    num_servers: int = 1,
    cached_fraction: float = 0.0,
    allocation: "str | BufferAllocation" = BufferAllocation.MINIMUM,
    selectivity: "str | float" = "moderate",
    server_load: float = 0.0,
    seed: int = 0,
    optimizer: OptimizerConfig | None = None,
    faults: FaultSchedule | None = None,
    recovery: RecoveryPolicy | None = None,
    trace: "bool | str | Tracer" = False,
    telemetry: "bool | float | TelemetryConfig" = False,
    plan_cache: PlanCache | None = None,
    memory: "MemoryConfig | str | None" = None,
    server_memory_pages: int | None = None,
) -> QueryOutcome:
    """Optimize and simulate one chain-join query end to end.

    ``faults`` injects a :class:`~repro.faults.FaultSchedule` (server
    crashes, network outages, slow disks, message drops) into the run;
    ``recovery`` tunes the client's retry/replan behaviour.  With faults the
    executor may re-optimize mid-run and the returned result carries the
    recovery metrics (``retries``, ``replans``, ``wasted_work_pages``,
    ``time_to_recover``); an unrecoverable run raises
    :class:`~repro.errors.SiteUnavailableError` (or another
    :class:`~repro.errors.TransientFaultError`).

    ``trace=True`` records per-operator spans of the run on the returned
    outcome's ``trace``; ``trace="path.json"`` additionally writes
    Perfetto-loadable Chrome-trace JSON to that path.  Traces are finished
    and written even when the run fails, so a fault that exhausts recovery
    still leaves an inspectable trace behind.

    ``telemetry=True`` attaches a gauge sampler that records per-site
    utilization/occupancy time series over the run on
    ``outcome.result.telemetry`` (a number samples at that interval in
    simulated seconds; a :class:`~repro.obs.TelemetryConfig` gives full
    control).  Sampling only reads gauges, so the simulated execution is
    bit-identical with or without it.  When both ``trace`` and
    ``telemetry`` are on, the exported Chrome trace carries the series as
    counter tracks.

    ``plan_cache`` memoizes the optimization (and any mid-run replans):
    pass one :class:`~repro.optimizer.PlanCache` across calls that share an
    environment and repeated queries are planned once.  Caching never
    changes the chosen plan -- a hit returns exactly what the optimizer
    would have recomputed.

    ``memory`` selects the join-memory model (see
    :class:`~repro.config.MemoryConfig`): ``None`` or ``"static"`` is the
    paper's plan-time allocation (a join that cannot get its full
    allocation is shed); ``"dynamic"`` runs joins against the per-site
    memory broker, which grants between each join's minimum and maximum,
    queues or reclaims under pressure, and degrades to spilling instead
    of shedding.  ``server_memory_pages`` overrides each server's pool
    size (the :class:`~repro.config.SystemConfig` default is 2048).
    """
    if isinstance(allocation, str):
        allocation = BufferAllocation(allocation)
    parsed_policy = _parse_policy(policy)
    parsed_objective = _parse_objective(objective)
    optimizer_config = optimizer or OptimizerConfig.fast()
    scenario = chain_scenario(
        num_relations=num_relations,
        num_servers=num_servers,
        allocation=allocation,
        cached_fraction=cached_fraction,
        placement_seed=seed,
        selectivity=selectivity,
        server_load=server_load,
        config=_parse_memory(memory, server_memory_pages),
    )
    optimization = RandomizedOptimizer(
        scenario.query,
        scenario.environment(),
        policy=parsed_policy,
        objective=parsed_objective,
        config=optimizer_config,
        seed=seed,
        plan_cache=plan_cache,
    ).optimize()
    tracer, trace_path = _resolve_trace(trace)
    result = None
    try:
        result = scenario.execute(
            optimization.plan,
            seed=seed,
            faults=faults,
            recovery=recovery,
            policy=parsed_policy,
            objective=parsed_objective,
            optimizer_config=optimizer_config,
            tracer=tracer,
            plan_cache=plan_cache,
            telemetry=_resolve_telemetry(telemetry),
        )
    finally:
        # The success path finishes the trace inside the executor; this
        # covers aborted runs so the spans recorded so far are still
        # closed and exported.
        if tracer is not None:
            tracer.finish()
            tracer.metadata.setdefault("policy", parsed_policy.value)
            tracer.metadata.setdefault("seed", seed)
            if trace_path is not None:
                write_chrome_trace(
                    tracer,
                    trace_path,
                    telemetry=result.telemetry if result is not None else None,
                )
    return QueryOutcome(
        scenario, parsed_policy, optimization.plan, optimization.cost, result, trace=tracer
    )


def run_sql(
    sql: str,
    policy: "str | Policy" = "hybrid",
    objective: "str | Objective" = "response-time",
    num_servers: int = 1,
    cached_fraction: float = 0.0,
    server_load: float = 0.0,
    seed: int = 0,
    tables: "dict[str, int] | None" = None,
    udf_site: "str | None" = None,
    optimizer: OptimizerConfig | None = None,
    plan_cache: PlanCache | None = None,
    trace: "bool | str | Tracer" = False,
    telemetry: "bool | float | TelemetryConfig" = False,
) -> QueryOutcome:
    """Parse, plan, optimize, and simulate one SQL statement end to end.

    The statement goes through the SQL frontend (:mod:`repro.sql`): tables
    it references are synthesized into a catalog (10,000 tuples of 100
    bytes each unless ``tables`` overrides a cardinality), placed randomly
    over ``num_servers`` servers, and the lowered query is optimized under
    ``policy`` and simulated -- the same pipeline as :func:`run_query`,
    with a SQL statement instead of a generated chain join::

        outcome = api.run_sql(
            "SELECT R0.k, COUNT(*) FROM R0, R1 "
            "WHERE R0.k = R1.k AND slow(R0) COST 20000 GROUP BY R0.k",
            policy="query", num_servers=2,
        )

    ``udf_site`` overrides the evaluation-site declaration of *every* UDF
    in the statement (``"client"``, ``"server"``, or ``"auto"``) -- the
    knob the function-shipping experiment sweeps to compare forced
    placements against the optimizer's choice.  ``trace``, ``telemetry``,
    and ``plan_cache`` work as in :func:`run_query`.

    Raises :class:`~repro.errors.SqlError` (with the offending line and
    column) for text the frontend rejects.
    """
    parsed_policy = _parse_policy(policy)
    parsed_objective = _parse_objective(objective)
    optimizer_config = optimizer or OptimizerConfig.fast()
    scenario = sql_scenario(
        sql,
        num_servers=num_servers,
        cached_fraction=cached_fraction,
        placement_seed=seed,
        server_load=server_load,
        tables=tables,
    )
    if udf_site is not None:
        if udf_site not in UDF_SITES:
            raise ConfigurationError(
                f"unknown udf_site {udf_site!r}; choose from {list(UDF_SITES)}"
            )
        scenario.query = _dc_replace(
            scenario.query,
            udfs=tuple(
                _dc_replace(udf, site=udf_site) for udf in scenario.query.udfs
            ),
        )
    optimization = RandomizedOptimizer(
        scenario.query,
        scenario.environment(),
        policy=parsed_policy,
        objective=parsed_objective,
        config=optimizer_config,
        seed=seed,
        plan_cache=plan_cache,
    ).optimize()
    tracer, trace_path = _resolve_trace(trace)
    result = None
    try:
        result = scenario.execute(
            optimization.plan,
            seed=seed,
            policy=parsed_policy,
            objective=parsed_objective,
            optimizer_config=optimizer_config,
            tracer=tracer,
            plan_cache=plan_cache,
            telemetry=_resolve_telemetry(telemetry),
        )
    finally:
        if tracer is not None:
            tracer.finish()
            tracer.metadata.setdefault("policy", parsed_policy.value)
            tracer.metadata.setdefault("seed", seed)
            if trace_path is not None:
                write_chrome_trace(
                    tracer,
                    trace_path,
                    telemetry=result.telemetry if result is not None else None,
                )
    return QueryOutcome(
        scenario, parsed_policy, optimization.plan, optimization.cost, result, trace=tracer
    )


def run_workload(
    policy: "str | Policy" = "hybrid",
    objective: "str | Objective" = "response-time",
    num_clients: int = 4,
    arrival: str = "closed",
    rate: float = 1.0,
    think_time: float = 0.0,
    queries_per_client: int = 4,
    num_relations: int = 2,
    num_servers: int = 1,
    cached_fraction: float = 0.0,
    allocation: "str | BufferAllocation" = BufferAllocation.MINIMUM,
    selectivity: "str | float" = "moderate",
    server_load: float = 0.0,
    admission: "str | AdmissionConfig | None" = "wait",
    max_concurrent: int = 4,
    queue_limit: int = 16,
    client_caches: "dict[int, dict[str, float]] | None" = None,
    seed: int = 0,
    optimizer: OptimizerConfig | None = None,
    faults: FaultSchedule | None = None,
    recovery: RecoveryPolicy | None = None,
    trace: "bool | str | Tracer" = False,
    telemetry: "bool | float | TelemetryConfig" = False,
    plan_cache: PlanCache | None = None,
    cache: "CacheConfig | str | None" = None,
    memory: "MemoryConfig | str | None" = None,
    server_memory_pages: int | None = None,
    write_fraction: float = 0.0,
    write_pages: int = 1,
    consistency: str = "invalidation",
    replication_factor: int = 1,
) -> WorkloadResult:
    """Run a multi-client concurrent workload; returns throughput metrics.

    ``num_clients`` client sites share one simulated system and submit the
    same chain-join query concurrently.  ``arrival`` selects the stream
    discipline: ``"open"`` (Poisson arrivals of ``rate`` queries/sec per
    client) or ``"closed"`` (one query in flight per client, exponential
    ``think_time`` between queries).  ``admission`` is ``"wait"`` (queue up
    to ``queue_limit`` queries per server, shed beyond), ``"shed"`` (reject
    immediately at ``max_concurrent``), ``"off"``/``None`` (no admission
    control), or a full :class:`~repro.workload.AdmissionConfig`.
    ``client_caches`` optionally gives individual clients their own cached
    fractions (``{ordinal: {relation: fraction}}``).

    The returned :class:`~repro.workload.WorkloadResult` has throughput
    (completed queries per second of simulated time), mean/p50/p95/p99
    response times, shed/failed counts, per-server admission statistics,
    per-resource utilizations, and a ``profile`` snapshot of every hardware
    metric.  ``trace`` works as in :func:`run_query` (pass a
    :class:`~repro.obs.Tracer` to keep a reference to the recorded spans).
    ``telemetry`` works as in :func:`run_query`; the sampled series (which
    under a workload additionally cover per-server admission queue depth
    and running-query occupancy) land on the result's ``telemetry`` field.
    ``plan_cache`` works as in :func:`run_query`: clients sharing a cache
    view plan their query class once, and the same cache can be reused
    across workload runs over the same environment.

    ``cache`` selects the client caching model (see
    :class:`~repro.workload.WorkloadRunner`): ``None`` or ``"dynamic"``
    runs the demand-paging buffer cache, where ``cached_fraction`` seeds
    the initial resident set and client scans admit faulted-in pages so
    streams warm up; ``"static"`` is the paper's immutable-prefix model
    used by the figure reproductions.  A full
    :class:`~repro.caching.CacheConfig` picks the replacement policy and
    capacity.

    ``memory`` works as in :func:`run_query`: ``"dynamic"`` replaces the
    paper's plan-time join allocation with the per-site memory broker, so
    concurrent joins share each server's pool by queueing, partial grants,
    and reclaim-driven spilling instead of shedding.

    ``write_fraction`` turns that fraction of each client's submission
    slots into write statements (UPDATE/INSERT/DELETE of ``write_pages``
    pages against a random relation), applied with primary-copy
    write-through; ``consistency`` picks how client caches stay correct
    (``"invalidation"`` callbacks or ``"detection"`` on access).
    ``replication_factor`` stores every relation on that many servers;
    reads pick a copy at plan time and writes propagate to all of them.
    The defaults (0.0, ``"invalidation"``, 1) reproduce the read-only
    engine event for event.
    """
    if isinstance(allocation, str):
        allocation = BufferAllocation(allocation)
    parsed_policy = _parse_policy(policy)
    parsed_objective = _parse_objective(objective)
    if isinstance(admission, str):
        if admission.lower() in ("off", "none"):
            admission = None
        else:
            admission = AdmissionConfig(
                max_concurrent=max_concurrent,
                queue_limit=queue_limit,
                policy=AdmissionPolicy(admission.lower()),
            )
    scenario = chain_scenario(
        num_relations=num_relations,
        num_servers=num_servers,
        allocation=allocation,
        cached_fraction=cached_fraction,
        placement_seed=seed,
        selectivity=selectivity,
        server_load=server_load,
        config=_parse_memory(memory, server_memory_pages),
        replication_factor=replication_factor,
    )
    tracer, trace_path = _resolve_trace(trace)
    result = None
    try:
        result = WorkloadRunner(
            scenario,
            parsed_policy,
            num_clients=num_clients,
            stream=StreamConfig(
                arrival=arrival,
                rate=rate,
                think_time=think_time,
                queries_per_client=queries_per_client,
                write_fraction=write_fraction,
                write_pages=write_pages,
            ),
            admission=admission,
            seed=seed,
            objective=parsed_objective,
            optimizer_config=optimizer or OptimizerConfig.fast(),
            faults=faults,
            recovery=recovery,
            client_caches=client_caches,
            tracer=tracer,
            plan_cache=plan_cache,
            cache=cache,
            consistency=consistency,
            telemetry=_resolve_telemetry(telemetry),
        ).run()
    finally:
        if tracer is not None:
            tracer.finish()
            if trace_path is not None:
                write_chrome_trace(
                    tracer,
                    trace_path,
                    telemetry=result.telemetry if result is not None else None,
                )
    return result


def compare_policies(
    objective: "str | Objective" = "response-time",
    seed: int = 0,
    **scenario_kwargs,
) -> str:
    """Run all three policies on the same scenario; return a text table."""
    lines = [
        f"{'policy':18s}{'response time [s]':>20s}{'pages sent':>14s}{'messages':>12s}"
    ]
    for policy in (Policy.DATA_SHIPPING, Policy.QUERY_SHIPPING, Policy.HYBRID_SHIPPING):
        outcome = run_query(policy=policy, objective=objective, seed=seed, **scenario_kwargs)
        r = outcome.result
        lines.append(
            f"{policy.value:18s}{r.response_time:>20.3f}{r.pages_sent:>14d}"
            f"{r.control_messages:>12d}"
        )
    return "\n".join(lines)


def explain(plan: DisplayOp, scenario: Scenario) -> str:
    """Render a plan with its runtime site bindings (like Figure 1)."""
    return render_plan(bind_plan(plan, scenario.catalog))
