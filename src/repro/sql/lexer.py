"""Hand-rolled SQL lexer with line/column tracking.

Every token carries its 1-based source position, and every
:class:`~repro.errors.SqlError` raised downstream points back to one --
so a typo in a 5-line statement is reported as ``line 3, column 17``
rather than "syntax error".
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.errors import SqlError

__all__ = ["KEYWORDS", "Token", "tokenize"]

#: Reserved words, recognized case-insensitively and normalized to upper
#: case.  COST / SELECTIVITY / AT / SEMIJOIN are this dialect's extensions
#: for declaring UDF and predicate statistics inline.
KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "AND",
        "AS",
        "COUNT",
        "SUM",
        "MIN",
        "MAX",
        "AVG",
        "COST",
        "SELECTIVITY",
        "SEMIJOIN",
        "AT",
        "CLIENT",
        "SERVER",
    }
)

#: Two-character operators first so ``<=`` never lexes as ``<`` ``=``.
_TWO_CHAR = ("<=", ">=", "<>", "!=")
_ONE_CHAR = frozenset("(),.*=<>")


@dataclass(frozen=True)
class Token:
    """One lexical token: kind, source text, and 1-based position."""

    kind: str  # 'keyword', 'ident', 'number', 'string', 'symbol', 'eof'
    text: str
    line: int
    column: int

    def matches(self, kind: str, text: str | None = None) -> bool:
        return self.kind == kind and (text is None or self.text == text)


def tokenize(sql: str) -> list[Token]:
    """Split ``sql`` into tokens; raise :class:`SqlError` on bad input."""
    tokens: list[Token] = []
    line, column = 1, 1
    index, length = 0, len(sql)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if sql[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = sql[index]
        if char in " \t\r\n":
            advance(1)
            continue
        if sql.startswith("--", index):  # line comment
            while index < length and sql[index] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        if char.isdigit() or (
            char == "." and index + 1 < length and sql[index + 1].isdigit()
        ):
            end = index
            seen_dot = seen_exp = False
            while end < length:
                c = sql[end]
                if c.isdigit():
                    end += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    end += 1
                elif c in "eE" and not seen_exp and end > index:
                    seen_exp = True
                    end += 1
                    if end < length and sql[end] in "+-":
                        end += 1
                else:
                    break
            text = sql[index:end]
            try:
                float(text)
            except ValueError:
                raise SqlError(f"malformed number {text!r}", start_line, start_column)
            tokens.append(Token("number", text, start_line, start_column))
            advance(end - index)
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            text = sql[index:end]
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, start_line, start_column))
            else:
                tokens.append(Token("ident", text, start_line, start_column))
            advance(end - index)
            continue
        if char == "'":
            end = index + 1
            while end < length and sql[end] != "'":
                end += 1
            if end >= length:
                raise SqlError("unterminated string literal", start_line, start_column)
            tokens.append(Token("string", sql[index + 1 : end], start_line, start_column))
            advance(end + 1 - index)
            continue
        two = sql[index : index + 2]
        if two in _TWO_CHAR:
            tokens.append(Token("symbol", two, start_line, start_column))
            advance(2)
            continue
        if char in _ONE_CHAR:
            tokens.append(Token("symbol", char, start_line, start_column))
            advance(1)
            continue
        raise SqlError(f"unexpected character {char!r}", start_line, start_column)

    tokens.append(Token("eof", "", line, column))
    return tokens


def token_stream(sql: str) -> typing.Iterator[Token]:  # pragma: no cover - convenience
    yield from tokenize(sql)
