"""Build a runnable :class:`Scenario` straight from SQL text.

:func:`sql_scenario` is the glue between the frontend and the simulator:
it synthesizes a catalog for the tables the statement references (every
table defaults to the paper's benchmark shape, 10,000 tuples of 100
bytes), places them over the requested servers, lowers the statement into
a :class:`~repro.plans.logical.Query`, and wraps everything in the same
:class:`~repro.workloads.scenarios.Scenario` the chain-join experiments
use -- so SQL queries run through the identical optimize/bind/simulate
pipeline.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.catalog.catalog import Catalog
from repro.catalog.placement import random_placement
from repro.catalog.schema import Relation
from repro.config import BufferAllocation, SystemConfig
from repro.sql.nodes import SelectStatement
from repro.sql.parser import parse_sql
from repro.sql.planner import plan_statement
from repro.workloads.scenarios import Scenario

__all__ = ["sql_scenario"]

#: Default table shape when ``tables`` does not override it (section 3.3
#: of the paper: 10,000 tuples of 100 bytes).
DEFAULT_TABLE_TUPLES = 10_000
DEFAULT_TUPLE_BYTES = 100


def sql_scenario(
    sql: "str | SelectStatement",
    num_servers: int = 1,
    cached_fraction: float = 0.0,
    placement_seed: int = 0,
    server_load: float = 0.0,
    config: SystemConfig | None = None,
    tables: dict[str, int] | None = None,
    allocation: BufferAllocation = BufferAllocation.MAXIMUM,
) -> Scenario:
    """Turn SQL text (or a parsed statement) into a runnable scenario.

    ``tables`` overrides per-table cardinalities by name; unlisted tables
    get the benchmark default of 10,000 tuples.  ``cached_fraction``
    caches that fraction of every table at the client, ``server_load``
    adds the external disk load at every server, and ``placement_seed``
    drives the random assignment of tables to servers -- the same knobs
    :func:`~repro.workloads.scenarios.chain_scenario` exposes.

    Unlike the chain experiments (which study the minimum-allocation
    regime on purpose), SQL scenarios default to ``MAXIMUM`` buffer
    allocation so server-side joins do not spill -- placement choices then
    reflect the shipping/CPU tradeoff rather than buffer starvation.
    Pass ``allocation=BufferAllocation.MINIMUM`` to study that regime.
    """
    statement = parse_sql(sql) if isinstance(sql, str) else sql
    base = config or SystemConfig()
    system = replace(base, num_servers=num_servers, buffer_allocation=allocation)
    sizes = tables or {}
    relations = [
        Relation(name, sizes.get(name, DEFAULT_TABLE_TUPLES), DEFAULT_TUPLE_BYTES)
        for name in statement.table_names()
    ]
    names = [r.name for r in relations]
    placement = random_placement(names, num_servers, random.Random(placement_seed))
    cache = {name: cached_fraction for name in names} if cached_fraction > 0.0 else {}
    catalog = Catalog(relations, placement, cache)
    query = plan_statement(statement, catalog)
    loads = {s: server_load for s in range(1, num_servers + 1)} if server_load else {}
    description = (
        f"SQL over {len(names)} table(s), {num_servers} server(s)"
        + (f", {cached_fraction:.0%} cached" if cached_fraction else "")
    )
    return Scenario(system, catalog, query, loads, description)
