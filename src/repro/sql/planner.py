"""Lower a parsed :class:`SelectStatement` into a logical :class:`Query`.

The planner is the name-resolution layer: it checks every table against
the catalog, resolves column qualifiers, fills in the statistics the text
did not declare, and emits the immutable :class:`~repro.plans.logical.Query`
the optimizer already understands.  Defaults when the statement declares
nothing:

- join selectivity ``1 / max(|L|, |R|)`` (the paper's *moderate* setting:
  joining two equal relations returns one relation's cardinality);
- selection selectivity 0.1 per predicate (multiplied when a relation has
  several);
- UDF per-tuple cost 10,000 instructions, selectivity 0.5;
- ``SEMIJOIN`` on a join edge plants a reducer on each side whose
  participation ``min(1, selectivity * |other|)`` is below 1 -- i.e. only
  where the digest would actually drop tuples.

Resolution failures raise :class:`~repro.errors.SqlError` with the source
position of the offending name.
"""

from __future__ import annotations

import math
import typing

from repro.errors import SqlError
from repro.plans.logical import (
    Aggregation,
    JoinPredicate,
    Query,
    SemiJoinReduction,
    UdfPredicate,
)
from repro.sql.nodes import ColumnRef, SelectStatement

if typing.TYPE_CHECKING:
    from repro.catalog.catalog import Catalog

__all__ = ["plan_statement"]

#: Statistics assumed when the statement does not declare them.
DEFAULT_SELECTION_SELECTIVITY = 0.1
DEFAULT_UDF_COST = 10_000.0
DEFAULT_UDF_SELECTIVITY = 0.5


def _resolve(ref: ColumnRef, tables: tuple[str, ...]) -> str:
    """Return the relation a column reference belongs to."""
    if ref.relation is not None:
        if ref.relation not in tables:
            raise SqlError(
                f"column {ref} references {ref.relation!r}, which is not in the "
                f"FROM list {list(tables)}",
                ref.line,
                ref.col,
            )
        return ref.relation
    if len(tables) == 1:
        return tables[0]
    raise SqlError(
        f"unqualified column {ref.column!r} is ambiguous with "
        f"{len(tables)} tables in FROM; qualify it as Table.{ref.column}",
        ref.line,
        ref.col,
    )


def plan_statement(statement: SelectStatement, catalog: "Catalog") -> Query:
    """Resolve ``statement`` against ``catalog`` and return a :class:`Query`."""
    tables = statement.table_names()
    seen: set[str] = set()
    for table in statement.tables:
        if table.name in seen:
            raise SqlError(
                f"table {table.name!r} appears twice in FROM", table.line, table.col
            )
        seen.add(table.name)
        if table.name not in catalog.relation_names:
            raise SqlError(
                f"unknown table {table.name!r} (catalog has "
                f"{catalog.relation_names})",
                table.line,
                table.col,
            )

    cardinality = {name: catalog.relation(name).tuples for name in tables}

    # Resolve select-list and aggregate-argument columns (shape checking
    # only -- the simulator carries widths, not column values).
    for ref in statement.columns:
        _resolve(ref, tables)
    for item in statement.aggregates:
        if item.argument is not None:
            _resolve(item.argument, tables)

    predicates: list[JoinPredicate] = []
    semi_joins: dict[str, SemiJoinReduction] = {}
    for join in statement.joins:
        left = _resolve(join.left, tables)
        right = _resolve(join.right, tables)
        if left == right:
            raise SqlError(
                f"join {join.left} = {join.right} relates {left!r} to itself; "
                "self-joins are not supported",
                join.line,
                join.col,
            )
        selectivity = join.selectivity
        if selectivity is None:
            selectivity = 1.0 / max(cardinality[left], cardinality[right])
        predicates.append(JoinPredicate(left, right, selectivity))
        if join.semijoin:
            for reduced, other in ((left, right), (right, left)):
                survivors = min(1.0, selectivity * cardinality[other])
                if survivors >= 1.0 or reduced in semi_joins:
                    continue
                semi_joins[reduced] = SemiJoinReduction(
                    relation=reduced,
                    digest_of=other,
                    survivor_fraction=survivors,
                )

    selections: dict[str, float] = {}
    for selection in statement.selections:
        relation = _resolve(selection.column, tables)
        declared = selection.selectivity
        if declared is None:
            declared = DEFAULT_SELECTION_SELECTIVITY
        selections[relation] = selections.get(relation, 1.0) * declared

    udfs: list[UdfPredicate] = []
    for udf in statement.udfs:
        if udf.relation not in seen:
            raise SqlError(
                f"UDF {udf.name}({udf.relation}) applies to {udf.relation!r}, "
                f"which is not in the FROM list {list(tables)}",
                udf.line,
                udf.col,
            )
        udfs.append(
            UdfPredicate(
                name=udf.name,
                relation=udf.relation,
                per_tuple_instructions=(
                    DEFAULT_UDF_COST if udf.cost is None else udf.cost
                ),
                selectivity=(
                    DEFAULT_UDF_SELECTIVITY
                    if udf.selectivity is None
                    else udf.selectivity
                ),
                site=udf.site,
            )
        )

    aggregation = None
    if statement.has_aggregation:
        group_by: list[str] = []
        groups = 1.0
        for ref in statement.group_by:
            relation = _resolve(ref, tables)
            group_by.append(f"{relation}.{ref.column}")
            # Distinct-value estimate without column statistics: sqrt of the
            # relation's cardinality per grouping column.
            groups *= math.sqrt(cardinality[relation])
        aggregation = Aggregation(
            group_by=tuple(group_by),
            aggregates=tuple(str(item) for item in statement.aggregates),
            groups=max(1.0, groups),
        )

    return Query(
        relations=tables,
        predicates=tuple(predicates),
        selections=selections,
        udfs=tuple(udfs),
        semi_joins=tuple(semi_joins[name] for name in tables if name in semi_joins),
        aggregation=aggregation,
    )
