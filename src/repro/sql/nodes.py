"""AST node types produced by the SQL parser.

Plain frozen dataclasses: the parser resolves nothing (no catalog access),
so every name keeps its source position for the planner's error messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "AggregateItem",
    "ColumnRef",
    "JoinCondition",
    "SelectStatement",
    "SelectionCondition",
    "TableRef",
    "UdfCondition",
]


@dataclass(frozen=True)
class ColumnRef:
    """``relation.column`` or a bare ``column`` (resolved by the planner)."""

    relation: str | None
    column: str
    line: int = 0
    col: int = 0

    def __str__(self) -> str:
        return f"{self.relation}.{self.column}" if self.relation else self.column


@dataclass(frozen=True)
class TableRef:
    """One FROM-list entry."""

    name: str
    line: int = 0
    col: int = 0


@dataclass(frozen=True)
class AggregateItem:
    """``COUNT(*)``, ``SUM(R.x)``, ... in the select list."""

    func: str  # COUNT / SUM / MIN / MAX / AVG, upper-cased
    argument: ColumnRef | None  # None means '*'
    line: int = 0
    col: int = 0

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class JoinCondition:
    """``L.a = R.b [SELECTIVITY s] [SEMIJOIN]``."""

    left: ColumnRef
    right: ColumnRef
    selectivity: float | None = None
    semijoin: bool = False
    line: int = 0
    col: int = 0


@dataclass(frozen=True)
class SelectionCondition:
    """``R.a <op> literal [SELECTIVITY s]``."""

    column: ColumnRef
    operator: str
    literal: str
    selectivity: float | None = None
    line: int = 0
    col: int = 0


@dataclass(frozen=True)
class UdfCondition:
    """``name(R) [COST c] [SELECTIVITY s] [AT CLIENT|SERVER]``."""

    name: str
    relation: str
    cost: float | None = None
    selectivity: float | None = None
    site: str = "auto"
    line: int = 0
    col: int = 0


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT: shapes only, nothing resolved."""

    columns: tuple[ColumnRef, ...] = ()
    aggregates: tuple[AggregateItem, ...] = ()
    star: bool = False
    tables: tuple[TableRef, ...] = ()
    joins: tuple[JoinCondition, ...] = ()
    selections: tuple[SelectionCondition, ...] = ()
    udfs: tuple[UdfCondition, ...] = ()
    group_by: tuple[ColumnRef, ...] = field(default_factory=tuple)

    @property
    def has_aggregation(self) -> bool:
        return bool(self.aggregates) or bool(self.group_by)

    def table_names(self) -> tuple[str, ...]:
        return tuple(table.name for table in self.tables)
