"""SQL frontend: lexer, parser, and logical planner.

Turns ``SELECT ... FROM ... WHERE ... GROUP BY`` text into the package's
:class:`~repro.plans.logical.Query` -- select-project-join with equi-joins,
hash aggregation, optional semi-join reduction, and named UDF predicates
with declared per-tuple cost, selectivity, and (optionally pinned)
evaluation site.  See :mod:`repro.sql.parser` for the accepted grammar.

The pieces compose::

    statement = parse_sql('SELECT COUNT(*) FROM R0, R1 WHERE R0.k = R1.k')
    scenario  = sql_scenario(statement, num_servers=2)   # catalog + query
    query     = scenario.query                            # lowered Query

or in one step through :func:`repro.api.run_sql`.
"""

from repro.sql.nodes import (
    AggregateItem,
    ColumnRef,
    JoinCondition,
    SelectStatement,
    SelectionCondition,
    UdfCondition,
)
from repro.sql.parser import parse_sql
from repro.sql.planner import plan_statement
from repro.sql.scenario import sql_scenario

__all__ = [
    "AggregateItem",
    "ColumnRef",
    "JoinCondition",
    "SelectStatement",
    "SelectionCondition",
    "UdfCondition",
    "parse_sql",
    "plan_statement",
    "sql_scenario",
]
