"""Recursive-descent parser for the experiment dialect.

Accepted grammar (keywords case-insensitive, ``--`` line comments)::

    statement   := SELECT select_list FROM table {, table}
                   [WHERE condition {AND condition}]
                   [GROUP BY column {, column}]
    select_list := '*' | item {, item}
    item        := column | aggregate
    aggregate   := (COUNT|SUM|MIN|MAX|AVG) '(' ('*' | column) ')'
    column      := IDENT ['.' IDENT]
    condition   := join | selection | udf
    join        := column '=' column [SELECTIVITY number] [SEMIJOIN]
    selection   := column op literal [SELECTIVITY number]
    op          := '=' | '<' | '<=' | '>' | '>=' | '<>' | '!='
    udf         := IDENT '(' IDENT ')' [COST number] [SELECTIVITY number]
                   [AT (CLIENT|SERVER)]

``SELECTIVITY`` declares a predicate's selectivity inline (the synthetic
catalog has no value distributions to derive one from); ``COST`` declares a
UDF's per-tuple CPU instructions; ``AT CLIENT`` / ``AT SERVER`` pins a
UDF's evaluation site, otherwise the optimizer chooses it; ``SEMIJOIN`` on
a join asks the planner for semi-join reducers on that edge.  A condition
comparing two columns is a join; comparing a column to a literal is a
selection; ``name(Table)`` is a UDF predicate.

Every error is a :class:`~repro.errors.SqlError` carrying the 1-based
line/column of the offending token.
"""

from __future__ import annotations

from repro.errors import SqlError
from repro.sql.lexer import Token, tokenize
from repro.sql.nodes import (
    AggregateItem,
    ColumnRef,
    JoinCondition,
    SelectStatement,
    SelectionCondition,
    TableRef,
    UdfCondition,
)

__all__ = ["parse_sql"]

_AGG_FUNCS = frozenset({"COUNT", "SUM", "MIN", "MAX", "AVG"})
_COMPARISONS = frozenset({"=", "<", "<=", ">", ">=", "<>", "!="})


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token plumbing -------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.index += 1
        return token

    def error(self, message: str, token: Token | None = None) -> SqlError:
        token = token or self.current
        where = f"near {token.text!r}" if token.text else "at end of input"
        return SqlError(f"{message} {where}", token.line, token.column)

    def expect_keyword(self, word: str) -> Token:
        if not self.current.matches("keyword", word):
            raise self.error(f"expected {word}")
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        if not self.current.matches("symbol", symbol):
            raise self.error(f"expected {symbol!r}")
        return self.advance()

    def expect_ident(self, what: str) -> Token:
        if self.current.kind != "ident":
            raise self.error(f"expected {what}")
        return self.advance()

    def accept_symbol(self, symbol: str) -> bool:
        if self.current.matches("symbol", symbol):
            self.advance()
            return True
        return False

    def accept_keyword(self, word: str) -> bool:
        if self.current.matches("keyword", word):
            self.advance()
            return True
        return False

    def number(self, what: str) -> float:
        if self.current.kind != "number":
            raise self.error(f"expected a number for {what}")
        return float(self.advance().text)

    # -- grammar --------------------------------------------------------
    def statement(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        columns: list[ColumnRef] = []
        aggregates: list[AggregateItem] = []
        star = False
        if self.accept_symbol("*"):
            star = True
        else:
            while True:
                self.select_item(columns, aggregates)
                if not self.accept_symbol(","):
                    break
        self.expect_keyword("FROM")
        tables = [self.table()]
        while self.accept_symbol(","):
            tables.append(self.table())
        joins: list[JoinCondition] = []
        selections: list[SelectionCondition] = []
        udfs: list[UdfCondition] = []
        if self.accept_keyword("WHERE"):
            while True:
                self.condition(joins, selections, udfs)
                if not self.accept_keyword("AND"):
                    break
        group_by: list[ColumnRef] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.column("a grouping column"))
            while self.accept_symbol(","):
                group_by.append(self.column("a grouping column"))
        if self.current.kind != "eof":
            raise self.error("unexpected trailing input")
        return SelectStatement(
            columns=tuple(columns),
            aggregates=tuple(aggregates),
            star=star,
            tables=tuple(tables),
            joins=tuple(joins),
            selections=tuple(selections),
            udfs=tuple(udfs),
            group_by=tuple(group_by),
        )

    def select_item(
        self, columns: list[ColumnRef], aggregates: list[AggregateItem]
    ) -> None:
        token = self.current
        if token.kind == "keyword" and token.text in _AGG_FUNCS:
            self.advance()
            self.expect_symbol("(")
            argument: ColumnRef | None = None
            if not self.accept_symbol("*"):
                argument = self.column("an aggregate argument")
            self.expect_symbol(")")
            aggregates.append(
                AggregateItem(token.text, argument, token.line, token.column)
            )
            return
        columns.append(self.column("a select-list column"))

    def table(self) -> TableRef:
        token = self.expect_ident("a table name")
        return TableRef(token.text, token.line, token.column)

    def column(self, what: str) -> ColumnRef:
        first = self.expect_ident(what)
        if self.accept_symbol("."):
            second = self.expect_ident("a column name")
            return ColumnRef(first.text, second.text, first.line, first.column)
        return ColumnRef(None, first.text, first.line, first.column)

    def condition(
        self,
        joins: list[JoinCondition],
        selections: list[SelectionCondition],
        udfs: list[UdfCondition],
    ) -> None:
        start = self.current
        if start.kind != "ident":
            raise self.error("expected a predicate")
        # UDF call: IDENT '(' IDENT ')'.
        if self.tokens[self.index + 1].matches("symbol", "("):
            self.advance()
            self.expect_symbol("(")
            relation = self.expect_ident("the UDF's input relation")
            self.expect_symbol(")")
            cost = selectivity = None
            site = "auto"
            while True:
                if self.accept_keyword("COST"):
                    cost = self.number("COST")
                elif self.accept_keyword("SELECTIVITY"):
                    selectivity = self.number("SELECTIVITY")
                elif self.accept_keyword("AT"):
                    if self.accept_keyword("CLIENT"):
                        site = "client"
                    elif self.accept_keyword("SERVER"):
                        site = "server"
                    else:
                        raise self.error("expected CLIENT or SERVER after AT")
                else:
                    break
            udfs.append(
                UdfCondition(
                    start.text,
                    relation.text,
                    cost,
                    selectivity,
                    site,
                    start.line,
                    start.column,
                )
            )
            return
        left = self.column("a predicate column")
        op_token = self.current
        if not (op_token.kind == "symbol" and op_token.text in _COMPARISONS):
            raise self.error("expected a comparison operator")
        self.advance()
        if self.current.kind == "ident":
            right = self.column("the join's right-hand column")
            if op_token.text != "=":
                raise SqlError(
                    f"only equi-joins are supported, got {op_token.text!r}",
                    op_token.line,
                    op_token.column,
                )
            selectivity = None
            semijoin = False
            while True:
                if self.accept_keyword("SELECTIVITY"):
                    selectivity = self.number("SELECTIVITY")
                elif self.accept_keyword("SEMIJOIN"):
                    semijoin = True
                else:
                    break
            joins.append(
                JoinCondition(left, right, selectivity, semijoin, start.line, start.column)
            )
            return
        if self.current.kind not in ("number", "string"):
            raise self.error("expected a literal or column after the comparison")
        literal = self.advance().text
        selectivity = None
        if self.accept_keyword("SELECTIVITY"):
            selectivity = self.number("SELECTIVITY")
        selections.append(
            SelectionCondition(
                left, op_token.text, literal, selectivity, start.line, start.column
            )
        )


def parse_sql(sql: str) -> SelectStatement:
    """Parse one SELECT statement; raise :class:`SqlError` with position."""
    if not sql or not sql.strip():
        raise SqlError("empty SQL statement", 1, 1)
    return _Parser(tokenize(sql)).statement()
