"""Replacement policies for the dynamic client buffer cache.

A policy tracks the set of resident page keys and answers one question:
which key goes next?  Everything is deterministic -- the eviction order is
a pure function of the admit/touch history, so two runs that issue the
same reference stream produce byte-identical eviction sequences (asserted
in ``tests/caching``).

LRU is the sensible default for the paper's sequential scan streams at
full-database capacity (nothing ever evicts); MRU is the classic antidote
to sequential flooding when a relation does *not* fit (evicting the page
just used keeps the head of the scan resident across re-scans); CLOCK is
the cheap second-chance approximation of LRU that real buffer managers
ship.
"""

from __future__ import annotations

import typing
from collections import OrderedDict

from repro.errors import ConfigurationError

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "ClockPolicy",
    "POLICY_NAMES",
    "make_policy",
]

#: Page key: (relation name, page index within the relation).
Key = tuple[str, int]


class ReplacementPolicy:
    """Interface: track resident keys, pick eviction victims."""

    name = "?"

    def admit(self, key: Key) -> None:
        """A new key became resident."""
        raise NotImplementedError

    def touch(self, key: Key) -> None:
        """A resident key was referenced (cache hit)."""
        raise NotImplementedError

    def evict(self) -> Key:
        """Choose, remove, and return the next victim."""
        raise NotImplementedError

    def discard(self, key: Key) -> None:
        """Forget a key without electing it (consistency invalidation)."""
        raise NotImplementedError

    def state_token(self) -> typing.Hashable:
        """Canonical token of the policy's full mutable state.

        Two policies with equal tokens produce identical victim sequences
        for any future reference stream; the session memoizer folds this
        into its cache digest so a tape only replays against a cache whose
        *behaviour* (not just residency) matches the recording.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} resident={len(self)}>"


class LRUPolicy(ReplacementPolicy):
    """Evict the least recently used key."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[Key, None]" = OrderedDict()

    def admit(self, key: Key) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def touch(self, key: Key) -> None:
        self._order.move_to_end(key)

    def evict(self) -> Key:
        if not self._order:
            raise ConfigurationError("evict() on an empty replacement policy")
        key, _ = self._order.popitem(last=False)
        return key

    def discard(self, key: Key) -> None:
        self._order.pop(key, None)

    def state_token(self) -> typing.Hashable:
        return tuple(self._order)

    def __len__(self) -> int:
        return len(self._order)


class MRUPolicy(LRUPolicy):
    """Evict the *most* recently used key (anti-sequential-flooding)."""

    name = "mru"

    def evict(self) -> Key:
        if not self._order:
            raise ConfigurationError("evict() on an empty replacement policy")
        key, _ = self._order.popitem(last=True)
        return key


class ClockPolicy(ReplacementPolicy):
    """Second-chance CLOCK: a hand sweeps a ring of reference bits.

    Admitted and touched keys get their reference bit set; the hand clears
    set bits as it passes and evicts the first key found with a clear bit.
    """

    name = "clock"

    def __init__(self) -> None:
        self._ring: list[Key] = []
        self._ref: dict[Key, bool] = {}
        self._hand = 0

    def admit(self, key: Key) -> None:
        if key not in self._ref:
            # New keys join just behind the hand, so the full sweep passes
            # them last (standard CLOCK insertion order).
            self._ring.insert(self._hand, key)
            self._hand += 1
        self._ref[key] = True

    def touch(self, key: Key) -> None:
        self._ref[key] = True

    def evict(self) -> Key:
        if not self._ring:
            raise ConfigurationError("evict() on an empty replacement policy")
        while True:
            if self._hand >= len(self._ring):
                self._hand = 0
            key = self._ring[self._hand]
            if self._ref[key]:
                self._ref[key] = False
                self._hand += 1
            else:
                del self._ring[self._hand]
                del self._ref[key]
                return key

    def discard(self, key: Key) -> None:
        if key not in self._ref:
            return
        index = self._ring.index(key)
        del self._ring[index]
        del self._ref[key]
        if index < self._hand:
            self._hand -= 1

    def state_token(self) -> typing.Hashable:
        return (tuple(self._ring), tuple(self._ref.items()), self._hand)

    def __len__(self) -> int:
        return len(self._ring)


POLICY_NAMES = ("lru", "mru", "clock")
_POLICIES = {"lru": LRUPolicy, "mru": MRUPolicy, "clock": ClockPolicy}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``mru``/``clock``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; choose from {POLICY_NAMES}"
        ) from None
