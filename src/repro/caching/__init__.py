"""Dynamic client buffer cache: demand paging over the client disk.

The paper's experiments assume a *static* cached prefix, installed before
the query and never changed (footnote 8; ``repro.storage.cache``).  This
package replaces that simplification for workload runs: a page-grained
:class:`BufferCache` over the client disk that starts cold (or pre-seeded),
admits pages faulted in from servers mid-query, evicts under a pluggable
replacement policy (LRU, MRU, CLOCK) once full, and persists across the
queries of a stream -- so data-shipping clients warm up instead of
re-faulting the same pages query after query.

:class:`CacheState` is the immutable per-relation resident-page summary the
optimizer consumes: the cost model estimates client-resident fractions from
it instead of the static catalog fractions, and its digest is folded into
``plan_fingerprint`` so cached plans go stale exactly when the cache
contents they were planned against do.
"""

from repro.caching.buffer import BufferCache, CacheState
from repro.caching.config import CacheConfig
from repro.caching.policies import (
    ClockPolicy,
    LRUPolicy,
    MRUPolicy,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "BufferCache",
    "CacheConfig",
    "CacheState",
    "ClockPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "ReplacementPolicy",
    "make_policy",
]
