"""Configuration of the client caching layer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.caching.policies import POLICY_NAMES
from repro.errors import ConfigurationError

__all__ = ["CacheConfig"]


@dataclass(frozen=True)
class CacheConfig:
    """How client sites cache server data.

    ``mode="static"`` is the paper's footnote-8 model: a contiguous prefix
    of each relation is installed on the client disk before any query runs
    and never changes (:class:`~repro.storage.cache.ClientDiskCache`).  The
    figure reproductions all use it.

    ``mode="dynamic"`` replaces the prefix with a page-grained
    :class:`~repro.caching.buffer.BufferCache`: catalog cache fractions
    become *seeded* resident pages, client scans admit every faulted-in
    page, and a replacement policy evicts once ``capacity_pages`` is
    exceeded.  ``capacity_pages=None`` sizes the cache to hold the whole
    database (nothing ever evicts -- pure warm-up behaviour).
    """

    mode: str = "static"
    capacity_pages: int | None = None
    policy: str = "lru"
    #: Admit pages faulted in from servers (demand paging).  Off, the
    #: dynamic cache serves its seeded contents but never grows.
    admit_on_fault: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("static", "dynamic"):
            raise ConfigurationError(
                f"cache mode must be 'static' or 'dynamic', got {self.mode!r}"
            )
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown replacement policy {self.policy!r}; choose from {POLICY_NAMES}"
            )
        if self.capacity_pages is not None and self.capacity_pages < 0:
            raise ConfigurationError(
                f"capacity_pages must be >= 0, got {self.capacity_pages}"
            )

    @property
    def is_dynamic(self) -> bool:
        return self.mode == "dynamic"
