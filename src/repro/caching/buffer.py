"""The dynamic client buffer cache and its immutable snapshot.

One :class:`BufferCache` manages a contiguous arena of client-disk pages
(allocated once, up front, like the static cache's per-relation extents)
and maps ``(relation, page index)`` keys onto arena slots.  Lookups and
admissions update hit/miss/eviction/admission counters and the replacement
policy; :meth:`BufferCache.snapshot` freezes the per-relation resident
summary into a :class:`CacheState` the optimizer can plan against.

Everything is deterministic: slots are handed out in ascending order (so a
seeded prefix occupies a contiguous, sequentially-readable run, matching
the static cache's disk layout), freed slots are reused LIFO, and the
eviction order is whatever the policy computes from the reference stream.
``eviction_log`` records every victim in order -- the determinism tests
compare it byte for byte across reruns.
"""

from __future__ import annotations

import hashlib
import typing
from dataclasses import dataclass

from repro.caching.policies import make_policy
from repro.errors import ConfigurationError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.storage.layout import ExtentAllocator

__all__ = ["BufferCache", "CacheState"]


@dataclass(frozen=True)
class CacheState:
    """Immutable summary of a buffer cache: what is resident, and counters.

    ``resident`` is a sorted tuple of ``(relation, resident page count)``
    pairs -- the granularity the cost model needs (it prices a client scan
    by how many pages it reads locally vs faults, not *which* pages).

    Equality covers the counters too (two byte-identical runs must agree on
    them), but :meth:`digest` deliberately hashes only capacity and the
    resident set: plans depend on what is resident, not on how many hits it
    took to get there, so a stream whose resident set has stabilised keeps
    hitting the plan cache.
    """

    capacity_pages: int
    resident: tuple[tuple[str, int], ...] = ()
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    admissions: int = 0
    invalidations: int = 0

    def resident_pages(self, relation: str) -> int:
        for name, pages in self.resident:
            if name == relation:
                return pages
        return 0

    @property
    def total_resident(self) -> int:
        return sum(pages for _, pages in self.resident)

    def digest(self) -> str:
        """Canonical digest of the *contents* (capacity + resident set)."""
        text = repr((self.capacity_pages, self.resident))
        return hashlib.sha256(text.encode()).hexdigest()


class BufferCache:
    """Page-grained dynamic cache over one client disk.

    ``capacity_pages`` slots are carved from the client's extent allocator
    as one arena.  ``lookup`` answers where a relation page lives on the
    client disk (or None, counting a miss); ``admit`` makes a faulted-in
    page resident, evicting a victim via the replacement policy when full.
    ``seed`` pre-populates a contiguous prefix without touching the demand
    counters -- the dynamic analogue of the paper's "resident before the
    query starts" assumption.
    """

    def __init__(
        self,
        allocator: "ExtentAllocator",
        capacity_pages: int,
        policy: str = "lru",
        admit_on_fault: bool = True,
    ) -> None:
        if capacity_pages < 0:
            raise ConfigurationError(f"capacity_pages must be >= 0, got {capacity_pages}")
        self.capacity_pages = capacity_pages
        self.policy_name = policy
        self.admit_on_fault = admit_on_fault
        self._policy = make_policy(policy)
        self._extent = allocator.allocate(capacity_pages)
        # (relation, page index) -> arena slot.  Slots are handed out in
        # ascending order; freed slots are reused LIFO (deterministic).
        self._slots: dict[tuple[str, int], int] = {}
        # (relation, page index) -> page version stamp, maintained for every
        # resident page.  Version 0 is "as loaded"; writers bump the global
        # version table and the consistency protocol compares against this.
        self._versions: dict[tuple[str, int], int] = {}
        self._next_slot = 0
        self._free: list[int] = []
        # Demand counters (seeding is tracked separately).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.admissions = 0
        self.invalidations = 0
        self.seeded = 0
        #: Every victim, in eviction order -- compared byte for byte by the
        #: determinism tests.
        self.eviction_log: list[tuple[str, int]] = []

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------
    @property
    def resident_count(self) -> int:
        return len(self._slots)

    def resident_pages(self, relation: str) -> int:
        """Resident pages of one relation (any pages, not just a prefix)."""
        return sum(1 for name, _ in self._slots if name == relation)

    def contains(self, relation: str, page_index: int) -> bool:
        """Residency check without touching counters or the policy."""
        return (relation, page_index) in self._slots

    def lookup(self, relation: str, page_index: int) -> int | None:
        """Absolute client-disk page holding ``page_index``, or None (miss)."""
        slot = self._slots.get((relation, page_index))
        if slot is None:
            self.misses += 1
            return None
        self.hits += 1
        self._policy.touch((relation, page_index))
        return self._extent.page(slot)

    # ------------------------------------------------------------------
    # Admission / eviction
    # ------------------------------------------------------------------
    def _take_slot(self) -> int:
        if self._free:
            return self._free.pop()
        if self._next_slot < self.capacity_pages:
            slot = self._next_slot
            self._next_slot += 1
            return slot
        victim = self._policy.evict()
        self.evictions += 1
        self.eviction_log.append(victim)
        self._versions.pop(victim, None)
        return self._slots.pop(victim)

    def admit(self, relation: str, page_index: int, version: int = 0) -> int | None:
        """Make a page resident; returns its client-disk page.

        Returns None when the cache has no capacity at all (capacity 0
        degenerates to the no-cache baseline: every access faults, nothing
        is kept).  Admitting an already-resident page is a no-op beyond a
        policy touch and a version refresh.
        """
        if self.capacity_pages == 0:
            return None
        key = (relation, page_index)
        slot = self._slots.get(key)
        if slot is not None:
            self._policy.touch(key)
            self._versions[key] = version
            return self._extent.page(slot)
        slot = self._take_slot()
        self._slots[key] = slot
        self._versions[key] = version
        self._policy.admit(key)
        self.admissions += 1
        return self._extent.page(slot)

    def version_of(self, relation: str, page_index: int) -> int | None:
        """Version stamp of a resident page, or None if not resident."""
        return self._versions.get((relation, page_index))

    def invalidate(self, relation: str, page_index: int) -> bool:
        """Drop a (possibly stale) page from the cache; True if it was resident.

        The freed slot goes on the LIFO free list, exactly as if the policy
        had evicted it -- but the drop is *not* an eviction: it is counted
        separately, bypasses the policy's victim choice, and never appears
        in ``eviction_log``.
        """
        key = (relation, page_index)
        slot = self._slots.pop(key, None)
        if slot is None:
            return False
        self._versions.pop(key, None)
        self._policy.discard(key)
        self._free.append(slot)
        self.invalidations += 1
        return True

    def seed(self, relation: str, pages: int) -> int:
        """Pre-populate the first ``pages`` pages of a relation (no I/O).

        Stops at capacity (seeding never evicts); returns how many pages
        were actually seeded.
        """
        placed = 0
        for index in range(pages):
            if len(self._slots) >= self.capacity_pages:
                break
            key = (relation, index)
            if key in self._slots:
                continue
            slot = self._take_slot()
            self._slots[key] = slot
            self._versions[key] = 0
            self._policy.admit(key)
            self.seeded += 1
            placed += 1
        return placed

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> CacheState:
        """Freeze the current residency + counters into a :class:`CacheState`."""
        per_relation: dict[str, int] = {}
        for name, _ in self._slots:
            per_relation[name] = per_relation.get(name, 0) + 1
        return CacheState(
            capacity_pages=self.capacity_pages,
            resident=tuple(sorted(per_relation.items())),
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            admissions=self.admissions,
            invalidations=self.invalidations,
        )

    def digest(self) -> str:
        return self.snapshot().digest()

    def memo_digest(self) -> str:
        """Digest of the *full* behavioural state, for session memoization.

        :meth:`digest` deliberately covers only capacity and per-relation
        residency (enough for the plan cache); a recorded op tape replays
        correctly only against a cache that will answer every lookup and
        elect every victim identically, so this digest folds in the exact
        slot map, version stamps, free list, and replacement-policy state.
        Demand counters and the eviction log are excluded on purpose: they
        are history, and have no effect on future behaviour.
        """
        state = (
            self.capacity_pages,
            self.policy_name,
            self.admit_on_fault,
            tuple(sorted(self._slots.items())),
            tuple(sorted(self._versions.items())),
            self._next_slot,
            tuple(self._free),
            self._policy.state_token(),
        )
        return hashlib.sha256(repr(state).encode()).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BufferCache {self.policy_name} resident={len(self._slots)}"
            f"/{self.capacity_pages} hits={self.hits} misses={self.misses}>"
        )
