"""Trace exporters: Chrome ``trace_event`` JSON, ASCII timelines, telemetry.

The JSON exporter emits the Trace Event Format understood by Perfetto and
``chrome://tracing``: one ``"X"`` (complete) event per span, ``"i"``
(instant) events for point occurrences, ``"M"`` metadata events naming
each track, and -- when a :class:`~repro.obs.telemetry.Telemetry` snapshot
is passed alongside the tracer -- ``"C"`` (counter) events that render the
sampled utilization/occupancy series as counter tracks above the spans.
Tracks map to Chrome *threads* (one per simulated process) in a single
*process*; timestamps are simulated microseconds.

Telemetry also exports standalone: :func:`telemetry_csv` /
:func:`telemetry_json` for offline analysis, and :func:`render_dashboard`
draws an ASCII sparkline per channel (the ``repro dash`` subcommand).

Output is fully deterministic for a deterministic simulation run --
``json.dumps`` with sorted keys and fixed separators -- so equal seeds
produce byte-identical trace files (tested in
``tests/obs/test_trace_determinism.py``).
"""

from __future__ import annotations

import json
import typing

from repro.obs.trace import Tracer

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.telemetry import Telemetry

__all__ = [
    "chrome_trace_events",
    "chrome_counter_events",
    "chrome_trace_json",
    "write_chrome_trace",
    "render_timeline",
    "render_dashboard",
    "telemetry_csv",
    "telemetry_json",
]

_MICRO = 1e6


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """Convert a tracer's spans and instants to Chrome trace events."""
    tracks = sorted(
        {s.track for s in tracer.spans} | {i.track for i in tracer.instants}
    )
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    events: list[dict] = []
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
    spans = sorted(
        tracer.spans, key=lambda s: (s.start, tids[s.track], -(s.end or s.start), s.name)
    )
    for span in spans:
        event = {
            "ph": "X",
            "name": span.name,
            "cat": span.cat,
            "ts": span.start * _MICRO,
            "dur": span.duration * _MICRO,
            "pid": 1,
            "tid": tids[span.track],
        }
        args = dict(span.args or {})
        if span.op is not None:
            args["op"] = span.op
        if args:
            event["args"] = args
        events.append(event)
    for instant in sorted(tracer.instants, key=lambda i: (i.time, tids[i.track], i.name)):
        event = {
            "ph": "i",
            "name": instant.name,
            "cat": instant.cat,
            "ts": instant.time * _MICRO,
            "pid": 1,
            "tid": tids[instant.track],
            "s": "t",
        }
        if instant.args:
            event["args"] = dict(instant.args)
        events.append(event)
    return events


def chrome_counter_events(telemetry: "Telemetry") -> list[dict]:
    """Telemetry series as Chrome ``"C"`` (counter) events.

    Perfetto renders each distinct counter name as its own mini-graph, so
    merging these into a span trace puts the utilization timeline directly
    above the operator spans that caused it.
    """
    events: list[dict] = []
    for name in telemetry.names():
        for time, value in telemetry[name]:
            events.append(
                {
                    "ph": "C",
                    "name": name,
                    "cat": "telemetry",
                    "ts": time * _MICRO,
                    "pid": 1,
                    "args": {"value": value},
                }
            )
    events.sort(key=lambda e: (e["ts"], e["name"]))
    return events


def chrome_trace_json(tracer: Tracer, telemetry: "Telemetry | None" = None) -> str:
    """The full Chrome-trace document as a deterministic JSON string.

    ``telemetry`` merges the sampled series in as counter events.
    """
    events = chrome_trace_events(tracer)
    if telemetry is not None:
        events.extend(chrome_counter_events(telemetry))
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {str(k): v for k, v in tracer.metadata.items()},
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(
    tracer: Tracer, path: str, telemetry: "Telemetry | None" = None
) -> None:
    """Write the Chrome-trace JSON to ``path`` (open in Perfetto)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_json(tracer, telemetry=telemetry))
        handle.write("\n")


def telemetry_csv(telemetry: "Telemetry") -> str:
    """Telemetry as ``time,channel,value`` CSV rows (header included)."""
    lines = ["time,channel,value"]
    for name in telemetry.names():
        for time, value in telemetry[name]:
            lines.append(f"{time:.6f},{name},{value:g}")
    return "\n".join(lines) + "\n"


def telemetry_json(telemetry: "Telemetry") -> str:
    """Telemetry as deterministic JSON (``{channel: [[t, v], ...]}``)."""
    document = {
        "interval": telemetry.interval,
        "start": telemetry.start,
        "end": telemetry.end,
        "samples_taken": telemetry.samples_taken,
        "dropped": telemetry.dropped,
        "series": {
            name: [[t, v] for t, v in telemetry[name]] for name in telemetry.names()
        },
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


_SPARKS = "▁▂▃▄▅▆▇█"


def _sparkline(values: list[float], width: int) -> str:
    """Resample a series to ``width`` buckets of block characters."""
    if not values:
        return ""
    buckets: list[float] = []
    n = len(values)
    for cell in range(min(width, n)):
        lo = cell * n // min(width, n)
        hi = max(lo + 1, (cell + 1) * n // min(width, n))
        buckets.append(max(values[lo:hi]))
    top = max(buckets)
    if top <= 0.0:
        return _SPARKS[0] * len(buckets)
    return "".join(
        _SPARKS[min(len(_SPARKS) - 1, int(value / top * len(_SPARKS)))]
        for value in buckets
    )


def render_dashboard(
    telemetry: "Telemetry", width: int = 48, channels: "tuple[str, ...] | None" = None
) -> str:
    """ASCII sparkline dashboard: one row per telemetry channel.

    Each row shows the channel name, a sparkline of the series resampled
    to ``width`` cells (cell height relative to the channel's own max),
    and the min/max/last values.  ``channels`` filters by name suffix.
    """
    names = [
        name
        for name in telemetry.names()
        if channels is None or name.endswith(tuple(channels))
    ]
    if not names:
        return "(no telemetry samples)"
    label_width = max(len(name) for name in names)
    lines = [
        f"telemetry: {telemetry.samples_taken} samples at "
        f"{telemetry.interval:g}s over t={telemetry.start:.3f}..{telemetry.end:.3f}s"
    ]
    for name in names:
        values = telemetry.values(name)
        spark = _sparkline(values, width)
        low, high = min(values), max(values)
        lines.append(
            f"{name:{label_width}s} |{spark:{width}s}| "
            f"min={low:g} max={high:g} last={values[-1]:g}"
        )
    return "\n".join(lines)


def render_timeline(tracer: Tracer, width: int = 64) -> str:
    """Plain-text per-operator timeline of one traced run.

    One row per operator label (plus the ``query`` root), a ``#`` cell
    wherever at least one of the operator's spans overlaps that slice of
    simulated time, and ``!`` markers for instants (faults, retries).
    """
    spans = [s for s in tracer.spans if s.cat in ("op", "query") and s.end is not None]
    if not spans:
        return "(empty trace)"
    horizon = max(s.end for s in spans)
    if horizon <= 0:
        return "(empty trace)"

    def row_label(span: typing.Any) -> str:
        return span.op if span.cat == "op" and span.op else span.name

    intervals: dict[str, list[tuple[float, float]]] = {}
    first_start: dict[str, float] = {}
    for span in spans:
        label = row_label(span)
        intervals.setdefault(label, []).append((span.start, span.end))
        first_start[label] = min(first_start.get(label, span.start), span.start)

    label_width = max(len(label) for label in intervals)
    scale = width / horizon
    lines = [
        f"{'':{label_width}s} t=0{'':{max(0, width - len(f't={horizon:.3f}s') - 3)}s}"
        f"t={horizon:.3f}s"
    ]
    for label in sorted(intervals, key=lambda lbl: (first_start[lbl], lbl)):
        cells = [" "] * width
        for start, end in intervals[label]:
            lo = min(width - 1, int(start * scale))
            hi = min(width - 1, max(lo, int(end * scale) - (1 if end * scale > lo else 0)))
            for cell in range(lo, hi + 1):
                cells[cell] = "#"
        lines.append(f"{label:{label_width}s} |{''.join(cells)}|")
    if tracer.instants:
        cells = [" "] * width
        for instant in tracer.instants:
            cells[min(width - 1, int(instant.time * scale))] = "!"
        lines.append(f"{'events':{label_width}s} |{''.join(cells)}|")
    return "\n".join(lines)
