"""EXPLAIN-ANALYZE-style per-query profile reports.

``repro profile`` optimizes one chain-join query, executes it with tracing
on, and renders the **bound operator tree** (the paper's Figure-1 shape)
with each node's predicted vs actual resource seconds side by side --
predictions from the analytical cost model
(:meth:`~repro.costmodel.model.CostModel.evaluate_with_breakdown`), actuals
from the traced execution
(:meth:`~repro.obs.trace.Tracer.operator_resource_seconds`).  It is the
single-query, tree-shaped view of the same data
:mod:`repro.obs.validate` tabulates flat: the tree makes it obvious
*which subtree* a misprediction lives in, not just which label.

Network transfers materialized by the executor (``xfer:*`` receivers) are
not plan-tree nodes; they are listed separately below the tree so the
report still accounts for every traced label.
"""

from __future__ import annotations

import typing

from repro.obs.trace import RESOURCE_CATEGORIES
from repro.obs.validate import OperatorValidation, ValidationReport, validate_plan_costs

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.config import OptimizerConfig
    from repro.plans.binding import BoundPlan

__all__ = ["profile_query", "render_profile"]


def profile_query(
    policy: str = "hybrid",
    num_relations: int = 2,
    num_servers: int = 1,
    cached_fraction: float = 0.5,
    seed: int = 0,
    optimizer: "OptimizerConfig | None" = None,
) -> "tuple[ValidationReport, BoundPlan]":
    """Optimize, execute with tracing, and validate one chain-join query.

    Returns the validation report plus the bound plan whose tree
    :func:`render_profile` draws.  Accepts the same policy spellings as
    :func:`repro.api.run_query`.
    """
    from repro.api import _parse_policy
    from repro.config import OptimizerConfig as _OptimizerConfig
    from repro.costmodel.model import Objective
    from repro.optimizer.two_phase import RandomizedOptimizer
    from repro.plans.binding import bind_plan
    from repro.workloads.scenarios import chain_scenario

    parsed = _parse_policy(policy)
    scenario = chain_scenario(
        num_relations=num_relations,
        num_servers=num_servers,
        cached_fraction=cached_fraction,
        placement_seed=seed,
    )
    optimization = RandomizedOptimizer(
        scenario.query,
        scenario.environment(),
        policy=parsed,
        objective=Objective.RESPONSE_TIME,
        config=optimizer or _OptimizerConfig.fast(),
        seed=seed,
    ).optimize()
    report = validate_plan_costs(
        scenario, optimization.plan, policy=parsed.value, seed=seed
    )
    return report, bind_plan(optimization.plan, scenario.catalog)


def _columns(validation: "OperatorValidation | None") -> str:
    if validation is None:
        return "(no cost attributed)"
    base = max(abs(validation.actual_total), abs(validation.predicted_total), 1e-12)
    delta = (validation.actual_total - validation.predicted_total) / base
    cells = [
        f"{validation.predicted_total:>8.4f}s",
        f"{validation.actual_total:>8.4f}s",
        f"{delta:>+7.1%}",
    ]
    parts = [
        f"{resource} {validation.predicted.get(resource, 0.0):.4f}/"
        f"{validation.actual.get(resource, 0.0):.4f}"
        for resource in RESOURCE_CATEGORIES
        if validation.predicted.get(resource, 0.0)
        or validation.actual.get(resource, 0.0)
    ]
    return " ".join(cells) + ("  [" + ", ".join(parts) + "]" if parts else "")


def render_profile(report: ValidationReport, bound: "BoundPlan") -> str:
    """Render the bound plan tree with predicted-vs-actual costs per node."""
    labels = bound.operator_labels()
    by_label = {op.label: op for op in report.operators}

    rows: list[tuple[str, str]] = []

    def visit(op, prefix: str, is_last: bool, is_root: bool) -> None:
        label = labels[id(op)]
        if is_root:
            rows.append((label, label))
            child_prefix = ""
        else:
            connector = "'-- " if is_last else "|-- "
            rows.append((prefix + connector + label, label))
            child_prefix = prefix + ("    " if is_last else "|   ")
        for index, child in enumerate(op.children):
            visit(child, child_prefix, index == len(op.children) - 1, False)

    visit(bound.root, "", True, True)

    width = max(len(tree) for tree, _ in rows)
    header = (
        f"{'operator':{width}s} {'predicted':>9s} {'actual':>9s} {'delta':>8s}"
        "  [per-resource predicted/actual seconds]"
    )
    lines = []
    if report.policy:
        lines.append(f"policy: {report.policy}")
    lines.append(
        f"response time: predicted {report.predicted.response_time:.3f}s, "
        f"actual {report.result.response_time:.3f}s "
        f"({report.response_time_delta:+.1%})"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for tree, label in rows:
        lines.append(f"{tree:{width}s} {_columns(by_label.get(label))}")
    extras = sorted(set(by_label) - {label for _, label in rows})
    if extras:
        lines.append("")
        lines.append("network transfers (not plan-tree nodes):")
        for label in extras:
            lines.append(f"{label:{width}s} {_columns(by_label[label])}")
    return "\n".join(lines)
