"""Time-series telemetry: sampled metrics over simulated time.

The :class:`MetricsRegistry` snapshots gauges once at end-of-run, which
collapses *when* resources were busy into a single number: a run that is
disk-bound for its first half and CPU-bound for its second looks exactly
like a uniformly loaded one.  The :class:`TelemetrySampler` fixes that by
running as a simulated-time process that samples selected registry
instruments every ``interval`` seconds into bounded ring-buffer
:class:`Series` -- the substrate for utilization timelines, Chrome-trace
counter tracks, ASCII dashboards, and (eventually) load-adaptive runtime
decisions.

Three kinds of channel are derived from the registry names:

- **rate** -- every ``*.busy_time`` gauge becomes a per-interval
  ``*.utilization`` series: ``(busy(t) - busy(t - dt)) / dt``.  The
  registry's own ``.utilization`` gauges are cumulative-since-t0 averages
  and would smear transient saturation away.
- **state** -- instantaneous occupancy gauges sampled as-is
  (memory granted/waiting, cache resident pages, admission queue depth).
- **cumulative** -- monotone counters sampled as-is (spill pages,
  consistency traffic, network data pages); consumers difference them.

Sampling only *reads* gauges and its timeout events never touch any
random stream, so enabling telemetry cannot change simulation outcomes
(asserted by ``tests/obs/test_telemetry.py``); with ``telemetry=None``
(the default everywhere) nothing at all is created.

The sampler also registers a deadlock debug dumper on its environment: a
hang dumps the last few samples of every series, so the utilization
lead-up to the stall is visible in the error message.  To keep the
environment's deadlock *detection* working (it fires when the event queue
drains), the sampler parks itself -- exits its loop -- as soon as it wakes
up and finds nothing but telemetry heartbeats left in the queue.
"""

from __future__ import annotations

import typing
from collections import deque
from dataclasses import dataclass, field

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import Environment

__all__ = ["Series", "Telemetry", "TelemetryConfig", "TelemetrySampler"]

#: Registry-name suffixes sampled as instantaneous state.
STATE_SUFFIXES = (
    ".memory.granted",
    ".memory.waiting",
    ".cache.resident_pages",
    ".queued",
    ".running",
)

#: Registry-name suffixes (or exact names) sampled as cumulative counters.
CUMULATIVE_SUFFIXES = (
    ".memory.spill_pages",
    ".consistency.invalidations",
    ".consistency.validations",
    ".consistency.stale_hits",
    ".consistency.write_pages",
    "network.data_pages_sent",
)

_RATE_SUFFIX = ".busy_time"


@dataclass(frozen=True)
class TelemetryConfig:
    """How (and how often) to sample the metrics registry.

    ``interval`` is the sampling period in simulated seconds.  ``capacity``
    bounds each series' ring buffer; once full, the oldest samples are
    dropped (and counted), so memory stays O(channels x capacity) no matter
    how long the run is.  ``channels``, when given, keeps only series whose
    name ends with one of the entries (after the rate/state/cumulative
    selection) -- e.g. ``("disk0.utilization",)`` for a disk-only timeline.
    """

    interval: float = 0.25
    capacity: int = 512
    channels: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.interval <= 0.0:
            raise ValueError(f"telemetry interval must be > 0, got {self.interval}")
        if self.capacity < 1:
            raise ValueError(f"telemetry capacity must be >= 1, got {self.capacity}")

    def wants(self, series_name: str) -> bool:
        return self.channels is None or series_name.endswith(tuple(self.channels))


class Series:
    """One named, bounded time series of ``(time, value)`` samples."""

    __slots__ = ("name", "capacity", "dropped", "_samples")

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = capacity
        self.dropped = 0
        self._samples: deque[tuple[float, float]] = deque(maxlen=capacity)

    def append(self, time: float, value: float) -> None:
        if len(self._samples) == self.capacity:
            self.dropped += 1
        self._samples.append((time, value))

    @property
    def samples(self) -> tuple[tuple[float, float], ...]:
        return tuple(self._samples)

    def times(self) -> list[float]:
        return [t for t, _ in self._samples]

    def values(self) -> list[float]:
        return [v for _, v in self._samples]

    def last(self, n: int = 1) -> list[tuple[float, float]]:
        """The most recent ``n`` samples, oldest first."""
        if n <= 0:
            return []
        return list(self._samples)[-n:]

    def __len__(self) -> int:
        return len(self._samples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Series):
            return NotImplemented
        return (
            self.name == other.name
            and self.dropped == other.dropped
            and self._samples == other._samples
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Series {self.name!r} n={len(self._samples)} dropped={self.dropped}>"


@dataclass(frozen=True)
class Telemetry:
    """An immutable snapshot of every sampled series (attached to results).

    ``series`` maps channel name to its ``((time, value), ...)`` samples.
    Equality compares everything, which is what the determinism tests rely
    on: equal seeds must produce identical telemetry, timestamps and all.
    """

    interval: float
    start: float
    end: float
    samples_taken: int
    series: dict[str, tuple[tuple[float, float], ...]] = field(default_factory=dict)
    dropped: int = 0

    def names(self) -> list[str]:
        return sorted(self.series)

    def __getitem__(self, name: str) -> tuple[tuple[float, float], ...]:
        return self.series[name]

    def __contains__(self, name: str) -> bool:
        return name in self.series

    def __len__(self) -> int:
        return len(self.series)

    def times(self, name: str) -> list[float]:
        return [t for t, _ in self.series[name]]

    def values(self, name: str) -> list[float]:
        return [v for _, v in self.series[name]]

    def last(self, name: str) -> float:
        samples = self.series[name]
        return samples[-1][1] if samples else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"telemetry: {len(self.series)} series, {self.samples_taken} samples "
            f"at {self.interval:g}s over t={self.start:.3f}..{self.end:.3f}s"
        )


class TelemetrySampler:
    """Simulated-time process sampling a metrics registry into series.

    Created by the executor / workload runner when a
    :class:`TelemetryConfig` is passed; :meth:`snapshot` freezes the rings
    into a :class:`Telemetry` for the run's result.  The sampler keeps
    working across repeated ``execute()`` calls on one executor -- the
    series then span the whole life of the topology.
    """

    def __init__(
        self,
        env: "Environment",
        registry: "MetricsRegistry",
        config: TelemetryConfig | None = None,
    ) -> None:
        self.env = env
        self.registry = registry
        self.config = config or TelemetryConfig()
        self.start = env.now
        self.samples_taken = 0
        self._series: dict[str, Series] = {}
        # (series name, registry name) per channel kind; re-resolved when
        # the registry gains or loses instruments mid-run.
        self._rate_sources: list[tuple[str, str]] = []
        self._value_sources: list[tuple[str, str]] = []
        self._prev_busy: dict[str, float] = {}
        self._known_instruments = -1
        # Heartbeat bookkeeping shared by every sampler on this env: the
        # park check below must treat *other* samplers' timeouts as idle
        # too, or two samplers would keep each other alive forever.
        beats = getattr(env, "_telemetry_heartbeats", None)
        if beats is None:
            beats = set()
            env._telemetry_heartbeats = beats  # type: ignore[attr-defined]
        self._heartbeats: set[int] = beats
        env.debug_dumpers.append(self.debug_dump)
        self.process = env.process(self._run(), name="telemetry-sampler")

    # ------------------------------------------------------------------
    # Channel resolution
    # ------------------------------------------------------------------
    def _resolve_channels(self) -> None:
        """(Re)derive the channel lists from the registry's current names."""
        self._known_instruments = len(self.registry)
        self._rate_sources = []
        self._value_sources = []
        wants = self.config.wants
        for name in self.registry.names():
            if name.endswith(_RATE_SUFFIX):
                series = name[: -len(_RATE_SUFFIX)] + ".utilization"
                if wants(series):
                    self._rate_sources.append((series, name))
                    # A freshly discovered busy-time gauge baselines at its
                    # current value: the first interval rates only the busy
                    # time accumulated after discovery.
                    if name not in self._prev_busy:
                        self._prev_busy[name] = self._read(name)
            elif name.endswith(STATE_SUFFIXES) or name.endswith(CUMULATIVE_SUFFIXES):
                if wants(name):
                    self._value_sources.append((name, name))

    def _read(self, name: str) -> float:
        return self.registry.value(name)

    def _series_for(self, name: str) -> Series:
        series = self._series.get(name)
        if series is None:
            series = Series(name, self.config.capacity)
            self._series[name] = series
        return series

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Take one sample of every channel at the current simulated time."""
        if len(self.registry) != self._known_instruments:
            self._resolve_channels()
        now = self.env.now
        interval = self.config.interval
        for series_name, source in self._rate_sources:
            busy = self._read(source)
            delta = busy - self._prev_busy[source]
            self._prev_busy[source] = busy
            self._series_for(series_name).append(now, delta / interval)
        for series_name, source in self._value_sources:
            self._series_for(series_name).append(now, self._read(source))
        self.samples_taken += 1

    def _run(self) -> typing.Generator:
        env = self.env
        beats = self._heartbeats
        # The t=start sample baselines every busy-time gauge (rates read
        # 0.0 there) and anchors all series on a shared grid origin.
        self.sample()
        while True:
            heartbeat = env.timeout(self.config.interval)
            beats.add(id(heartbeat))
            try:
                yield heartbeat
            finally:
                beats.discard(id(heartbeat))
            self.sample()
            # Park when nothing but telemetry heartbeats remains scheduled:
            # a perpetual sampler would otherwise keep the event queue
            # non-empty forever and defeat deadlock detection.  Cheap guard
            # first -- at most len(beats) queued events can be heartbeats.
            queue = env._queue
            if (
                not env._immediate
                and len(queue) <= len(beats)
                and all(
                    # Raw-sleep entries are (time, seq, process, None)
                    # 4-tuples: parked processes, never heartbeats.
                    len(entry) == 3 and id(entry[2]) in beats
                    for entry in queue
                )
            ):
                return

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    @property
    def series(self) -> dict[str, Series]:
        """The live ring buffers, keyed by channel name."""
        return self._series

    def snapshot(self) -> Telemetry:
        """Freeze the current rings into an immutable :class:`Telemetry`."""
        return Telemetry(
            interval=self.config.interval,
            start=self.start,
            end=self.env.now,
            samples_taken=self.samples_taken,
            series={name: s.samples for name, s in sorted(self._series.items())},
            dropped=sum(s.dropped for s in self._series.values()),
        )

    def debug_dump(self, last: int = 5) -> str:
        """Per-series telemetry lead-up for deadlock dumps ("" when empty)."""
        if not self._series or self.samples_taken == 0:
            return ""
        lines = [
            f"telemetry (interval {self.config.interval:g}s, "
            f"last {last} samples per channel):"
        ]
        for name in sorted(self._series):
            samples = self._series[name].last(last)
            if not samples:
                continue
            rendered = " ".join(f"{value:g}@{time:.3f}" for time, value in samples)
            lines.append(f"  {name}: {rendered}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TelemetrySampler series={len(self._series)} "
            f"samples={self.samples_taken}>"
        )
