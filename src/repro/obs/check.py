"""Validate a Chrome-trace JSON file produced by :mod:`repro.obs.export`.

Run as ``python -m repro.obs.check trace.json``.  Checks both the structure
(required keys per event phase, known span categories, monotonically
sensible timestamps, numeric counter values) and the acceptance property of
this repo's tracer: the union of per-operator span intervals must cover the
reported query response time to within 1% -- no simulated time may go
unattributed.  Write workloads additionally surface their consistency
traffic as ``cat="consistency"`` spans (``invalidate[rel]`` broadcasts,
``validate[rel#page]`` round trips), which are checked for well-formed
names and relation args.

Exit status 0 on success (prints a one-line summary), 1 with a list of
problems otherwise.  CI runs this against a fresh ``repro trace`` export.
"""

from __future__ import annotations

import json
import re
import sys

__all__ = ["check_trace", "main"]

_REQUIRED_BY_PHASE = {
    "X": ("name", "cat", "ts", "dur", "pid", "tid"),
    "i": ("name", "cat", "ts", "pid", "tid", "s"),
    "M": ("name", "pid", "tid", "args"),
    "C": ("name", "ts", "pid", "args"),
}

#: Every span/instant category the simulator emits.  An unknown category is
#: a symptom of an exporter/tracer drift, so the checker rejects it.
KNOWN_CATEGORIES = frozenset(
    {
        "op",
        "query",
        "cpu",
        "disk",
        "net",
        "wait",
        "cache",
        "memory",
        "fault",
        "consistency",
        "telemetry",
        "event",
    }
)

_CONSISTENCY_NAME = re.compile(r"^(invalidate|validate)\[")
_WRITE_OP_NAME = re.compile(r"^(update|insert|delete)\[")

COVERAGE_TOLERANCE = 0.01


def _union_seconds(intervals: list[tuple[float, float]]) -> float:
    total = 0.0
    end = float("-inf")
    for lo, hi in sorted(intervals):
        if hi <= end:
            continue
        total += hi - max(lo, end)
        end = hi
    return total


def check_trace(document: dict) -> list[str]:
    """Return a list of problems with a parsed Chrome-trace document."""
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        problems.append("'traceEvents' is empty")

    op_intervals: list[tuple[float, float]] = []
    named_tids: set[tuple[int, int]] = set()
    used_tids: set[tuple[int, int]] = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event #{index} is not an object")
            continue
        phase = event.get("ph")
        required = _REQUIRED_BY_PHASE.get(phase)  # type: ignore[arg-type]
        if required is None:
            problems.append(f"event #{index} has unknown phase {phase!r}")
            continue
        missing = [key for key in required if key not in event]
        if missing:
            problems.append(f"event #{index} ({phase!r}) missing keys {missing}")
            continue
        if phase == "M":
            if event["name"] == "thread_name":
                named_tids.add((event["pid"], event["tid"]))
            continue
        if event["ts"] < 0:
            problems.append(f"event #{index} has negative ts {event['ts']}")
        if phase == "C":
            # Counter events ride on the process track (no tid); their
            # value must be a plain number for Perfetto to graph them.
            value = event["args"].get("value") if isinstance(event["args"], dict) else None
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(
                    f"event #{index} counter {event['name']!r} has "
                    f"non-numeric value {value!r}"
                )
            continue
        used_tids.add((event["pid"], event["tid"]))
        if event["cat"] not in KNOWN_CATEGORIES:
            problems.append(
                f"event #{index} has unknown category {event['cat']!r} "
                f"(known: {sorted(KNOWN_CATEGORIES)})"
            )
        if phase == "X":
            if event["dur"] < 0:
                problems.append(f"event #{index} has negative dur {event['dur']}")
            if event["cat"] in ("op", "query"):
                op_intervals.append((event["ts"], event["ts"] + event["dur"]))
            if event["cat"] == "consistency":
                if not _CONSISTENCY_NAME.match(event["name"]):
                    problems.append(
                        f"event #{index} consistency span has unexpected "
                        f"name {event['name']!r} (want invalidate[..]/validate[..])"
                    )
                args = event.get("args")
                if not isinstance(args, dict) or "relation" not in args:
                    problems.append(
                        f"event #{index} consistency span {event['name']!r} "
                        "missing args.relation"
                    )

    unnamed = used_tids - named_tids
    if unnamed:
        problems.append(f"tracks without thread_name metadata: {sorted(unnamed)}")

    other = document.get("otherData", {})
    response_time = other.get("response_time") if isinstance(other, dict) else None
    makespan = other.get("makespan") if isinstance(other, dict) else None
    if response_time is None and makespan is None:
        problems.append(
            "otherData.response_time/makespan missing (trace not finished?)"
        )
    elif response_time is None:
        # Workload trace: sessions overlap and clients think between
        # queries, so the single-query coverage invariant does not apply.
        # Spans must still fit inside the makespan, though.
        if op_intervals:
            horizon = max(hi for _, hi in op_intervals) / 1e6
            if horizon > makespan * (1.0 + COVERAGE_TOLERANCE):
                problems.append(
                    f"operator spans extend to {horizon:.6f}s beyond the "
                    f"reported makespan {makespan:.6f}s"
                )
    elif response_time > 0:
        covered = _union_seconds(op_intervals) / 1e6
        delta = abs(covered - response_time) / response_time
        if delta > COVERAGE_TOLERANCE:
            problems.append(
                f"operator spans cover {covered:.6f}s of {response_time:.6f}s "
                f"response time ({delta:.2%} off, tolerance "
                f"{COVERAGE_TOLERANCE:.0%})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.check trace.json", file=sys.stderr)
        return 2
    path = argv[0]
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"{path}: unreadable trace: {error}", file=sys.stderr)
        return 1
    problems = check_trace(document)
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        return 1
    events = document["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "X")
    counters = sum(1 for e in events if e.get("ph") == "C")
    consistency = sum(
        1 for e in events if e.get("ph") == "X" and e.get("cat") == "consistency"
    )
    writes = sum(
        1
        for e in events
        if e.get("ph") == "X"
        and e.get("cat") == "op"
        and _WRITE_OP_NAME.match(e.get("name", ""))
    )
    other = document.get("otherData", {})
    if other.get("response_time") is not None:
        horizon = f"response_time={other['response_time']:.4f}s"
    else:
        horizon = f"makespan={other.get('makespan', 0.0):.4f}s"
    print(
        f"{path}: ok ({len(events)} events, {spans} spans, {counters} counter "
        f"samples, {writes} write-op spans, {consistency} consistency spans, "
        f"{horizon}, checked within {COVERAGE_TOLERANCE:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
