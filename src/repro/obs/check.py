"""Validate a Chrome-trace JSON file produced by :mod:`repro.obs.export`.

Run as ``python -m repro.obs.check trace.json``.  Checks both the structure
(required keys per event phase, monotonically sensible timestamps) and the
acceptance property of this repo's tracer: the union of per-operator span
intervals must cover the reported query response time to within 1% -- no
simulated time may go unattributed.

Exit status 0 on success (prints a one-line summary), 1 with a list of
problems otherwise.  CI runs this against a fresh ``repro trace`` export.
"""

from __future__ import annotations

import json
import sys

__all__ = ["check_trace", "main"]

_REQUIRED_BY_PHASE = {
    "X": ("name", "cat", "ts", "dur", "pid", "tid"),
    "i": ("name", "cat", "ts", "pid", "tid", "s"),
    "M": ("name", "pid", "tid", "args"),
}

COVERAGE_TOLERANCE = 0.01


def _union_seconds(intervals: list[tuple[float, float]]) -> float:
    total = 0.0
    end = float("-inf")
    for lo, hi in sorted(intervals):
        if hi <= end:
            continue
        total += hi - max(lo, end)
        end = hi
    return total


def check_trace(document: dict) -> list[str]:
    """Return a list of problems with a parsed Chrome-trace document."""
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        problems.append("'traceEvents' is empty")

    op_intervals: list[tuple[float, float]] = []
    named_tids: set[tuple[int, int]] = set()
    used_tids: set[tuple[int, int]] = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event #{index} is not an object")
            continue
        phase = event.get("ph")
        required = _REQUIRED_BY_PHASE.get(phase)  # type: ignore[arg-type]
        if required is None:
            problems.append(f"event #{index} has unknown phase {phase!r}")
            continue
        missing = [key for key in required if key not in event]
        if missing:
            problems.append(f"event #{index} ({phase!r}) missing keys {missing}")
            continue
        if phase == "M":
            if event["name"] == "thread_name":
                named_tids.add((event["pid"], event["tid"]))
            continue
        used_tids.add((event["pid"], event["tid"]))
        if event["ts"] < 0:
            problems.append(f"event #{index} has negative ts {event['ts']}")
        if phase == "X":
            if event["dur"] < 0:
                problems.append(f"event #{index} has negative dur {event['dur']}")
            if event["cat"] in ("op", "query"):
                op_intervals.append((event["ts"], event["ts"] + event["dur"]))

    unnamed = used_tids - named_tids
    if unnamed:
        problems.append(f"tracks without thread_name metadata: {sorted(unnamed)}")

    other = document.get("otherData", {})
    response_time = other.get("response_time") if isinstance(other, dict) else None
    if response_time is None:
        problems.append("otherData.response_time missing (trace not finished?)")
    elif response_time > 0:
        covered = _union_seconds(op_intervals) / 1e6
        delta = abs(covered - response_time) / response_time
        if delta > COVERAGE_TOLERANCE:
            problems.append(
                f"operator spans cover {covered:.6f}s of {response_time:.6f}s "
                f"response time ({delta:.2%} off, tolerance "
                f"{COVERAGE_TOLERANCE:.0%})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.check trace.json", file=sys.stderr)
        return 2
    path = argv[0]
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"{path}: unreadable trace: {error}", file=sys.stderr)
        return 1
    problems = check_trace(document)
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        return 1
    events = document["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "X")
    response_time = document.get("otherData", {}).get("response_time")
    print(
        f"{path}: ok ({len(events)} events, {spans} spans, "
        f"response_time={response_time:.4f}s, operator coverage within "
        f"{COVERAGE_TOLERANCE:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
