"""Span-based tracing of simulated query execution.

A :class:`Tracer` records *spans* -- named intervals of simulated time --
and *instants* (point events such as faults and retries).  Spans are
organised into *tracks*: one track per simulated process, because a process
is sequential, so the spans it opens and closes always nest LIFO.  The
operator iterators, the hardware models, and the recovery loop all emit
spans when (and only when) a tracer is attached to their environment; with
no tracer attached every hook is a single ``is None`` check, so disabled
runs pay essentially nothing.

Span categories:

``op``
    One open/next/close call of a physical operator, carrying the
    operator's plan label (``scan[RelA]@server1``, ``join#0@client``, ...).
``query``
    The whole drive of one query (the root span of the driver track).
``cpu`` / ``disk`` / ``net``
    Service on a hardware resource.  These spans are *attributed*: each
    carries the label of the operator on whose behalf the work ran, so the
    tracer can aggregate actual per-operator resource seconds -- the data
    the cost-model validation harness compares against predictions.
``wait``
    Time spent queued for a resource before service began.

Attribution crosses process boundaries where the hardware does: a disk
request remembers the operator that submitted it, and the disk's service
span (emitted from the disk's own server process) is attributed back to
that operator.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Span", "Instant", "Tracer", "RESOURCE_CATEGORIES"]

#: Span categories whose durations are rolled up into per-operator
#: actual resource seconds.
RESOURCE_CATEGORIES = ("cpu", "disk", "net")


class Span:
    """One named interval of simulated time on one track."""

    __slots__ = ("name", "cat", "track", "start", "end", "op", "args", "child_op_time")

    def __init__(
        self,
        name: str,
        cat: str,
        track: str,
        start: float,
        op: str | None = None,
        args: dict | None = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.end: float | None = None
        self.op = op
        self.args = args
        # Simulated time spent in *nested operator spans* on the same
        # track; subtracting it gives this span's operator self time.
        self.child_op_time = 0.0

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def self_time(self) -> float:
        """Duration minus time spent in nested operator spans."""
        return self.duration - self.child_op_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return f"<Span {self.name!r} [{self.cat}] {self.start:.6f}..{end} @{self.track}>"


class Instant:
    """A point event (fault injected, retry started, query shed, ...)."""

    __slots__ = ("name", "cat", "track", "time", "args")

    def __init__(
        self, name: str, cat: str, track: str, time: float, args: dict | None = None
    ) -> None:
        self.name = name
        self.cat = cat
        self.track = track
        self.time = time
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Instant {self.name!r} t={self.time:.6f}>"


class Tracer:
    """Records spans and instants of one simulated run.

    Attach with :meth:`bind` (or pass ``tracer=`` to the executor / API
    entry points, which bind it for you).  All times are simulated seconds.
    """

    def __init__(self) -> None:
        self.env: "Environment | None" = None
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self._stacks: dict[str, list[Span]] = {}
        # Track name per process *object*: distinct processes may share a
        # name (e.g. two exchanges between the same site pair), but spans
        # only nest LIFO within one process, so each needs its own track.
        self._process_tracks: dict[typing.Any, str] = {}
        self._track_names: dict[str, int] = {}
        #: Extra metadata the exporters embed (response time, policy, ...).
        self.metadata: dict[str, typing.Any] = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def bind(self, env: "Environment") -> "Tracer":
        """Attach this tracer to an environment (env.tracer = self)."""
        self.env = env
        env.tracer = self
        return self

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _now(self) -> float:
        assert self.env is not None, "tracer used before bind()"
        return self.env.now

    def current_track(self) -> str:
        assert self.env is not None, "tracer used before bind()"
        process = self.env.active_process
        return self.track_of(process) if process is not None else "main"

    def track_of(self, process: typing.Any) -> str:
        """The track name of one process; second ``pump:x`` becomes
        ``pump:x#2`` and so on, so same-named processes never share a
        track (assignment order is deterministic for a deterministic run)."""
        track = self._process_tracks.get(process)
        if track is None:
            count = self._track_names.get(process.name, 0) + 1
            self._track_names[process.name] = count
            track = process.name if count == 1 else f"{process.name}#{count}"
            self._process_tracks[process] = track
        return track

    def begin(
        self,
        name: str,
        cat: str = "op",
        op: str | None = None,
        args: dict | None = None,
    ) -> Span:
        """Open a span on the current process's track.

        ``op`` is the operator label the span is attributed to; when
        omitted, the innermost open operator span on the same track (if
        any) is inherited -- so a CPU burst inside ``join#0@client.next``
        is automatically attributed to ``join#0@client``.
        """
        track = self.current_track()
        if op is None:
            op = self.current_op(track)
        span = Span(name, cat, track, self._now(), op=op, args=args)
        self._stacks.setdefault(track, []).append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close a span (must be the innermost open span of its track).

        A span that :meth:`finish` already force-closed is left untouched:
        after an aborted run the executor's abandoned generators still
        unwind (on garbage collection) through their ``tracer.end`` calls.
        """
        if span.end is not None:
            return span
        stack = self._stacks.get(span.track)
        assert stack and stack[-1] is span, (
            f"span {span.name!r} ended out of order on track {span.track!r}"
        )
        stack.pop()
        span.end = self._now()
        if span.cat == "op":
            parent = self._innermost_op(stack)
            if parent is not None:
                parent.child_op_time += span.duration
        self.spans.append(span)
        return span

    def instant(self, name: str, cat: str = "event", args: dict | None = None) -> Instant:
        """Record a point event on the current track."""
        record = Instant(name, cat, self.current_track(), self._now(), args=args)
        self.instants.append(record)
        return record

    @staticmethod
    def _innermost_op(stack: list[Span]) -> Span | None:
        for span in reversed(stack):
            if span.cat == "op":
                return span
        return None

    def current_op(self, track: str | None = None) -> str | None:
        """Label of the operator the current process is executing, if any."""
        stack = self._stacks.get(track if track is not None else self.current_track())
        if not stack:
            return None
        span = self._innermost_op(stack)
        return span.op if span is not None else None

    def open_stack(self, track: str) -> list[Span]:
        """The still-open spans of one track, outermost first (debug aid)."""
        return list(self._stacks.get(track, ()))

    def describe_stack(self, track: str) -> str:
        """Render a track's open-span stack as ``a > b > c`` (deadlock dumps)."""
        stack = self._stacks.get(track)
        if not stack:
            return ""
        return " > ".join(span.name for span in stack)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Close any spans still open (end of run / aborted attempts).

        Idempotent, and a no-op on a tracer that never got bound to an
        environment -- error paths may finish a tracer whose run died
        before (or during) executor construction.
        """
        if self.env is None:
            return
        for stack in self._stacks.values():
            while stack:
                span = stack.pop()
                span.end = self.env.now
                self.spans.append(span)

    def operator_spans(self) -> list[Span]:
        return [s for s in self.spans if s.cat == "op"]

    def operator_resource_seconds(self) -> dict[str, dict[str, float]]:
        """Actual resource seconds per operator label.

        ``{"scan[RelA]@server1": {"cpu": 0.012, "disk": 0.43, "net": 0.0}}``
        -- service time only (queue waits are separate ``wait`` spans).
        """
        totals: dict[str, dict[str, float]] = {}
        for span in self.spans:
            if span.cat in RESOURCE_CATEGORIES and span.op is not None:
                per_op = totals.setdefault(span.op, dict.fromkeys(RESOURCE_CATEGORIES, 0.0))
                per_op[span.cat] += span.duration
        return totals

    def operator_self_times(self) -> dict[str, float]:
        """Simulated seconds of *self* time per operator label.

        Self time excludes nested child-operator spans on the same track,
        so on any one track the self times of its spans partition that
        track's busy time.
        """
        totals: dict[str, float] = {}
        for span in self.spans:
            if span.cat == "op" and span.op is not None:
                totals[span.op] = totals.get(span.op, 0.0) + span.self_time
        return totals

    def coverage(self) -> float:
        """Total simulated time covered by at least one operator/query span.

        Computed as the length of the union of all ``op`` and ``query``
        span intervals.  For a single-query run the driver is busy from
        submission to completion, so this equals the response time.
        """
        intervals = sorted(
            (s.start, s.end if s.end is not None else s.start)
            for s in self.spans
            if s.cat in ("op", "query")
        )
        covered = 0.0
        current_start: float | None = None
        current_end = 0.0
        for start, end in intervals:
            if current_start is None or start > current_end:
                if current_start is not None:
                    covered += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        if current_start is not None:
            covered += current_end - current_start
        return covered

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Tracer spans={len(self.spans)} instants={len(self.instants)}>"
