"""Hierarchical metrics registry for simulation runs.

One :class:`MetricsRegistry` collects every statistic of a simulated
system under dotted hierarchical names (``site.server1.disk0.pages_read``,
``network.bytes_sent``, ``recovery.retries``).  It replaces the former
ad-hoc pattern of reaching into hardware objects for loose attributes:
the topology registers its devices once, and :meth:`MetricsRegistry.snapshot`
turns the whole tree into a flat, JSON-friendly ``{name: value}`` dict
that execution and workload results embed as their ``profile``.

Three instrument kinds:

- :class:`~repro.sim.monitor.Counter` -- monotonically increasing counts;
- :class:`~repro.sim.monitor.Tally` -- streaming mean/variance/extrema,
  snapshotted as ``name.count`` / ``name.mean`` / ``name.min`` / ``name.max``;
- :class:`Gauge` -- a zero-cost callable sampled only at snapshot time
  (how existing hardware statistics are pulled in without touching their
  hot paths).
"""

from __future__ import annotations

import typing

from repro.sim.monitor import Counter, Tally

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.topology import Topology

__all__ = ["Gauge", "MetricsRegistry", "register_topology_metrics"]


class Gauge:
    """A named metric sampled on demand from a callable."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: typing.Callable[[], float]) -> None:
        self.name = name
        self.fn = fn

    @property
    def value(self) -> float:
        return self.fn()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name!r}={self.value}>"


class MetricsRegistry:
    """A flat namespace of instruments with hierarchical dotted names."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Tally | Gauge] = {}

    # ------------------------------------------------------------------
    # Registration / lookup
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Fetch (or create) the counter called ``name``."""
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Counter(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Counter):
            raise TypeError(f"metric {name!r} is a {type(instrument).__name__}, not a Counter")
        return instrument

    def tally(self, name: str) -> Tally:
        """Fetch (or create) the tally called ``name``."""
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Tally(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Tally):
            raise TypeError(f"metric {name!r} is a {type(instrument).__name__}, not a Tally")
        return instrument

    def gauge(self, name: str, fn: typing.Callable[[], float]) -> Gauge:
        """Register (or replace) a sampled gauge called ``name``."""
        instrument = Gauge(name, fn)
        self._instruments[name] = instrument
        return instrument

    def register(self, instrument: "Counter | Tally") -> None:
        """Adopt an existing (named) counter or tally into the registry."""
        if not instrument.name:
            raise ValueError("only named instruments can be registered")
        self._instruments[instrument.name] = instrument

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def value(self, name: str) -> float:
        """Current value of one counter or gauge (tallies have no scalar)."""
        instrument = self._instruments[name]
        if isinstance(instrument, Tally):
            raise TypeError(f"metric {name!r} is a Tally; read its snapshot leaves")
        return float(instrument.value)

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self, prefix: str = "") -> list[str]:
        """Sorted instrument names, optionally below one dotted prefix."""
        if not prefix:
            return sorted(self._instruments)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sorted(n for n in self._instruments if n == prefix or n.startswith(dotted))

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, prefix: str = "") -> dict[str, float]:
        """Flatten every instrument into ``{dotted_name: value}``.

        Tallies expand into ``.count`` / ``.mean`` / ``.min`` / ``.max``
        leaves; empty tallies contribute only their count.
        """
        out: dict[str, float] = {}
        for name in self.names(prefix):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = instrument.value
            elif isinstance(instrument, Tally):
                out[f"{name}.count"] = instrument.count
                if instrument.count:
                    out[f"{name}.mean"] = instrument.mean
                    out[f"{name}.min"] = instrument.minimum
                    out[f"{name}.max"] = instrument.maximum
            else:
                out[name] = instrument.value
        return out

    #: Snapshot leaves that describe a *state* rather than a cumulative
    #: count; a delta against a baseline keeps these absolute.
    _ABSOLUTE_SUFFIXES = (
        "utilization",
        ".mean",
        ".min",
        ".max",
        ".high_water_pages",
        ".resident_pages",
        ".granted",
        ".waiting",
        # Admission-controller occupancy gauges (admission.serverN.*).
        ".queued",
        ".running",
    )

    def snapshot_delta(
        self, baseline: typing.Mapping[str, float], prefix: str = ""
    ) -> dict[str, float]:
        """A snapshot with cumulative values rebased against ``baseline``.

        Counters (and counter-like gauges) are reported as the increase
        since the baseline snapshot, so two back-to-back runs on one
        topology each see only their own activity; utilizations and other
        statistical leaves stay absolute.  Names absent from the baseline
        are treated as starting from zero.
        """
        out = self.snapshot(prefix)
        for name, value in out.items():
            if name.endswith(self._ABSOLUTE_SUFFIXES):
                continue
            out[name] = value - baseline.get(name, 0.0)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MetricsRegistry instruments={len(self._instruments)}>"


def register_topology_metrics(registry: MetricsRegistry, topology: "Topology") -> None:
    """Register every hardware statistic of a topology under ``site.*``.

    Called once from :class:`~repro.hardware.topology.Topology`; gauges
    read the live hardware attributes, so snapshots always reflect the
    current simulated state at zero per-event cost.
    """
    for site in topology.sites:
        base = f"site.{site.name}"
        cpu = site.cpu
        registry.gauge(f"{base}.cpu.instructions", lambda c=cpu: c.instructions_executed)
        registry.gauge(f"{base}.cpu.busy_time", lambda c=cpu: c.busy_time)
        registry.gauge(f"{base}.cpu.utilization", lambda c=cpu: c.utilization())
        registry.gauge(
            f"{base}.memory.high_water_pages", lambda m=site.memory: m.high_water_mark
        )
        # Memory-broker occupancy and activity (granted/waiting are state,
        # kept absolute in deltas; the rest are cumulative counters).
        registry.gauge(f"{base}.memory.granted", lambda m=site.memory: m.allocated_pages)
        registry.gauge(f"{base}.memory.waiting", lambda m=site.memory: m.waiting)
        registry.gauge(f"{base}.memory.reclaims", lambda m=site.memory: m.reclaims)
        registry.gauge(
            f"{base}.memory.reclaimed_pages", lambda m=site.memory: m.reclaimed_pages
        )
        registry.gauge(f"{base}.memory.spill_pages", lambda m=site.memory: m.spill_pages)
        registry.gauge(f"{base}.memory.grants_issued", lambda m=site.memory: m.grants_issued)
        registry.gauge(f"{base}.memory.wait_count", lambda m=site.memory: m.wait_count)
        registry.gauge(
            f"{base}.memory.total_wait_time", lambda m=site.memory: m.total_wait_time
        )
        for index, disk in enumerate(site.disks):
            prefix = f"{base}.disk{index}"
            registry.gauge(f"{prefix}.pages_read", lambda d=disk: d.reads)
            registry.gauge(f"{prefix}.pages_written", lambda d=disk: d.writes)
            registry.gauge(f"{prefix}.cache_hits", lambda d=disk: d.cache_hits)
            registry.gauge(f"{prefix}.sequential_ios", lambda d=disk: d.sequential_ios)
            registry.gauge(f"{prefix}.random_ios", lambda d=disk: d.random_ios)
            registry.gauge(f"{prefix}.faulted_requests", lambda d=disk: d.faulted_requests)
            registry.gauge(f"{prefix}.busy_time", lambda d=disk: d.monitor.elapsed_busy_time())
            registry.gauge(f"{prefix}.utilization", lambda d=disk: d.utilization())
            registry.gauge(f"{prefix}.queue_utilization", lambda d=disk: d.queue_utilization())
        registry.gauge(f"{base}.crashes", lambda s=site: s.crash_count)
        registry.gauge(f"{base}.downtime", lambda s=site: s.total_downtime)
        # Cache-consistency activity: always registered (all zero on
        # read-only runs) so profiles have a stable shape either way.
        # Servers accumulate write_pages; clients the other three.
        consistency = f"{base}.consistency"
        registry.gauge(
            f"{consistency}.invalidations", lambda s=site: s.consistency.invalidations
        )
        registry.gauge(
            f"{consistency}.validations", lambda s=site: s.consistency.validations
        )
        registry.gauge(
            f"{consistency}.stale_hits", lambda s=site: s.consistency.stale_hits
        )
        registry.gauge(
            f"{consistency}.write_pages", lambda s=site: s.consistency.write_pages
        )
        if site.is_client:
            # Dynamic buffer-cache counters; all zero until (unless) a
            # dynamic catalog install creates the client's buffer cache.
            cache = f"{base}.cache"
            registry.gauge(
                f"{cache}.hits",
                lambda s=site: s.buffer_cache.hits if s.buffer_cache else 0,
            )
            registry.gauge(
                f"{cache}.misses",
                lambda s=site: s.buffer_cache.misses if s.buffer_cache else 0,
            )
            registry.gauge(
                f"{cache}.evictions",
                lambda s=site: s.buffer_cache.evictions if s.buffer_cache else 0,
            )
            registry.gauge(
                f"{cache}.admissions",
                lambda s=site: s.buffer_cache.admissions if s.buffer_cache else 0,
            )
            registry.gauge(
                f"{cache}.resident_pages",
                lambda s=site: (
                    s.buffer_cache.resident_count
                    if s.buffer_cache
                    else (s.cache.total_cached_pages if s.cache else 0)
                ),
            )
    network = topology.network
    registry.gauge("network.data_pages_sent", lambda: network.data_pages_sent)
    registry.gauge("network.control_messages_sent", lambda: network.control_messages_sent)
    registry.gauge("network.bytes_sent", lambda: network.bytes_sent)
    registry.gauge("network.messages_dropped", lambda: network.messages_dropped)
    registry.gauge("network.outages", lambda: network.outage_count)
    registry.gauge("network.busy_time", lambda: network.busy_time)
    registry.gauge("network.utilization", network.utilization)
