"""Cost-model validation: predicted vs actual per-operator resource costs.

The 2PO optimizer steers plan choice with the analytical cost model of
:mod:`repro.costmodel.model`; this harness quantifies how well that model
tracks the simulator it steers.  For any executed plan it lines up, per
operator label:

- *predicted* resource seconds from
  :meth:`~repro.costmodel.model.CostModel.evaluate_with_breakdown`, and
- *actual* resource seconds from a traced execution
  (:meth:`~repro.obs.trace.Tracer.operator_resource_seconds`),

plus the end-to-end predicted vs actual response time.  2PO mispredictions
show up as large per-row deltas; the EXPERIMENTS.md table over the Figure-2
workload is produced by :func:`figure2_validation`.

This module deliberately stays out of ``repro.obs.__init__``: it imports the
engine and optimizer layers, which themselves import the tracer/metrics
half of ``repro.obs``.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.config import OptimizerConfig
from repro.costmodel.model import CostModel, Objective, PlanCost
from repro.engine.executor import ExecutionResult
from repro.obs.trace import RESOURCE_CATEGORIES, Tracer
from repro.optimizer.two_phase import RandomizedOptimizer
from repro.plans.policies import Policy

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.plans.binding import BoundPlan
    from repro.plans.operators import DisplayOp
    from repro.workloads.scenarios import Scenario

__all__ = [
    "OperatorValidation",
    "ValidationReport",
    "validate_plan_costs",
    "figure2_validation",
    "render_validation",
]


@dataclass(frozen=True)
class OperatorValidation:
    """Predicted vs actual resource seconds for one operator."""

    label: str
    predicted: dict[str, float]
    actual: dict[str, float]

    def delta(self, resource: str) -> float:
        """Signed relative error (actual - predicted) / max(actual, eps)."""
        actual = self.actual.get(resource, 0.0)
        predicted = self.predicted.get(resource, 0.0)
        base = max(abs(actual), abs(predicted), 1e-12)
        return (actual - predicted) / base

    @property
    def predicted_total(self) -> float:
        return sum(self.predicted.values())

    @property
    def actual_total(self) -> float:
        return sum(self.actual.values())


@dataclass
class ValidationReport:
    """One plan's predicted-vs-actual comparison."""

    policy: str
    predicted: PlanCost
    result: ExecutionResult
    operators: list[OperatorValidation] = field(default_factory=list)
    tracer: Tracer | None = None

    @property
    def response_time_delta(self) -> float:
        base = max(self.result.response_time, 1e-12)
        return (self.result.response_time - self.predicted.response_time) / base


def validate_plan_costs(
    scenario: "Scenario",
    plan: "DisplayOp | BoundPlan",
    policy: str = "",
    seed: int = 0,
) -> ValidationReport:
    """Execute ``plan`` with tracing and compare against its predicted costs."""
    cost_model = CostModel(scenario.query, scenario.environment())
    predicted_cost, predicted_ops = cost_model.evaluate_with_breakdown(plan)
    tracer = Tracer()
    result = scenario.execute(plan, seed=seed, tracer=tracer)
    actual_ops = tracer.operator_resource_seconds()
    report = ValidationReport(
        policy=policy, predicted=predicted_cost, result=result, tracer=tracer
    )
    for label in sorted(set(predicted_ops) | set(actual_ops)):
        report.operators.append(
            OperatorValidation(
                label=label,
                predicted=predicted_ops.get(
                    label, dict.fromkeys(RESOURCE_CATEGORIES, 0.0)
                ),
                actual=actual_ops.get(label, dict.fromkeys(RESOURCE_CATEGORIES, 0.0)),
            )
        )
    return report


def figure2_validation(
    cached_fraction: float = 0.5,
    seed: int = 3,
    optimizer: OptimizerConfig | None = None,
) -> list[ValidationReport]:
    """Validate the cost model on the Figure-2 workload, all three policies.

    The Figure-2 setting is the paper's 2-way join with a fraction of every
    relation cached at the client -- the experiment where DS, QS, and HY
    differ most sharply in *where* their time goes.
    """
    from repro.workloads.scenarios import chain_scenario

    scenario = chain_scenario(
        num_relations=2, num_servers=1, cached_fraction=cached_fraction,
        placement_seed=seed,
    )
    optimizer_config = optimizer or OptimizerConfig.fast()
    reports: list[ValidationReport] = []
    for policy in (Policy.DATA_SHIPPING, Policy.QUERY_SHIPPING, Policy.HYBRID_SHIPPING):
        optimization = RandomizedOptimizer(
            scenario.query,
            scenario.environment(),
            policy=policy,
            objective=Objective.RESPONSE_TIME,
            config=optimizer_config,
            seed=seed,
        ).optimize()
        reports.append(
            validate_plan_costs(scenario, optimization.plan, policy=policy.value, seed=seed)
        )
    return reports


def render_validation(report: ValidationReport) -> str:
    """Text table of one report: one row per (operator, resource)."""
    lines = []
    if report.policy:
        lines.append(f"policy: {report.policy}")
    lines.append(
        f"response time: predicted {report.predicted.response_time:.3f}s, "
        f"actual {report.result.response_time:.3f}s "
        f"({report.response_time_delta:+.1%})"
    )
    header = f"{'operator':34s}{'resource':>9s}{'predicted':>12s}{'actual':>12s}{'delta':>9s}"
    lines.append(header)
    lines.append("-" * len(header))
    for op in report.operators:
        for resource in RESOURCE_CATEGORIES:
            predicted = op.predicted.get(resource, 0.0)
            actual = op.actual.get(resource, 0.0)
            if predicted == 0.0 and actual == 0.0:
                continue
            lines.append(
                f"{op.label:34s}{resource:>9s}{predicted:>11.4f}s{actual:>11.4f}s"
                f"{op.delta(resource):>+9.1%}"
            )
    return "\n".join(lines)
