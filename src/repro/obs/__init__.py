"""Observability: span tracing, metrics registry, and trace exporters.

- :class:`Tracer` records per-operator, per-site spans in simulated time;
  attach one via ``QueryExecutor(..., tracer=...)`` or
  ``api.run_query(..., trace=True)``.  When no tracer is attached
  (``env.tracer is None``) every hook short-circuits, so untraced runs pay
  nothing.
- :class:`MetricsRegistry` exposes every hardware statistic under
  hierarchical dotted names (``site.server1.disk0.pages_read``) and is
  snapshotted into ``ExecutionResult.profile``.
- :class:`TelemetrySampler` is a simulated-time process that samples the
  registry's gauges at a fixed interval into bounded ring buffers; the
  frozen :class:`Telemetry` snapshot lands on
  ``ExecutionResult.telemetry`` / ``WorkloadResult.telemetry`` (enable via
  ``api.run_query(..., telemetry=True)``).
- :func:`chrome_trace_json` / :func:`write_chrome_trace` export
  Perfetto-loadable Chrome ``trace_event`` JSON (telemetry series become
  counter tracks); :func:`render_timeline` draws an ASCII per-operator
  timeline and :func:`render_dashboard` ASCII sparklines per telemetry
  channel; :func:`telemetry_csv` / :func:`telemetry_json` export the raw
  series.

The cost-model validation harness lives in :mod:`repro.obs.validate` and is
*not* re-exported here: it imports the engine and optimizer layers, which in
turn import this package's tracer/metrics half.
"""

from repro.obs.export import (
    chrome_counter_events,
    chrome_trace_events,
    chrome_trace_json,
    render_dashboard,
    render_timeline,
    telemetry_csv,
    telemetry_json,
    write_chrome_trace,
)
from repro.obs.metrics import Gauge, MetricsRegistry, register_topology_metrics
from repro.obs.telemetry import Series, Telemetry, TelemetryConfig, TelemetrySampler
from repro.obs.trace import RESOURCE_CATEGORIES, Instant, Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "Instant",
    "RESOURCE_CATEGORIES",
    "MetricsRegistry",
    "Gauge",
    "register_topology_metrics",
    "Series",
    "Telemetry",
    "TelemetryConfig",
    "TelemetrySampler",
    "chrome_counter_events",
    "chrome_trace_events",
    "chrome_trace_json",
    "write_chrome_trace",
    "render_timeline",
    "render_dashboard",
    "telemetry_csv",
    "telemetry_json",
]
