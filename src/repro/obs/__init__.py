"""Observability: span tracing, metrics registry, and trace exporters.

- :class:`Tracer` records per-operator, per-site spans in simulated time;
  attach one via ``QueryExecutor(..., tracer=...)`` or
  ``api.run_query(..., trace=True)``.  When no tracer is attached
  (``env.tracer is None``) every hook short-circuits, so untraced runs pay
  nothing.
- :class:`MetricsRegistry` exposes every hardware statistic under
  hierarchical dotted names (``site.server1.disk0.pages_read``) and is
  snapshotted into ``ExecutionResult.profile``.
- :func:`chrome_trace_json` / :func:`write_chrome_trace` export
  Perfetto-loadable Chrome ``trace_event`` JSON; :func:`render_timeline`
  draws an ASCII per-operator timeline.

The cost-model validation harness lives in :mod:`repro.obs.validate` and is
*not* re-exported here: it imports the engine and optimizer layers, which in
turn import this package's tracer/metrics half.
"""

from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_json,
    render_timeline,
    write_chrome_trace,
)
from repro.obs.metrics import Gauge, MetricsRegistry, register_topology_metrics
from repro.obs.trace import RESOURCE_CATEGORIES, Instant, Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "Instant",
    "RESOURCE_CATEGORIES",
    "MetricsRegistry",
    "Gauge",
    "register_topology_metrics",
    "chrome_trace_events",
    "chrome_trace_json",
    "write_chrome_trace",
    "render_timeline",
]
