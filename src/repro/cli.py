"""The ``repro`` command: observability entry points.

Subcommands::

    repro trace --policy hybrid --cached 0.5 --out trace.json
        Optimize and simulate one chain-join query with tracing on, write a
        Perfetto-loadable Chrome-trace JSON file, and print the per-operator
        ASCII timeline plus a span summary.

    repro validate --cached 0.5
        Run the cost-model validation harness over the Figure-2 workload:
        predicted vs actual per-operator resource seconds for all three
        execution policies.

    repro experiments <figure> [options]
        Forward to the ``repro-experiments`` command (regenerate any table
        or figure, e.g. ``repro experiments cache-warmup --quick``).
"""

from __future__ import annotations

import argparse
import sys

from repro import api
from repro.obs import chrome_trace_json, render_timeline, write_chrome_trace

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Client-server query processing reproduction."
    )
    commands = parser.add_subparsers(dest="command", required=True)

    trace = commands.add_parser(
        "trace", help="simulate one query with tracing on; export a Chrome trace"
    )
    trace.add_argument("--policy", default="hybrid", help="data | query | hybrid")
    trace.add_argument("--objective", default="response-time")
    trace.add_argument("--relations", type=int, default=2, help="chain length")
    trace.add_argument("--servers", type=int, default=1)
    trace.add_argument(
        "--cached", type=float, default=0.5, help="client-cached fraction of each relation"
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", default=None, help="write Chrome-trace JSON here")
    trace.add_argument(
        "--no-timeline", action="store_true", help="skip the ASCII timeline"
    )
    trace.add_argument(
        "--width", type=int, default=72, help="timeline width in characters"
    )

    validate = commands.add_parser(
        "validate", help="predicted-vs-actual cost report over the Figure-2 workload"
    )
    validate.add_argument(
        "--cached", type=float, default=0.5, help="client-cached fraction of each relation"
    )
    validate.add_argument("--seed", type=int, default=3)
    return parser


def _cmd_trace(args: argparse.Namespace) -> int:
    outcome = api.run_query(
        policy=args.policy,
        objective=args.objective,
        num_relations=args.relations,
        num_servers=args.servers,
        cached_fraction=args.cached,
        seed=args.seed,
        trace=True,
    )
    tracer = outcome.trace
    assert tracer is not None
    result = outcome.result
    # Write the trace before printing anything: stdout may be a pipe that
    # closes early (`repro trace ... | head`), and the file should land
    # even then.
    if args.out:
        write_chrome_trace(tracer, args.out)
    print(
        f"{outcome.policy.value}: response time {result.response_time:.3f}s, "
        f"{result.pages_sent} pages sent, {len(tracer.spans)} spans on "
        f"{len({s.track for s in tracer.spans})} tracks"
    )
    if not args.no_timeline:
        print()
        print(render_timeline(tracer, width=args.width))
    if args.out:
        size = len(chrome_trace_json(tracer))
        print(f"\nwrote {args.out} ({size} bytes; open at https://ui.perfetto.dev)")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    # Imported here, not at module top: validate pulls in the optimizer and
    # engine layers, which the plain `trace` path does not need eagerly.
    from repro.obs.validate import figure2_validation, render_validation

    reports = figure2_validation(cached_fraction=args.cached, seed=args.seed)
    for report in reports:
        print(render_validation(report))
        print()
    worst = max(
        (abs(op.delta(res)) for r in reports for op in r.operators for res in ("cpu", "net")),
        default=0.0,
    )
    print(f"worst cpu/net operator delta: {worst:.1%}")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "experiments":
        # Forward to the experiment harness so `repro experiments ...` and
        # the standalone `repro-experiments ...` entry point are the same
        # command; its own argparse handles everything after the keyword.
        from repro.experiments.cli import main as experiments_main

        return experiments_main(argv[1:])
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "validate":
            return _cmd_validate(args)
    except BrokenPipeError:  # e.g. `repro trace | head`
        sys.stderr.close()  # suppress the interpreter's epipe warning
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
