"""The ``repro`` command: observability entry points.

Subcommands::

    repro trace --policy hybrid --cached 0.5 --out trace.json
        Optimize and simulate one chain-join query with tracing on, write a
        Perfetto-loadable Chrome-trace JSON file, and print the per-operator
        ASCII timeline plus a span summary.

    repro validate --cached 0.5
        Run the cost-model validation harness over the Figure-2 workload:
        predicted vs actual per-operator resource seconds for all three
        execution policies.

    repro profile --policy hybrid --cached 0.5
        EXPLAIN-ANALYZE one query: render the bound operator tree with
        per-node predicted vs actual resource seconds.

    repro dash --policy data --cached 0.5 --interval 0.25
        Simulate one query (or, with --clients N, a workload) with the
        telemetry sampler on and draw ASCII sparklines of every sampled
        channel; --out writes the raw series as CSV or JSON.

    repro sql "SELECT ..." --policy query --servers 2
        Parse and plan a SQL statement through the frontend, optimize it
        under the chosen policy, simulate it, and print the bound plan
        plus the run's headline metrics.

    repro experiments <figure> [options]
        Forward to the ``repro-experiments`` command (regenerate any table
        or figure, e.g. ``repro experiments cache-warmup --quick``).
"""

from __future__ import annotations

import argparse
import sys

from repro import api
from repro.obs import (
    chrome_trace_json,
    render_dashboard,
    render_timeline,
    telemetry_csv,
    telemetry_json,
    write_chrome_trace,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Client-server query processing reproduction."
    )
    commands = parser.add_subparsers(dest="command", required=True)

    trace = commands.add_parser(
        "trace", help="simulate one query with tracing on; export a Chrome trace"
    )
    trace.add_argument("--policy", default="hybrid", help="data | query | hybrid")
    trace.add_argument("--objective", default="response-time")
    trace.add_argument("--relations", type=int, default=2, help="chain length")
    trace.add_argument("--servers", type=int, default=1)
    trace.add_argument(
        "--cached", type=float, default=0.5, help="client-cached fraction of each relation"
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", default=None, help="write Chrome-trace JSON here")
    trace.add_argument(
        "--telemetry",
        type=float,
        default=None,
        metavar="INTERVAL",
        help="also sample telemetry at this interval; series become counter "
        "tracks in the exported trace",
    )
    trace.add_argument(
        "--no-timeline", action="store_true", help="skip the ASCII timeline"
    )
    trace.add_argument(
        "--width", type=int, default=72, help="timeline width in characters"
    )

    validate = commands.add_parser(
        "validate", help="predicted-vs-actual cost report over the Figure-2 workload"
    )
    validate.add_argument(
        "--cached", type=float, default=0.5, help="client-cached fraction of each relation"
    )
    validate.add_argument("--seed", type=int, default=3)

    profile = commands.add_parser(
        "profile",
        help="EXPLAIN-ANALYZE one query: plan tree with predicted vs actual costs",
    )
    profile.add_argument("--policy", default="hybrid", help="data | query | hybrid")
    profile.add_argument("--relations", type=int, default=2, help="chain length")
    profile.add_argument("--servers", type=int, default=1)
    profile.add_argument(
        "--cached", type=float, default=0.5, help="client-cached fraction of each relation"
    )
    profile.add_argument("--seed", type=int, default=0)

    dash = commands.add_parser(
        "dash", help="sample telemetry over one run; draw ASCII sparklines"
    )
    dash.add_argument("--policy", default="hybrid", help="data | query | hybrid")
    dash.add_argument("--relations", type=int, default=2, help="chain length")
    dash.add_argument("--servers", type=int, default=1)
    dash.add_argument(
        "--cached", type=float, default=0.5, help="client-cached fraction of each relation"
    )
    dash.add_argument("--seed", type=int, default=0)
    dash.add_argument(
        "--interval", type=float, default=0.25, help="sampling interval (simulated s)"
    )
    dash.add_argument(
        "--clients",
        type=int,
        default=1,
        help="1 samples a single query; >1 samples a closed workload",
    )
    dash.add_argument(
        "--queries", type=int, default=4, help="queries per client (workload mode)"
    )
    dash.add_argument(
        "--channel",
        action="append",
        default=None,
        help="only show channels with this name suffix (repeatable)",
    )
    dash.add_argument("--width", type=int, default=48, help="sparkline width")
    dash.add_argument(
        "--out", default=None, help="also write the raw series (.csv or .json)"
    )

    sql = commands.add_parser(
        "sql", help="parse, optimize, and simulate one SQL statement"
    )
    sql.add_argument("statement", help="the SELECT statement (quote it)")
    sql.add_argument("--policy", default="hybrid", help="data | query | hybrid")
    sql.add_argument("--objective", default="response-time")
    sql.add_argument("--servers", type=int, default=1)
    sql.add_argument(
        "--cached", type=float, default=0.0, help="client-cached fraction of each table"
    )
    sql.add_argument("--seed", type=int, default=0)
    sql.add_argument(
        "--udf-site",
        default=None,
        choices=("auto", "client", "server"),
        help="override every UDF's evaluation site",
    )
    return parser


def _cmd_trace(args: argparse.Namespace) -> int:
    outcome = api.run_query(
        policy=args.policy,
        objective=args.objective,
        num_relations=args.relations,
        num_servers=args.servers,
        cached_fraction=args.cached,
        seed=args.seed,
        trace=True,
        telemetry=args.telemetry or False,
    )
    tracer = outcome.trace
    assert tracer is not None
    result = outcome.result
    # Write the trace before printing anything: stdout may be a pipe that
    # closes early (`repro trace ... | head`), and the file should land
    # even then.
    if args.out:
        write_chrome_trace(tracer, args.out, telemetry=result.telemetry)
    print(
        f"{outcome.policy.value}: response time {result.response_time:.3f}s, "
        f"{result.pages_sent} pages sent, {len(tracer.spans)} spans on "
        f"{len({s.track for s in tracer.spans})} tracks"
    )
    if not args.no_timeline:
        print()
        print(render_timeline(tracer, width=args.width))
    if args.out:
        size = len(chrome_trace_json(tracer, telemetry=result.telemetry))
        print(f"\nwrote {args.out} ({size} bytes; open at https://ui.perfetto.dev)")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    # Imported here, not at module top: validate pulls in the optimizer and
    # engine layers, which the plain `trace` path does not need eagerly.
    from repro.obs.validate import figure2_validation, render_validation

    reports = figure2_validation(cached_fraction=args.cached, seed=args.seed)
    for report in reports:
        print(render_validation(report))
        print()
    worst = max(
        (abs(op.delta(res)) for r in reports for op in r.operators for res in ("cpu", "net")),
        default=0.0,
    )
    print(f"worst cpu/net operator delta: {worst:.1%}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    # Imported here like `validate`: the profile path pulls in the
    # optimizer and engine layers.
    from repro.obs.profile import profile_query, render_profile

    report, bound = profile_query(
        policy=args.policy,
        num_relations=args.relations,
        num_servers=args.servers,
        cached_fraction=args.cached,
        seed=args.seed,
    )
    print(render_profile(report, bound))
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    channels = tuple(args.channel) if args.channel else None
    if args.clients > 1:
        result = api.run_workload(
            policy=args.policy,
            num_clients=args.clients,
            queries_per_client=args.queries,
            num_relations=args.relations,
            num_servers=args.servers,
            cached_fraction=args.cached,
            seed=args.seed,
            telemetry=args.interval,
        )
        telemetry = result.telemetry
        summary = (
            f"{result.policy}: {result.completed}/{result.submitted} queries in "
            f"{result.makespan:.3f}s simulated "
            f"(throughput {result.throughput:.3f} q/s)"
        )
    else:
        outcome = api.run_query(
            policy=args.policy,
            num_relations=args.relations,
            num_servers=args.servers,
            cached_fraction=args.cached,
            seed=args.seed,
            telemetry=args.interval,
        )
        telemetry = outcome.result.telemetry
        summary = (
            f"{outcome.policy.value}: response time "
            f"{outcome.result.response_time:.3f}s, "
            f"{outcome.result.pages_sent} pages sent"
        )
    assert telemetry is not None
    if args.out:
        exporter = telemetry_json if args.out.endswith(".json") else telemetry_csv
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(exporter(telemetry))
    print(summary)
    print()
    print(render_dashboard(telemetry, width=args.width, channels=channels))
    if args.out:
        print(f"\nwrote {args.out}")
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    from repro.errors import SqlError

    try:
        outcome = api.run_sql(
            args.statement,
            policy=args.policy,
            objective=args.objective,
            num_servers=args.servers,
            cached_fraction=args.cached,
            seed=args.seed,
            udf_site=args.udf_site,
        )
    except SqlError as error:
        print(f"SQL error: {error}", file=sys.stderr)
        return 2
    result = outcome.result
    print(api.explain(outcome.plan, outcome.scenario))
    print()
    print(
        f"{outcome.policy.value}: response time {result.response_time:.3f}s, "
        f"{result.pages_sent} pages sent, {result.result_tuples} result tuple(s) "
        f"({result.result_pages} page(s))"
    )
    print(
        f"predicted: response time {outcome.predicted.response_time:.3f}s, "
        f"{outcome.predicted.pages_sent:.0f} pages sent"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "experiments":
        # Forward to the experiment harness so `repro experiments ...` and
        # the standalone `repro-experiments ...` entry point are the same
        # command; its own argparse handles everything after the keyword.
        from repro.experiments.cli import main as experiments_main

        return experiments_main(argv[1:])
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "validate":
            return _cmd_validate(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "dash":
            return _cmd_dash(args)
        if args.command == "sql":
            return _cmd_sql(args)
    except BrokenPipeError:  # e.g. `repro trace | head`
        sys.stderr.close()  # suppress the interpreter's epipe warning
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
