"""Storage management: disk extents, buffer memory, and the client cache."""

from repro.storage.layout import Extent, ExtentAllocator
from repro.storage.memory import HybridHashPlan, MemoryManager, plan_hybrid_hash
from repro.storage.cache import CachedRelation, ClientDiskCache

__all__ = [
    "CachedRelation",
    "ClientDiskCache",
    "Extent",
    "ExtentAllocator",
    "HybridHashPlan",
    "MemoryManager",
    "plan_hybrid_hash",
]
