"""Storage management: disk extents, buffer memory, and the client cache."""

from repro.storage.layout import Extent, ExtentAllocator
from repro.storage.memory import (
    HybridHashPlan,
    MemoryBroker,
    MemoryGrant,
    MemoryManager,
    MemoryPressureState,
    plan_hybrid_hash,
)
from repro.storage.cache import CachedRelation, ClientDiskCache

__all__ = [
    "CachedRelation",
    "ClientDiskCache",
    "Extent",
    "ExtentAllocator",
    "HybridHashPlan",
    "MemoryBroker",
    "MemoryGrant",
    "MemoryManager",
    "MemoryPressureState",
    "plan_hybrid_hash",
]
