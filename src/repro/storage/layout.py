"""Disk space layout: contiguous extents of pages.

Base relations, cached relation copies, and hybrid-hash temporary partitions
all live in contiguous extents so that scans see sequential page numbers
(and therefore sequential disk costs), while hopping between extents incurs
seeks -- exactly the contention effects the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Extent", "ExtentAllocator"]


@dataclass(frozen=True)
class Extent:
    """A contiguous run of pages on one disk."""

    start: int
    pages: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.pages < 0:
            raise ConfigurationError(f"invalid extent ({self.start}, {self.pages})")

    @property
    def end(self) -> int:
        """One past the last page."""
        return self.start + self.pages

    def page(self, index: int) -> int:
        """Absolute page number of the ``index``-th page in this extent."""
        if not 0 <= index < self.pages:
            raise IndexError(f"page index {index} outside extent of {self.pages} pages")
        return self.start + index

    def __iter__(self):
        return iter(range(self.start, self.end))

    def __len__(self) -> int:
        return self.pages


class ExtentAllocator:
    """First-fit allocator over a disk's page address space."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages <= 0:
            raise ConfigurationError("allocator capacity must be positive")
        self.capacity_pages = capacity_pages
        # Sorted, non-adjacent free runs as (start, pages).
        self._free: list[tuple[int, int]] = [(0, capacity_pages)]

    @property
    def free_pages(self) -> int:
        return sum(pages for _start, pages in self._free)

    @property
    def used_pages(self) -> int:
        return self.capacity_pages - self.free_pages

    def allocate(self, pages: int) -> Extent:
        """Carve a contiguous extent of ``pages`` pages (first fit).

        A zero-page request yields an empty extent (freeing it is a no-op);
        empty relations occupy no disk space.
        """
        if pages == 0:
            return Extent(0, 0)
        if pages < 0:
            raise ConfigurationError(f"cannot allocate {pages} pages")
        for i, (start, run) in enumerate(self._free):
            if run >= pages:
                if run == pages:
                    del self._free[i]
                else:
                    self._free[i] = (start + pages, run - pages)
                return Extent(start, pages)
        raise ConfigurationError(
            f"disk full: cannot allocate {pages} pages "
            f"({self.free_pages} free of {self.capacity_pages})"
        )

    def free(self, extent: Extent) -> None:
        """Return an extent, coalescing with adjacent free runs."""
        if extent.pages == 0:
            return
        if extent.end > self.capacity_pages:
            raise ConfigurationError("extent outside this allocator's address space")
        start, pages = extent.start, extent.pages
        merged: list[tuple[int, int]] = []
        inserted = False
        for run_start, run_pages in self._free:
            if self._overlaps(start, pages, run_start, run_pages):
                raise ConfigurationError("double free of disk extent")
            if not inserted and run_start > start:
                merged.append((start, pages))
                inserted = True
            merged.append((run_start, run_pages))
        if not inserted:
            merged.append((start, pages))
        self._free = self._coalesce(merged)

    @staticmethod
    def _overlaps(a_start: int, a_pages: int, b_start: int, b_pages: int) -> bool:
        return a_start < b_start + b_pages and b_start < a_start + a_pages

    @staticmethod
    def _coalesce(runs: list[tuple[int, int]]) -> list[tuple[int, int]]:
        coalesced: list[tuple[int, int]] = []
        for start, pages in runs:
            if coalesced and coalesced[-1][0] + coalesced[-1][1] == start:
                prev_start, prev_pages = coalesced[-1]
                coalesced[-1] = (prev_start, prev_pages + pages)
            else:
                coalesced.append((start, pages))
        return coalesced

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ExtentAllocator used={self.used_pages}/{self.capacity_pages}>"
